"""Name-based registry of backends, policies, and strategy compositions.

Everything routes through three tables:

* backend factories (``cloud``, ``smart-ap``, ``d2d``, ``coop-ap``);
* policy factories (the five legacy strategy policies plus
  ``delay-aware``);
* :data:`STRATEGY_SPECS`, naming which backend set each strategy name
  composes with which policy.

Factories receive a :class:`BuildContext` so one registration works in
every host: the web service passes a live content database, the replay
engines also pass the workload catalog (which unlocks catalog-mode
cooperative caching and true file sizes), the fault harness passes an
injector.  :func:`resolve_strategy` is the single public entry point --
``resolve_strategy("odr", database=db)`` hands back a drop-in
:class:`~repro.core.strategies.ComposedStrategy`.

Third parties extend the tables with :func:`register_backend` /
:func:`register_policy` (plain decorators) and may pass explicit
``backend_names`` to :func:`resolve_strategy` to compose ad hoc.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.backends.base import Backend, Policy
from repro.backends.builtin import (
    CloudBackend,
    CoopApCacheBackend,
    D2dBackend,
    SmartApBackend,
)
from repro.backends.coopcache import CooperativeApCache
from repro.backends.policies import (
    AlwaysHybridPolicy,
    AmsPolicy,
    CloudOnlyPolicy,
    DelayAwarePolicy,
    OdrPolicy,
    SmartApOnlyPolicy,
)
from repro.cloud.database import ContentDatabase
from repro.core.odr import OdrMiddleware

if TYPE_CHECKING:   # pragma: no cover - import cycle guard
    from repro.core.strategies import ComposedStrategy
    from repro.faults.injector import FaultInjector
    from repro.workload.catalog import FileCatalog


class UnknownBackendError(ValueError):
    """Raised for a backend name nobody registered."""


class UnknownPolicyError(ValueError):
    """Raised for a policy name nobody registered."""


class UnknownStrategyError(ValueError):
    """Raised for a strategy name with no composition spec."""


@dataclass
class BuildContext:
    """Everything a factory may want; hosts fill in what they have."""

    database: Optional[ContentDatabase] = None
    catalog: Optional["FileCatalog"] = None
    middleware: Optional[OdrMiddleware] = None
    cache: Optional[CooperativeApCache] = None
    options: dict = field(default_factory=dict)

    def require_database(self) -> ContentDatabase:
        if self.database is None:
            raise ValueError("this factory needs a content database")
        return self.database


_BACKENDS: dict[str, Callable[[BuildContext], Backend]] = {}
_POLICIES: dict[str, Callable[[BuildContext], Policy]] = {}


def register_backend(name: str):
    """Decorator: register a backend factory under ``name``."""
    def decorator(factory: Callable[[BuildContext], Backend]):
        _BACKENDS[name] = factory
        return factory
    return decorator


def register_policy(name: str):
    """Decorator: register a policy factory under ``name``."""
    def decorator(factory: Callable[[BuildContext], Policy]):
        _POLICIES[name] = factory
        return factory
    return decorator


def backend_names() -> tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


def policy_names() -> tuple[str, ...]:
    return tuple(sorted(_POLICIES))


def create_backend(name: str, build: Optional[BuildContext] = None
                   ) -> Backend:
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise UnknownBackendError(
            f"unknown backend {name!r}; "
            f"known: {', '.join(backend_names())}") from None
    return factory(build or BuildContext())


def create_policy(name: str, build: Optional[BuildContext] = None
                  ) -> Policy:
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise UnknownPolicyError(
            f"unknown policy {name!r}; "
            f"known: {', '.join(policy_names())}") from None
    return factory(build or BuildContext())


@register_backend("cloud")
def _cloud_backend(build: BuildContext) -> Backend:
    return CloudBackend()


@register_backend("smart-ap")
def _smart_ap_backend(build: BuildContext) -> Backend:
    return SmartApBackend()


@register_backend("d2d")
def _d2d_backend(build: BuildContext) -> Backend:
    from repro.backends.builtin import D2D_NEIGHBOR_SHARE
    return D2dBackend(
        neighbor_share=build.options.get("d2d_neighbor_share",
                                         D2D_NEIGHBOR_SHARE))


@register_backend("coop-ap")
def _coop_ap_backend(build: BuildContext) -> Backend:
    cache = build.cache
    if cache is None and build.catalog is not None:
        cache = CooperativeApCache.from_catalog(build.catalog)
    return CoopApCacheBackend(cache=cache)


@register_policy("cloud-only")
def _cloud_only_policy(build: BuildContext) -> Policy:
    return CloudOnlyPolicy()


@register_policy("smart-ap-only")
def _smart_ap_only_policy(build: BuildContext) -> Policy:
    return SmartApOnlyPolicy()


@register_policy("always-hybrid")
def _always_hybrid_policy(build: BuildContext) -> Policy:
    return AlwaysHybridPolicy()


@register_policy("ams")
def _ams_policy(build: BuildContext) -> Policy:
    return AmsPolicy(popularity_threshold=build.options.get(
        "popularity_threshold", 85))


@register_policy("odr")
def _odr_policy(build: BuildContext) -> Policy:
    middleware = build.middleware
    if middleware is None:
        middleware = OdrMiddleware(build.require_database())
    return OdrPolicy(middleware)


@register_policy("delay-aware")
def _delay_aware_policy(build: BuildContext) -> Policy:
    from repro.backends.policies import DEFAULT_DEADLINE_SECONDS
    return DelayAwarePolicy(deadline_seconds=build.options.get(
        "deadline_seconds", DEFAULT_DEADLINE_SECONDS))


#: strategy name -> (backend names in preference order, policy name).
#: The first five reproduce the paper's strategies exactly; the last is
#: the registry-native composition over all four backends.
STRATEGY_SPECS: dict[str, tuple[tuple[str, ...], str]] = {
    "cloud-only": (("cloud",), "cloud-only"),
    "smart-ap-only": (("smart-ap",), "smart-ap-only"),
    "always-hybrid": (("cloud", "smart-ap"), "always-hybrid"),
    "ams": (("cloud", "smart-ap"), "ams"),
    "odr": (("cloud", "smart-ap"), "odr"),
    "delay-aware": (("coop-ap", "d2d", "smart-ap", "cloud"),
                    "delay-aware"),
}


def strategy_names() -> tuple[str, ...]:
    return tuple(sorted(STRATEGY_SPECS))


def compose(name: str, *, database: Optional[ContentDatabase] = None,
            catalog: Optional["FileCatalog"] = None,
            middleware: Optional[OdrMiddleware] = None,
            cache: Optional[CooperativeApCache] = None,
            **options) -> tuple[tuple[Backend, ...], Policy]:
    """Build the (backend set, policy) pair of a named strategy."""
    try:
        backend_spec, policy_name = STRATEGY_SPECS[name]
    except KeyError:
        raise UnknownStrategyError(
            f"unknown strategy {name!r}; "
            f"known: {', '.join(strategy_names())}") from None
    if middleware is not None and database is None:
        database = middleware.database
    build = BuildContext(database=database, catalog=catalog,
                         middleware=middleware, cache=cache,
                         options=options)
    backends = tuple(create_backend(backend, build)
                     for backend in backend_spec)
    return backends, create_policy(policy_name, build)


def resolve_strategy(name: str, *,
                     database: Optional[ContentDatabase] = None,
                     catalog: Optional["FileCatalog"] = None,
                     middleware: Optional[OdrMiddleware] = None,
                     cache: Optional[CooperativeApCache] = None,
                     faults: Optional["FaultInjector"] = None,
                     backend_names: Optional[Sequence[str]] = None,
                     **options) -> "ComposedStrategy":
    """The public front door: a ready-to-use strategy by name.

    ``backend_names`` overrides the spec's backend set (the policy still
    comes from the spec), letting the comparison engine sweep ad hoc
    (backend set, policy) combinations.
    """
    from repro.backends.faultgate import FaultGate
    from repro.core.strategies import ComposedStrategy

    backends, policy = compose(name, database=database, catalog=catalog,
                               middleware=middleware, cache=cache,
                               **options)
    if backend_names is not None:
        build = BuildContext(database=database, catalog=catalog,
                             middleware=middleware, cache=cache,
                             options=options)
        backends = tuple(create_backend(backend, build)
                         for backend in backend_names)
    gate = FaultGate(faults) if faults is not None else None
    return ComposedStrategy(name, backends, policy, database=database,
                            catalog=catalog, fault_gate=gate)
