"""The cooperative, popularity-ranked cache of a smart-AP neighbourhood.

Wang & Kulkarni (arXiv:1409.7047) have neighbouring caches coordinate by
rank-ordering the catalogue on popularity and jointly storing the head
of the ranking up to their pooled capacity.  Mapped onto this repo: a
*neighbourhood* of smart APs (an apartment block on the same switch)
pools its USB storage, and the popularity machinery that already exists
in :mod:`repro.workload.popularity` supplies the ranking.

Two modes, both deterministic:

* **catalog mode** (:meth:`CooperativeApCache.from_catalog`): the
  resident set is computed greedily down the (weekly demand desc,
  file id asc) ranking until the pooled capacity is full -- the replay
  engines use this so every shard agrees on residency byte-for-byte;
* **threshold mode** (the default): without a catalog (the live web
  service), a file is presumed resident when its observed demand clears
  the paper's "popular" threshold -- the head of any Zipf-like ranking.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.strategies import FileSnapshot
from repro.workload.popularity import UNPOPULAR_BELOW
from repro.workload.records import CatalogFile

#: Pooled capacity of a default neighbourhood: 8 APs x 8 GB USB sticks.
DEFAULT_NEIGHBORHOOD_SIZE = 8
DEFAULT_AP_CAPACITY_BYTES = 8e9


class CooperativeApCache:
    """Popularity-ranked shared cache across neighbouring smart APs."""

    def __init__(self,
                 capacity_bytes: float = DEFAULT_NEIGHBORHOOD_SIZE *
                 DEFAULT_AP_CAPACITY_BYTES,
                 neighborhood_size: int = DEFAULT_NEIGHBORHOOD_SIZE,
                 demand_floor: float = float(UNPOPULAR_BELOW)):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if neighborhood_size < 1:
            raise ValueError("neighborhood_size must be >= 1")
        self.capacity_bytes = capacity_bytes
        self.neighborhood_size = neighborhood_size
        self.demand_floor = demand_floor
        self._resident: Optional[frozenset[str]] = None
        self.resident_bytes = 0.0
        # Advisory hit accounting (policies may probe more than once).
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_catalog(cls, catalog: Iterable[CatalogFile],
                     capacity_bytes: float = DEFAULT_NEIGHBORHOOD_SIZE *
                     DEFAULT_AP_CAPACITY_BYTES,
                     neighborhood_size: int = DEFAULT_NEIGHBORHOOD_SIZE
                     ) -> "CooperativeApCache":
        """Materialise the resident set from a known catalogue.

        Greedy down the popularity ranking: a file that does not fit is
        skipped (not a stopping point), so small popular files behind
        one oversized archive still make the cache.  Ties break on file
        id, keeping the set identical across shards and runs.
        """
        cache = cls(capacity_bytes=capacity_bytes,
                    neighborhood_size=neighborhood_size)
        ranked = sorted(catalog, key=lambda record:
                        (-record.weekly_demand, record.file_id))
        resident = set()
        used = 0.0
        for record in ranked:
            if used + record.size > capacity_bytes:
                continue
            resident.add(record.file_id)
            used += record.size
        cache._resident = frozenset(resident)
        cache.resident_bytes = used
        return cache

    @property
    def resident_count(self) -> int:
        return len(self._resident) if self._resident is not None else 0

    def admits(self, snapshot: FileSnapshot) -> bool:
        """Is this file in (or presumed in) the neighbourhood cache?"""
        if self._resident is not None:
            hit = snapshot.file_id in self._resident
        else:
            hit = max(snapshot.weekly_demand,
                      float(snapshot.popularity)) >= self.demand_floor
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit
