"""Backend and policy contracts of the multi-backend ODR registry.

The paper's decision engine knows two executors: the cloud and the
user's own smart AP.  The related work names more -- D2D/peer-assisted
offloading between nearby devices (Mao & Tao, arXiv:1701.00837),
cooperative popularity-ranked caching across neighbouring smart APs
(Wang & Kulkarni, arXiv:1409.7047) -- and policies that choose among
them by deadline and cost (DAWN, arXiv:1502.07839).  This module is the
seam that lets all of them compose:

* a :class:`Backend` is *capability*: can this executor serve the file,
  what :class:`~repro.core.decision.Decision` does routing to it mean,
  and what completion delay / cloud-bandwidth cost should be expected;
* a :class:`Policy` is *choice*: given the user's context, the file
  snapshot, and the preference-ordered backend set, pick one.

Both are registered by name in :mod:`repro.backends.registry`;
:class:`~repro.core.strategies.ComposedStrategy` binds a (backend set,
policy) pair back into the classic ``Strategy`` interface that the
replay harness, web service, and experiments already consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.auxiliary import UserContext
from repro.core.decision import Action, DataSource, Decision
from repro.core.strategies import FileSnapshot

#: Estimated delay when a backend considers the file effectively
#: unobtainable (a dead swarm, say): finite so arithmetic stays safe,
#: but far beyond any plausible deadline.
UNREACHABLE_DELAY = 7 * 24 * 3600.0


@dataclass(frozen=True)
class BackendEstimate:
    """A backend's analytic forecast for one file.

    ``delay_seconds`` is expected time to completion;
    ``cloud_bytes`` is the cloud upload bandwidth the route would
    consume (the cost axis of DAWN-style policies).  Estimates are
    deterministic -- no RNG -- so routing itself never perturbs replay
    randomness.
    """

    delay_seconds: float
    cloud_bytes: float
    rationale: str = ""

    def __post_init__(self):
        if self.delay_seconds < 0 or not math.isfinite(self.delay_seconds):
            raise ValueError("delay_seconds must be finite and >= 0")
        if self.cloud_bytes < 0:
            raise ValueError("cloud_bytes must be >= 0")


class Backend:
    """One executor a policy may route a download to."""

    name = "backend"
    #: Fault-plan domain this backend's health rides on (see
    #: ``repro.faults.plan.KIND_DOMAINS``): ``isp`` for the cloud's
    #: upload path, ``ap`` for anything executed by smart APs, ``file``
    #: for swarm/peer-dependent transfers.
    fault_domain = "isp"

    def available(self, context: UserContext,
                  snapshot: FileSnapshot) -> bool:
        """Can this backend serve this request at all?"""
        return True

    def route(self, context: UserContext,
              snapshot: FileSnapshot) -> Decision:
        """The decision that sends this request to this backend."""
        raise NotImplementedError

    def estimate(self, context: UserContext,
                 snapshot: FileSnapshot) -> BackendEstimate:
        """Deterministic delay/cost forecast for scoring policies."""
        raise NotImplementedError


class Policy:
    """Chooses a backend (or a composite route) for each request."""

    name = "policy"

    def decide(self, context: UserContext, snapshot: FileSnapshot,
               backends: tuple[Backend, ...],
               penalised: frozenset[str] = frozenset()) -> Decision:
        raise NotImplementedError

    def decide_after_predownload(
            self, context: UserContext, snapshot: FileSnapshot,
            backends: tuple[Backend, ...], success: bool,
            penalised: frozenset[str] = frozenset()) -> Decision:
        """Default re-ask behaviour: cloud fetch on success."""
        if not success:
            return Decision(action=Action.NOTIFY_FAILURE,
                            data_source=DataSource.CLOUD,
                            rationale="cloud pre-download failed")
        return Decision(action=Action.CLOUD, data_source=DataSource.CLOUD,
                        rationale="pre-download complete; fetch from cloud")


def backend_by_name(backends: Iterable[Backend],
                    name: str) -> Optional[Backend]:
    """The first backend called ``name``, or None."""
    for backend in backends:
        if backend.name == name:
            return backend
    return None
