"""CLI: ``python -m repro.backends`` -- the comparison scorecard.

Replays one deterministic synthetic trace under every shipped
(backend set, policy) combination and prints the scorecard; the JSON
(``--json`` / ``--out``) carries a canonical digest that reproduces
across runs, shard counts, and process counts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.backends.policies import DEFAULT_DEADLINE_SECONDS
from repro.backends.replay import (
    DEFAULT_LIMIT,
    DEFAULT_SCALE,
    DEFAULT_SEED,
    DEFAULT_SHARDS,
    compare,
    default_combos,
    format_scorecard,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.backends",
        description="Compare (backend set, policy) combinations on one "
                    "deterministic workload trace.")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="workload scale factor "
                             f"(default {DEFAULT_SCALE})")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help=f"master seed (default {DEFAULT_SEED})")
    parser.add_argument("--limit", type=int, default=DEFAULT_LIMIT,
                        help="trace rows to replay "
                             f"(default {DEFAULT_LIMIT})")
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS,
                        help="content shards; any value yields the "
                             f"same scorecard (default {DEFAULT_SHARDS})")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1; results are "
                             "identical at any job count)")
    parser.add_argument("--deadline-hours", type=float,
                        default=DEFAULT_DEADLINE_SECONDS / 3600.0,
                        help="delay-aware policy deadline in hours "
                             "(default 8)")
    parser.add_argument("--combo", action="append", dest="combos",
                        metavar="NAME",
                        help="run only combos whose name contains NAME "
                             "(repeatable)")
    parser.add_argument("--faults", action="store_true",
                        help="route under the default chaos plan "
                             "(fault-window-aware deprioritisation)")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON scorecard instead of the "
                             "table")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the JSON scorecard to PATH")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the scorecard digest")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    combos = default_combos()
    if args.combos:
        combos = tuple(combo for combo in combos
                       if any(needle in combo.name
                              for needle in args.combos))
        if not combos:
            known = ", ".join(combo.name for combo in default_combos())
            print(f"no combo matches {args.combos}; known: {known}",
                  file=sys.stderr)
            return 2
    scorecard = compare(
        scale=args.scale, seed=args.seed, limit=args.limit,
        shards=args.shards, jobs=args.jobs,
        deadline_seconds=args.deadline_hours * 3600.0,
        faults=args.faults, combos=combos)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(scorecard, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.quiet:
        print(scorecard["digest"])
    elif args.json:
        json.dump(scorecard, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(format_scorecard(scorecard))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
