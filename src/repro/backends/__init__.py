"""repro.backends: pluggable multi-backend ODR.

A registry of download *backends* (cloud, smart AP, D2D peers,
cooperative AP caches) and routing *policies* (the paper's strategies
plus a DAWN-style delay-aware scorer), composed by name into drop-in
:class:`~repro.core.strategies.ComposedStrategy` instances.  Run
``python -m repro.backends`` for the deterministic (backend set,
policy) comparison scorecard.
"""

from repro.backends.base import (
    UNREACHABLE_DELAY,
    Backend,
    BackendEstimate,
    Policy,
    backend_by_name,
)
from repro.backends.builtin import (
    CloudBackend,
    CoopApCacheBackend,
    D2dBackend,
    SmartApBackend,
)
from repro.backends.coopcache import CooperativeApCache
from repro.backends.faultgate import FaultGate
from repro.backends.policies import (
    AlwaysHybridPolicy,
    AmsPolicy,
    CloudOnlyPolicy,
    DelayAwarePolicy,
    OdrPolicy,
    SmartApOnlyPolicy,
)
from repro.backends.registry import (
    STRATEGY_SPECS,
    BuildContext,
    UnknownBackendError,
    UnknownPolicyError,
    UnknownStrategyError,
    backend_names,
    compose,
    create_backend,
    create_policy,
    policy_names,
    register_backend,
    register_policy,
    resolve_strategy,
    strategy_names,
)

__all__ = [
    "UNREACHABLE_DELAY",
    "Backend",
    "BackendEstimate",
    "Policy",
    "backend_by_name",
    "CloudBackend",
    "SmartApBackend",
    "D2dBackend",
    "CoopApCacheBackend",
    "CooperativeApCache",
    "FaultGate",
    "CloudOnlyPolicy",
    "SmartApOnlyPolicy",
    "AlwaysHybridPolicy",
    "AmsPolicy",
    "OdrPolicy",
    "DelayAwarePolicy",
    "STRATEGY_SPECS",
    "BuildContext",
    "UnknownBackendError",
    "UnknownPolicyError",
    "UnknownStrategyError",
    "backend_names",
    "compose",
    "create_backend",
    "create_policy",
    "policy_names",
    "register_backend",
    "register_policy",
    "resolve_strategy",
    "strategy_names",
]
