"""Fault-plan-aware backend deprioritisation.

The chaos machinery (:mod:`repro.faults`) injects fault windows against
concrete entities -- a named upload server, one AP's USB stick, one
swarm.  Routing happens *before* an executor (and thus an entity) is
chosen, so the gate works at the coarser **domain** level: if any fault
of a kind living in a backend's :attr:`~repro.backends.base.Backend
.fault_domain` has a window active right now, that whole backend is
deprioritised -- moved to the back of the preference order and named in
the ``penalised`` set handed to the policy.

This is deliberately a *hedge*, not an oracle: a ``power_loss`` window
against one AP penalises the smart-AP backend for everyone during the
window.  That is the right trade for a router that cannot know which
entity the executor will land on, and it is fully deterministic (pure
reads of the immutable plan).
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.faults.injector import FaultInjector
from repro.faults.plan import KIND_DOMAINS


def kinds_for_domain(domain: str) -> tuple[str, ...]:
    """All fault kinds whose targets live in ``domain`` (sorted)."""
    return tuple(sorted(kind for kind, kind_domain in KIND_DOMAINS.items()
                        if kind_domain == domain))


class FaultGate:
    """Answers "is this backend's domain inside an active fault window?"."""

    def __init__(self, injector: FaultInjector):
        self.injector = injector

    def penalised(self, backend: Backend, now: float) -> bool:
        kinds = kinds_for_domain(backend.fault_domain)
        if not kinds:
            return False
        return any(spec.active_at(now)
                   for spec in self.injector.plan.specs_of(kinds))
