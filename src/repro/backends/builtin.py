"""The built-in backends: cloud, smart AP, D2D peers, cooperative APs.

Each backend pairs the exact :class:`~repro.core.decision.Decision` its
route has always produced (the cloud and smart-AP decisions are pinned
by golden digests) with a deterministic delay/cost estimate for the
scoring policies.  The two new executors come from the related work:

* :class:`D2dBackend` -- device-to-device offloading (Mao & Tao,
  arXiv:1701.00837): the slice of a file's swarm that is *physically
  nearby* (same building, same campus Wi-Fi) seeds it directly, off the
  cloud's upload servers and off the inter-ISP path;
* :class:`CoopApCacheBackend` -- neighbouring smart APs pooling a
  popularity-ranked cache (Wang & Kulkarni, arXiv:1409.7047) built on
  :mod:`repro.backends.coopcache`.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.base import (
    UNREACHABLE_DELAY,
    Backend,
    BackendEstimate,
)
from repro.backends.coopcache import CooperativeApCache
from repro.core.auxiliary import UserContext
from repro.core.decision import Action, DataSource, Decision
from repro.core.strategies import FileSnapshot
from repro.netsim.link import TESTBED_ADSL, adsl_goodput
from repro.sim.clock import kbps, mbps
from repro.transfer.swarm import SwarmModel

#: Assumed access bandwidth when the user did not report one (the
#: testbed's 20 Mbps Unicom ADSL line, after framing overhead).
DEFAULT_ACCESS_BANDWIDTH = adsl_goodput(TESTBED_ADSL)

#: Cloud fetch: the WAN leg rides Xuanfeng's provisioned upload servers.
CLOUD_FETCH_RATE = mbps(16.0)
#: The cloud's managed pre-download rate (matches the replay harness's
#: per-session cap).
CLOUD_PREDOWNLOAD_RATE = 2.5e6

#: Ordinary origin throughput for non-P2P direct downloads.
ORIGIN_HTTP_RATE = kbps(600.0)

#: Per-seed connection success probability of a NAT-ed home AP.
AP_SWARM_REACH = 0.35
#: Below this analytic swarm availability an AP attempt will usually
#: stall into the stagnation timeout.
MIN_SWARM_AVAILABILITY = 0.05

#: Share of a swarm close enough for device-to-device transfer.
D2D_NEIGHBOR_SHARE = 0.05
#: A D2D backend only volunteers when a nearby completed downloader is
#: likely to exist at all.
D2D_MIN_AVAILABILITY = 0.5
#: Local-Wi-Fi transfer rate from one nearby peer, and its weak growth
#: with the number of nearby seeds (they share the same channel).
D2D_RATE_MEDIAN = mbps(3.0)
D2D_RATE_EXPONENT = 0.2
#: D2D rides the local link, not the subscriber's WAN plan.
D2D_LAN_CAP = mbps(24.0)

#: Fetching from a neighbouring AP's cache crosses one switch.
NEIGHBOR_AP_RATE = mbps(12.0)


def user_bandwidth(context: UserContext) -> float:
    """The user's WAN ceiling (B/s), with the testbed default."""
    return context.access_bandwidth or DEFAULT_ACCESS_BANDWIDTH


class CloudBackend(Backend):
    """Xuanfeng's cloud: always available, always costs upload bytes."""

    name = "cloud"
    fault_domain = "isp"

    def route(self, context: UserContext,
              snapshot: FileSnapshot) -> Decision:
        if snapshot.cached:
            return Decision(action=Action.CLOUD,
                            data_source=DataSource.CLOUD,
                            rationale="cloud-based service")
        return Decision(action=Action.CLOUD_PREDOWNLOAD,
                        data_source=DataSource.CLOUD,
                        rationale="cloud-based service (cache miss)")

    def estimate(self, context: UserContext,
                 snapshot: FileSnapshot) -> BackendEstimate:
        rate = min(user_bandwidth(context), CLOUD_FETCH_RATE)
        delay = snapshot.size / rate
        if not snapshot.cached:
            delay += snapshot.size / CLOUD_PREDOWNLOAD_RATE
        return BackendEstimate(
            delay_seconds=delay, cloud_bytes=snapshot.size,
            rationale="cloud fetch" if snapshot.cached
            else "cloud pre-download, then fetch")


class SmartApBackend(Backend):
    """The user's own smart AP pre-downloading from the origin."""

    name = "smart-ap"
    fault_domain = "ap"

    def __init__(self, swarm_model: Optional[SwarmModel] = None,
                 reach: float = AP_SWARM_REACH):
        self.swarm_model = swarm_model or SwarmModel()
        self.reach = reach

    def available(self, context: UserContext,
                  snapshot: FileSnapshot) -> bool:
        return context.has_smart_ap

    def route(self, context: UserContext,
              snapshot: FileSnapshot) -> Decision:
        return Decision(action=Action.SMART_AP,
                        data_source=DataSource.ORIGINAL,
                        rationale="smart-AP service")

    def _swarm_availability(self, snapshot: FileSnapshot) -> float:
        import math
        mean = self.swarm_model.mean_seeds(snapshot.demand) * self.reach
        return 1.0 - math.exp(-mean)

    def estimate(self, context: UserContext,
                 snapshot: FileSnapshot) -> BackendEstimate:
        bandwidth = user_bandwidth(context)
        caps = [bandwidth]
        if context.smart_ap is not None:
            caps.append(context.smart_ap.write_path().max_throughput)
        if snapshot.protocol.is_p2p:
            availability = self._swarm_availability(snapshot)
            if availability < MIN_SWARM_AVAILABILITY:
                return BackendEstimate(
                    delay_seconds=UNREACHABLE_DELAY, cloud_bytes=0.0,
                    rationale="swarm likely dead at AP vantage")
            seeds = max(self.swarm_model.mean_seeds(snapshot.demand) *
                        self.reach, 1.0)
            rate = self.swarm_model.per_seed_rate_median * \
                seeds ** self.swarm_model.per_seed_rate_exponent
            # Expected completion includes availability retries.
            delay = snapshot.size / min(rate, *caps) / availability
        else:
            delay = snapshot.size / min(ORIGIN_HTTP_RATE, *caps)
        return BackendEstimate(delay_seconds=delay, cloud_bytes=0.0,
                               rationale="AP pre-download from origin")


class D2dBackend(Backend):
    """Nearby completed downloaders seeding device-to-device."""

    name = "d2d"
    fault_domain = "file"

    def __init__(self, swarm_model: Optional[SwarmModel] = None,
                 neighbor_share: float = D2D_NEIGHBOR_SHARE,
                 min_availability: float = D2D_MIN_AVAILABILITY):
        if not 0.0 < neighbor_share <= 1.0:
            raise ValueError("neighbor_share must be in (0, 1]")
        self.swarm_model = swarm_model or SwarmModel()
        self.neighbor_share = neighbor_share
        self.min_availability = min_availability

    def nearby_seeds(self, snapshot: FileSnapshot) -> float:
        """Expected completed downloaders within D2D reach."""
        return self.swarm_model.mean_seeds(snapshot.demand) * \
            self.neighbor_share

    def availability(self, snapshot: FileSnapshot) -> float:
        """Analytic P(at least one nearby seed), Poisson thinning."""
        import math
        return 1.0 - math.exp(-self.nearby_seeds(snapshot))

    def available(self, context: UserContext,
                  snapshot: FileSnapshot) -> bool:
        return snapshot.protocol.is_p2p and \
            self.availability(snapshot) >= self.min_availability

    def route(self, context: UserContext,
              snapshot: FileSnapshot) -> Decision:
        return Decision(
            action=Action.D2D, data_source=DataSource.PEERS,
            bottlenecks_addressed=(1, 2),
            rationale="nearby completed downloaders seed the file "
                      "device-to-device, off the cloud and off the "
                      "inter-ISP path")

    def estimate(self, context: UserContext,
                 snapshot: FileSnapshot) -> BackendEstimate:
        availability = self.availability(snapshot)
        if availability < self.min_availability:
            return BackendEstimate(
                delay_seconds=UNREACHABLE_DELAY, cloud_bytes=0.0,
                rationale="no nearby completed downloader expected")
        seeds = max(self.nearby_seeds(snapshot), 1.0)
        rate = min(D2D_RATE_MEDIAN * seeds ** D2D_RATE_EXPONENT,
                   D2D_LAN_CAP)
        return BackendEstimate(
            delay_seconds=snapshot.size / rate / availability,
            cloud_bytes=0.0, rationale="device-to-device from peers")


class CoopApCacheBackend(Backend):
    """A neighbouring smart AP serving from the cooperative cache."""

    name = "coop-ap"
    fault_domain = "ap"

    def __init__(self, cache: Optional[CooperativeApCache] = None):
        self.cache = cache or CooperativeApCache()

    def available(self, context: UserContext,
                  snapshot: FileSnapshot) -> bool:
        return context.has_smart_ap and self.cache.admits(snapshot)

    def route(self, context: UserContext,
              snapshot: FileSnapshot) -> Decision:
        return Decision(
            action=Action.NEIGHBOR_AP,
            data_source=DataSource.NEIGHBOR_AP,
            bottlenecks_addressed=(2, 3),
            rationale="a neighbouring smart AP holds the file in the "
                      "cooperative popularity-ranked cache")

    def estimate(self, context: UserContext,
                 snapshot: FileSnapshot) -> BackendEstimate:
        return BackendEstimate(
            delay_seconds=snapshot.size / NEIGHBOR_AP_RATE,
            cloud_bytes=0.0, rationale="one switch hop from a "
                                       "neighbouring AP's cache")
