"""The deterministic (backend set, policy) comparison engine.

``python -m repro.backends`` replays one synthetic workload trace under
several (backend set, policy) combinations and emits a scorecard --
completion delay p50/p95, cloud upload bytes (and the saving against
the cloud-only baseline), per-backend request share, failure ratio --
plus a canonical digest over the full float-exact payload.

Determinism is the design driver, in three layers:

* **per-(combo, file) randomness**: every random draw comes from a
  stream forked off ``(seed, combo name, file id)``, never from a
  shared sequential stream, so no combo or file can perturb another;
* **content sharding**: requests are partitioned by
  ``stable_hash(file id)``, and all cache-coupled state (the content
  database rows a strategy reads, pre-download outcomes) is per-file,
  so shard outputs merge identically for any ``--shards``;
* **order-independent reduction**: shard results are
  :class:`ComboStats` whose merge is commutative-safe (sums and exact
  sketch-bucket merges), folded in shard order regardless of worker
  scheduling, so ``--jobs`` cannot change a byte.

The same scorecard therefore reproduces across runs, shard counts, and
process counts -- which is what the CI backend-matrix job diffs.
"""

from __future__ import annotations

import json
import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

import repro.ap.models as ap_models
from repro.cloud.database import ContentDatabase
from repro.core.auxiliary import SmartApInfo, UserContext
from repro.core.decision import Action
from repro.obs.histogram import QuantileSketch
from repro.scale.plan import stable_hash
from repro.sim.randomness import RngFactory
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.popularity import UNPOPULAR_BELOW
from repro.workload.records import CatalogFile, RequestRecord

from repro.backends.policies import DEFAULT_DEADLINE_SECONDS

#: Defaults of the CLI: small enough for CI, big enough to exercise
#: every backend.
DEFAULT_SCALE = 0.01
DEFAULT_SEED = 20150222
DEFAULT_LIMIT = 400
DEFAULT_SHARDS = 4

#: Deterministic smart-AP penetration: a user owns an AP when the
#: stable hash of their id lands under this per-mille threshold.
AP_PERMILLE = 400

#: Rate model of the scorecard's closed-form executor (see
#: :func:`_execute_request`); speed jitter is lognormal.
RATE_SIGMA = 0.3
HOME_LAN_RATE = 3e6          # B/s, user pulling from their own AP
#: Pre-download success odds: thriving swarms nearly always yield,
#: dead/unpopular sources (the paper's Bottleneck 3) often do not.
PREDOWNLOAD_SUCCESS_POPULAR = 0.98
PREDOWNLOAD_SUCCESS_UNPOPULAR = 0.85

#: Which backend "executes" each action in the share accounting
#: (``direct`` = the user's own device, no backend involved).
ACTION_BACKEND = {
    Action.CLOUD: "cloud",
    Action.CLOUD_PREDOWNLOAD: "cloud",
    Action.CLOUD_THEN_SMART_AP: "cloud",
    Action.NOTIFY_FAILURE: "cloud",
    Action.SMART_AP: "smart-ap",
    Action.USER_DEVICE: "direct",
    Action.D2D: "d2d",
    Action.NEIGHBOR_AP: "coop-ap",
}


@dataclass(frozen=True)
class ComboSpec:
    """One (backend set, policy) combination under comparison.

    ``strategy`` names a :data:`repro.backends.registry.STRATEGY_SPECS`
    entry (which fixes the policy); ``backend_names`` optionally
    overrides its backend set.
    """

    name: str
    strategy: str
    backend_names: Optional[tuple[str, ...]] = None

    def to_dict(self) -> dict[str, Any]:
        from repro.backends.registry import STRATEGY_SPECS
        spec_backends, policy = STRATEGY_SPECS[self.strategy]
        return {"name": self.name, "strategy": self.strategy,
                "policy": policy,
                "backends": list(self.backend_names or spec_backends)}


def default_combos() -> tuple[ComboSpec, ...]:
    """The shipped comparison matrix: baseline, the paper's contenders,
    and the delay-aware policy with and without the new backends."""
    return (
        ComboSpec("cloud/cloud-only", "cloud-only"),
        ComboSpec("cloud+ap/odr", "odr"),
        ComboSpec("cloud+ap/ams", "ams"),
        ComboSpec("cloud+ap+d2d/delay-aware", "delay-aware",
                  backend_names=("d2d", "smart-ap", "cloud")),
        ComboSpec("all/delay-aware", "delay-aware"),
    )


@dataclass
class ComboStats:
    """Mergeable per-combo aggregates (the shard worker's output)."""

    combo: str
    requests: int = 0
    failures: int = 0
    #: Whole bytes: integer addition is associative, so the sum cannot
    #: depend on which shard a request landed in (float accumulation
    #: drifts in the last ulp with grouping).
    cloud_bytes: int = 0
    delays: QuantileSketch = field(default_factory=QuantileSketch)
    actions: dict[str, int] = field(default_factory=dict)
    backend_requests: dict[str, int] = field(default_factory=dict)

    def record(self, action: Action, success: bool, delay: float,
               cloud_bytes: float) -> None:
        self.requests += 1
        self.actions[action.value] = self.actions.get(action.value,
                                                      0) + 1
        backend = ACTION_BACKEND[action]
        self.backend_requests[backend] = \
            self.backend_requests.get(backend, 0) + 1
        self.cloud_bytes += int(round(cloud_bytes))
        if success:
            self.delays.add(delay)
        else:
            self.failures += 1

    def merge(self, other: "ComboStats") -> None:
        if other.combo != self.combo:
            raise ValueError("merging stats of different combos")
        self.requests += other.requests
        self.failures += other.failures
        self.cloud_bytes += other.cloud_bytes
        self.delays.merge(other.delays)
        for key, count in other.actions.items():
            self.actions[key] = self.actions.get(key, 0) + count
        for key, count in other.backend_requests.items():
            self.backend_requests[key] = \
                self.backend_requests.get(key, 0) + count

    def to_dict(self) -> dict[str, Any]:
        total = max(self.requests, 1)
        return {
            "requests": self.requests,
            "failures": self.failures,
            "failure_ratio": self.failures / total,
            "delay_p50_seconds": self.delays.quantile(0.5),
            "delay_p95_seconds": self.delays.quantile(0.95),
            "cloud_bytes": self.cloud_bytes,
            "actions": dict(sorted(self.actions.items())),
            "backend_share": {name: count / total for name, count
                              in sorted(self.backend_requests.items())},
        }


def _smart_ap_for(user_id: str) -> Optional[SmartApInfo]:
    """Deterministic AP ownership: no RNG, pure content hash."""
    if stable_hash(f"smart-ap:{user_id}") % 1000 >= AP_PERMILLE:
        return None
    hardware = ap_models.HIWIFI_1S
    return SmartApInfo(hardware, hardware.default_device,
                       hardware.default_filesystem)


def _seed_database(catalog_rows: Sequence[CatalogFile]
                   ) -> ContentDatabase:
    """A fresh content database as the cloud would see week start:
    demand already observed, popular files already cached."""
    database = ContentDatabase()
    for record in catalog_rows:
        row = database.row(record.file_id, size=record.size)
        row.request_count = record.weekly_demand
        row.cached = record.weekly_demand >= UNPOPULAR_BELOW
    return database


def _jitter(rng: np.random.Generator,
            sigma: float = RATE_SIGMA) -> float:
    return float(np.exp(rng.normal(0.0, sigma)))


def _execute_request(request: RequestRecord, record: CatalogFile,
                     context: UserContext, strategy,
                     database: ContentDatabase,
                     rng: np.random.Generator
                     ) -> tuple[Action, bool, float, float]:
    """Closed-form execution of one routed request.

    Returns ``(final action, success, completion delay seconds, cloud
    bytes)``.  Deliberately lighter than the testbed replay (no
    testbed AP bench, no circuit breakers): the scorecard compares
    *routing* quality, so a simple shared rate model keeps every combo
    on identical physics.
    """
    from repro.backends.builtin import (
        CLOUD_FETCH_RATE,
        CLOUD_PREDOWNLOAD_RATE,
        D2D_LAN_CAP,
        D2D_NEIGHBOR_SHARE,
        D2D_RATE_EXPONENT,
        D2D_RATE_MEDIAN,
        DEFAULT_ACCESS_BANDWIDTH,
        NEIGHBOR_AP_RATE,
        ORIGIN_HTTP_RATE,
    )
    from repro.transfer.swarm import Swarm, SwarmModel

    strategy.now = request.request_time
    decision = strategy.decide(context, record.file_id, record.protocol)
    user_bw = request.access_bandwidth or DEFAULT_ACCESS_BANDWIDTH
    size = record.size
    wait = 0.0

    if decision.action is Action.CLOUD_PREDOWNLOAD:
        odds = PREDOWNLOAD_SUCCESS_POPULAR \
            if record.weekly_demand >= UNPOPULAR_BELOW \
            else PREDOWNLOAD_SUCCESS_UNPOPULAR
        success = bool(rng.random() < odds)
        database.record_attempt(record.file_id, success)
        if success:
            database.set_cached(record.file_id, True)
            wait = size / CLOUD_PREDOWNLOAD_RATE
        decision = strategy.decide_after_predownload(
            context, record.file_id, success)

    action = decision.action
    if action is Action.NOTIFY_FAILURE:
        return action, False, 0.0, 0.0

    if action is Action.CLOUD:
        rate = min(user_bw, CLOUD_FETCH_RATE) * _jitter(rng)
        return action, True, wait + size / rate, size

    if action is Action.CLOUD_THEN_SMART_AP:
        wan = min(user_bw, CLOUD_FETCH_RATE) * _jitter(rng)
        return action, True, wait + size / wan + size / HOME_LAN_RATE, \
            size

    if action is Action.D2D:
        model = SwarmModel()
        nearby = int(rng.poisson(model.mean_seeds(record.weekly_demand) *
                                 D2D_NEIGHBOR_SHARE))
        if nearby < 1:
            return action, False, 0.0, 0.0
        rate = min(D2D_RATE_MEDIAN * nearby ** D2D_RATE_EXPONENT *
                   _jitter(rng), D2D_LAN_CAP)
        return action, True, size / rate, 0.0

    if action is Action.NEIGHBOR_AP:
        rate = NEIGHBOR_AP_RATE * _jitter(rng)
        return action, True, size / rate, 0.0

    # SMART_AP / USER_DEVICE: direct from the origin or the swarm.
    if record.protocol.is_p2p:
        swarm = Swarm(record.file_id, record.weekly_demand)
        seeds = swarm.sample_seed_count(rng)
        if seeds < 1:
            return action, False, 0.0, 0.0
        rate = min(swarm.sample_rate(seeds, rng), user_bw)
    else:
        rate = min(ORIGIN_HTTP_RATE * _jitter(rng), user_bw)
    delay = size / rate
    if action is Action.SMART_AP:
        # Staged on the AP; the user drains it over the home LAN.
        delay += size / HOME_LAN_RATE
    return action, True, delay, 0.0


@dataclass(frozen=True)
class ShardJob:
    """Spawn-picklable payload of one comparison shard."""

    shard: int
    shards: int
    scale: float
    seed: int
    limit: int
    deadline_seconds: float
    faults: bool
    combos: tuple[ComboSpec, ...]


def run_shard(job: ShardJob) -> list[ComboStats]:
    """Replay this shard's slice of the trace under every combo.

    Module-level (spawn-safe) and self-contained: the worker
    regenerates the workload from ``(scale, seed)``, takes the first
    ``limit`` trace rows, keeps the files hashing into its shard, and
    walks them file by file in sorted order with a per-(combo, file)
    RNG stream.
    """
    from repro.backends.registry import resolve_strategy

    workload = WorkloadGenerator(
        WorkloadConfig(scale=job.scale, seed=job.seed)).generate()
    trace = workload.requests[:job.limit]
    by_file: dict[str, list[RequestRecord]] = {}
    for request in trace:
        if stable_hash(f"file:{request.file_id}") % job.shards \
                != job.shard:
            continue
        by_file.setdefault(request.file_id, []).append(request)

    injector = None
    if job.faults:
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import default_chaos_plan
        injector = FaultInjector(default_chaos_plan())

    catalog_rows = [workload.catalog[file_id]
                    for file_id in sorted(by_file)]
    results = []
    for combo in job.combos:
        database = _seed_database(catalog_rows)
        strategy = resolve_strategy(
            combo.strategy, database=database,
            catalog=workload.catalog, faults=injector,
            backend_names=combo.backend_names,
            deadline_seconds=job.deadline_seconds)
        factory = RngFactory(job.seed).fork(f"backends:{combo.name}")
        stats = ComboStats(combo=combo.name)
        for file_id in sorted(by_file):
            record = workload.catalog[file_id]
            rng = factory.stream(f"file:{file_id}")
            for request in by_file[file_id]:
                context = UserContext(
                    user_id=request.user_id,
                    ip_address=request.ip_address,
                    access_bandwidth=request.access_bandwidth,
                    smart_ap=_smart_ap_for(request.user_id))
                action, success, delay, cloud = _execute_request(
                    request, record, context, strategy, database, rng)
                stats.record(action, success, delay, cloud)
        results.append(stats)
    return results


def _float_hex(value: Any) -> Any:
    """Floats as exact hex so the digest has no formatting slack."""
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, dict):
        return {key: _float_hex(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_float_hex(item) for item in value]
    return value


#: Run-shape keys excluded from the digest: sharding and process count
#: must not change a byte of the results, and the digest proves it.
_DIGEST_EXCLUDED = ("digest", "shards")


def scorecard_digest(scorecard: dict[str, Any]) -> str:
    import hashlib
    payload = {key: value for key, value in scorecard.items()
               if key not in _DIGEST_EXCLUDED}
    encoded = json.dumps(_float_hex(payload), sort_keys=True,
                         separators=(",", ":")).encode()
    return hashlib.sha256(encoded).hexdigest()


def compare(scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED,
            limit: int = DEFAULT_LIMIT, shards: int = DEFAULT_SHARDS,
            jobs: int = 1,
            deadline_seconds: float = DEFAULT_DEADLINE_SECONDS,
            faults: bool = False,
            combos: Optional[Sequence[ComboSpec]] = None
            ) -> dict[str, Any]:
    """Run the comparison and return the scorecard dict (with digest)."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if limit < 1:
        raise ValueError("limit must be >= 1")
    combo_specs = tuple(combos if combos is not None
                        else default_combos())
    if not combo_specs:
        raise ValueError("no combos to compare")
    jobs = min(jobs, shards)
    shard_jobs = [ShardJob(shard=shard, shards=shards, scale=scale,
                           seed=seed, limit=limit,
                           deadline_seconds=deadline_seconds,
                           faults=faults, combos=combo_specs)
                  for shard in range(shards)]
    if jobs <= 1:
        shard_results = [run_shard(job) for job in shard_jobs]
    else:
        import multiprocessing
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=jobs,
                                 mp_context=context) as pool:
            # map() preserves input order, so the reduction below is
            # shard-ordered no matter which worker finished first.
            shard_results = list(pool.map(run_shard, shard_jobs))

    merged = {combo.name: ComboStats(combo=combo.name)
              for combo in combo_specs}
    for shard_result in shard_results:
        for stats in shard_result:
            merged[stats.combo].merge(stats)

    baseline = merged[combo_specs[0].name].cloud_bytes
    combo_rows = []
    for combo in combo_specs:
        row = combo.to_dict()
        row.update(merged[combo.name].to_dict())
        row["cloud_bytes_saved_vs_baseline"] = \
            (1.0 - row["cloud_bytes"] / baseline) if baseline > 0 \
            else 0.0
        combo_rows.append(row)

    scorecard: dict[str, Any] = {
        "scale": scale, "seed": seed, "limit": limit, "shards": shards,
        "deadline_seconds": deadline_seconds, "faults": faults,
        "baseline": combo_specs[0].name,
        "combos": combo_rows,
    }
    scorecard["digest"] = scorecard_digest(scorecard)
    return scorecard


def format_scorecard(scorecard: dict[str, Any]) -> str:
    """Human-readable table (the JSON stays the machine interface)."""
    lines = [
        f"backend/policy comparison  scale={scorecard['scale']} "
        f"seed={scorecard['seed']} limit={scorecard['limit']} "
        f"shards={scorecard['shards']}"
        + ("  [chaos plan active]" if scorecard["faults"] else ""),
        f"{'combo':<26} {'p50':>9} {'p95':>9} {'fail%':>6} "
        f"{'cloudGB':>8} {'saved%':>7}  backends",
    ]
    for row in scorecard["combos"]:
        share = " ".join(
            f"{name}:{fraction:.0%}" for name, fraction
            in row["backend_share"].items())
        lines.append(
            f"{row['name']:<26} "
            f"{_fmt_seconds(row['delay_p50_seconds']):>9} "
            f"{_fmt_seconds(row['delay_p95_seconds']):>9} "
            f"{row['failure_ratio']:>6.1%} "
            f"{row['cloud_bytes'] / 1e9:>8.2f} "
            f"{row['cloud_bytes_saved_vs_baseline']:>7.1%}  {share}")
    lines.append(f"digest {scorecard['digest']}")
    return "\n".join(lines)


def _fmt_seconds(seconds: float) -> str:
    if seconds <= 0 or math.isinf(seconds):
        return "-"
    if seconds < 90:
        return f"{seconds:.0f}s"
    if seconds < 5400:
        return f"{seconds / 60:.0f}m"
    return f"{seconds / 3600:.1f}h"
