"""The built-in routing policies.

The first five are the paper's strategies re-expressed over the backend
seam -- their branch structure and rationale strings are copied verbatim
from the historic ``repro.core.strategies`` classes, because the golden
digests pin every decision bit-for-bit.  :class:`DelayAwarePolicy` is
the new one: a DAWN-style (arXiv:1502.07839) scorer that asks every
backend for a delay/cost estimate and trades the completion deadline
against cloud upload bytes.
"""

from __future__ import annotations

from repro.backends.base import Backend, BackendEstimate, Policy, \
    backend_by_name
from repro.core.auxiliary import UserContext
from repro.core.decision import Action, DataSource, Decision
from repro.core.odr import OdrMiddleware
from repro.core.strategies import FileSnapshot

#: Default completion deadline of the delay-aware policy: overnight
#: (the paper's users start ODR jobs before going to bed).
DEFAULT_DEADLINE_SECONDS = 8 * 3600.0

_NO_AP_DIRECT = Decision(
    action=Action.USER_DEVICE, data_source=DataSource.ORIGINAL,
    rationale="no AP present; plain direct download")


class CloudOnlyPolicy(Policy):
    """Route everything to the cloud backend."""

    name = "cloud-only"

    def decide(self, context: UserContext, snapshot: FileSnapshot,
               backends: tuple[Backend, ...],
               penalised: frozenset[str] = frozenset()) -> Decision:
        return backend_by_name(backends, "cloud").route(context, snapshot)


class SmartApOnlyPolicy(Policy):
    """Route everything to the user's AP, direct download without one."""

    name = "smart-ap-only"

    def decide(self, context: UserContext, snapshot: FileSnapshot,
               backends: tuple[Backend, ...],
               penalised: frozenset[str] = frozenset()) -> Decision:
        ap = backend_by_name(backends, "smart-ap")
        if ap is not None and ap.available(context, snapshot):
            return ap.route(context, snapshot)
        return _NO_AP_DIRECT


class AlwaysHybridPolicy(Policy):
    """The commercial hybrid: always Internet -> cloud -> AP -> user."""

    name = "always-hybrid"

    def decide(self, context: UserContext, snapshot: FileSnapshot,
               backends: tuple[Backend, ...],
               penalised: frozenset[str] = frozenset()) -> Decision:
        if not snapshot.cached:
            return Decision(action=Action.CLOUD_PREDOWNLOAD,
                            data_source=DataSource.CLOUD,
                            rationale="hybrid mode: cloud downloads first")
        return self.decide_after_predownload(context, snapshot, backends,
                                             True, penalised=penalised)

    def decide_after_predownload(
            self, context: UserContext, snapshot: FileSnapshot,
            backends: tuple[Backend, ...], success: bool,
            penalised: frozenset[str] = frozenset()) -> Decision:
        if not success:
            return Decision(action=Action.NOTIFY_FAILURE,
                            data_source=DataSource.CLOUD,
                            rationale="cloud pre-download failed")
        if context.has_smart_ap:
            return Decision(action=Action.CLOUD_THEN_SMART_AP,
                            data_source=DataSource.CLOUD,
                            rationale="hybrid mode: AP fetches from the "
                                      "cloud, always the longest flow")
        return Decision(action=Action.CLOUD, data_source=DataSource.CLOUD,
                        rationale="hybrid mode without an AP")


class AmsPolicy(Policy):
    """Automatic Mode Selection: popularity threshold only."""

    name = "ams"

    def __init__(self, popularity_threshold: int = 85):
        self.popularity_threshold = popularity_threshold

    def decide(self, context: UserContext, snapshot: FileSnapshot,
               backends: tuple[Backend, ...],
               penalised: frozenset[str] = frozenset()) -> Decision:
        if snapshot.protocol.is_p2p and \
                snapshot.popularity >= self.popularity_threshold:
            action = Action.SMART_AP if context.has_smart_ap \
                else Action.USER_DEVICE
            return Decision(action=action, data_source=DataSource.ORIGINAL,
                            rationale="AMS: popular -> peer-assisted")
        if snapshot.cached:
            return Decision(action=Action.CLOUD,
                            data_source=DataSource.CLOUD,
                            rationale="AMS: unpopular -> cloud mode")
        return Decision(action=Action.CLOUD_PREDOWNLOAD,
                        data_source=DataSource.CLOUD,
                        rationale="AMS: unpopular -> cloud mode")


class OdrPolicy(Policy):
    """ODR's Figure-15 rule, delegated to the existing middleware.

    The middleware already encodes the full decision tree (ISP match,
    bandwidth class, AP write path, popularity); re-deriving it from
    snapshots would risk drifting from the pinned digests, so the policy
    simply owns an :class:`~repro.core.odr.OdrMiddleware`.
    """

    name = "odr"

    def __init__(self, middleware: OdrMiddleware):
        self.middleware = middleware

    def decide(self, context: UserContext, snapshot: FileSnapshot,
               backends: tuple[Backend, ...],
               penalised: frozenset[str] = frozenset()) -> Decision:
        return self.middleware.decide(context, snapshot.file_id,
                                      snapshot.protocol)

    def decide_after_predownload(
            self, context: UserContext, snapshot: FileSnapshot,
            backends: tuple[Backend, ...], success: bool,
            penalised: frozenset[str] = frozenset()) -> Decision:
        return self.middleware.decide_after_predownload(
            context, snapshot.file_id, success)


class DelayAwarePolicy(Policy):
    """Deadline-vs-cloud-cost scoring over every offered backend.

    DAWN's framing: the user cares about a completion *deadline*, the
    operator about cloud upload *bytes*.  Every available backend is
    scored ``(penalised, misses deadline, cloud bytes, delay,
    preference index)`` and the lexicographic minimum wins -- i.e. among
    healthy backends that meet the deadline, the cheapest for the cloud;
    if none meets it, the fastest; fault-penalised backends only as a
    last resort.  Scoring uses the backends' deterministic analytic
    estimates, so the choice is reproducible across shards and runs.
    """

    name = "delay-aware"

    def __init__(self, deadline_seconds: float = DEFAULT_DEADLINE_SECONDS):
        if deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        self.deadline_seconds = deadline_seconds

    def effective_deadline(self, context: UserContext) -> float:
        """The deadline this request is ranked against: the remaining
        per-request budget when the serving tier propagated one
        (``X-Deadline-Ms`` -> ``UserContext.deadline_seconds``), else
        the policy's static default."""
        if context.deadline_seconds is not None:
            return context.deadline_seconds
        return self.deadline_seconds

    def rank(self, context: UserContext, snapshot: FileSnapshot,
             backends: tuple[Backend, ...],
             penalised: frozenset[str] = frozenset()
             ) -> list[tuple[Backend, BackendEstimate]]:
        """Available backends with estimates, best choice first."""
        deadline = self.effective_deadline(context)
        scored = []
        for index, backend in enumerate(backends):
            if not backend.available(context, snapshot):
                continue
            estimate = backend.estimate(context, snapshot)
            scored.append((
                (backend.name in penalised,
                 estimate.delay_seconds > deadline,
                 estimate.cloud_bytes, estimate.delay_seconds, index),
                backend, estimate))
        scored.sort(key=lambda item: item[0])
        return [(backend, estimate) for _, backend, estimate in scored]

    def decide(self, context: UserContext, snapshot: FileSnapshot,
               backends: tuple[Backend, ...],
               penalised: frozenset[str] = frozenset()) -> Decision:
        ranked = self.rank(context, snapshot, backends,
                           penalised=penalised)
        if not ranked:
            return _NO_AP_DIRECT
        backend, _ = ranked[0]
        return backend.route(context, snapshot)
