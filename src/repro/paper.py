"""Published numbers from the paper, for comparison in benches and docs.

Every quantity the evaluation sections report is collected here once, so
benchmark harnesses can print "paper vs measured" rows without magic
numbers scattered through the codebase.  Units: bytes, seconds, B/s --
converted from the paper's KBps/MBps/minutes at the definition site.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import DAY, HOUR, MINUTE, gbps, kbps, mbps

# --- Section 3: workload characteristics -----------------------------------

TOTAL_TASKS = 4_084_417
TOTAL_USERS = 783_944
TOTAL_UNIQUE_FILES = 563_517
MEASUREMENT_WEEK_DAYS = 7

VIDEO_REQUEST_SHARE = 0.75
SOFTWARE_REQUEST_SHARE = 0.15

FILE_SIZE_MIN = 4.0                    # bytes
FILE_SIZE_MEDIAN = 115e6
FILE_SIZE_MEAN = 390e6
FILE_SIZE_MAX = 4e9
SMALL_FILE_THRESHOLD = 8e6
SMALL_FILE_SHARE = 0.25                # <= 25% of files under 8 MB

BITTORRENT_SHARE = 0.68
EMULE_SHARE = 0.19
HTTP_FTP_SHARE = 0.13

ZIPF_A = 1.034
ZIPF_B = 14.444
ZIPF_FIT_ERROR = 0.153
SE_A = 0.010
SE_B = 1.134
SE_C = 0.01
SE_FIT_ERROR = 0.137

# Popularity classes (downloads per week).
UNPOPULAR_MAX_WEEKLY = 7               # [0, 7) -> unpopular
POPULAR_MAX_WEEKLY = 84                # [7, 84] -> popular; above -> highly
UNPOPULAR_FILE_SHARE = 0.932
HIGHLY_POPULAR_FILE_SHARE = 0.0084
UNPOPULAR_REQUEST_SHARE = 0.36
HIGHLY_POPULAR_REQUEST_SHARE = 0.39

# --- Section 4: cloud (Xuanfeng) performance --------------------------------

CLOUD_USER_COUNT = 30_000_000
CLOUD_STORAGE_BYTES = 2e15             # ~2 PB
CLOUD_CACHED_FILES = 5_000_000
CLOUD_SERVER_COUNT = 500
CACHE_HIT_RATIO = 0.89
CHUNK_DEDUP_SAVINGS = 0.01             # <1% -> not worth chunking

PREDOWNLOADER_BANDWIDTH = mbps(20.0)   # = 2.5 MBps
PRE_SPEED_MEDIAN = kbps(25.0)
PRE_SPEED_MEAN = kbps(69.0)
PRE_SPEED_MAX = 2.37e6                 # ~= 20 Mbps
PRE_SPEED_NEAR_ZERO_SHARE = 0.21
PRE_DELAY_MEDIAN = 82 * MINUTE
PRE_DELAY_MEAN = 370 * MINUTE
PRE_DELAY_MAX = 10071 * MINUTE

CLOUD_FAILURE_RATIO = 0.087
CLOUD_FAILURE_RATIO_NO_CACHE = 0.164
CLOUD_UNPOPULAR_FAILURE_RATIO = 0.13
STAGNATION_TIMEOUT = 1 * HOUR

P2P_TRAFFIC_OVERALL = 1.96             # traffic / file size
HTTP_OVERHEAD_LOW, HTTP_OVERHEAD_HIGH = 1.07, 1.10

FETCH_SPEED_MEDIAN = kbps(287.0)
FETCH_SPEED_MEAN = kbps(504.0)
FETCH_SPEED_MAX = 6.1e6                # ~= 50 Mbps
FETCH_DELAY_MEDIAN = 7 * MINUTE
FETCH_DELAY_MEAN = 27 * MINUTE
FETCH_DELAY_MAX = 9724 * MINUTE

IMPEDED_FETCH_THRESHOLD = kbps(125.0)  # 1 Mbps HD-video playback rate
IMPEDED_FETCH_SHARE = 0.28
IMPEDED_BY_ISP_BARRIER = 0.096
IMPEDED_BY_LOW_ACCESS_BW = 0.108
IMPEDED_BY_REJECTION = 0.015
IMPEDED_UNKNOWN = 0.061

E2E_SPEED_MEDIAN = kbps(233.0)
E2E_SPEED_MEAN = kbps(380.0)
E2E_DELAY_MEDIAN = 10 * MINUTE
E2E_DELAY_MEAN = 68 * MINUTE
E2E_DELAY_MAX = 19553 * MINUTE

CLOUD_UPLOAD_CAPACITY = gbps(30.0)
CLOUD_PEAK_BURDEN = gbps(34.0)         # day-7 peak incl. rejected demand
HIGHLY_POPULAR_BANDWIDTH_SHARE = 0.40  # ~40% of upload bandwidth
FETCH_REJECTION_RATIO = 0.015
USER_TRAFFIC_SAVING_LOW, USER_TRAFFIC_SAVING_HIGH = 0.86, 0.89

# --- Section 5: smart APs ----------------------------------------------------

AP_SAMPLE_SIZE = 1000
AP_FAILURE_RATIO = 0.168
AP_UNPOPULAR_FAILURE_RATIO = 0.42
AP_FAILURE_CAUSE_SEEDS = 0.86          # 145 / 168
AP_FAILURE_CAUSE_SERVER = 0.10         # 17 / 168
AP_FAILURE_CAUSE_BUG = 0.04            # 6 / 168
AP_BUG_FAILURE_RATE = 0.006            # 6 / 1000 replayed requests

AP_PRE_SPEED_MEDIAN = kbps(27.0)
AP_PRE_SPEED_MEAN = kbps(64.0)
AP_PRE_SPEED_MAX_FAST = 2.37e6         # HiWiFi / MiWiFi
AP_PRE_SPEED_MAX_NEWIFI = 0.93e6       # Newifi on NTFS USB flash
AP_PRE_DELAY_MEDIAN = 77 * MINUTE
AP_PRE_DELAY_MEAN = 402 * MINUTE
AP_PRE_DELAY_MAX = 8297 * MINUTE
AP_LAN_FETCH_SPEED_LOW, AP_LAN_FETCH_SPEED_HIGH = 8e6, 12e6
TESTBED_ACCESS_BANDWIDTH = mbps(20.0)

# --- Section 6: ODR ----------------------------------------------------------

ODR_IMPEDED_FETCH_SHARE = 0.09
ODR_BANDWIDTH_REDUCTION = 0.35
ODR_PEAK_BURDEN = gbps(22.0)
ODR_UNPOPULAR_FAILURE_RATIO = 0.13
ODR_FETCH_SPEED_MEDIAN = kbps(368.0)
ODR_FETCH_SPEED_MEAN = kbps(509.0)
ODR_FETCH_SPEED_MAX = 2.37e6           # capped by the 20 Mbps testbed line
ODR_WRONG_DECISION_SHARE = 0.01
ODR_LOCAL_DOWNLOAD_BANDWIDTH = mbps(20.0)
ODR_AP_SUGGESTION_THRESHOLD = 0.93e6   # below this access bw, AP is safe


@dataclass(frozen=True)
class PaperComparison:
    """One paper-vs-measured row for EXPERIMENTS.md and bench output."""

    quantity: str
    paper_value: float
    measured_value: float
    unit: str = ""

    @property
    def relative_error(self) -> float:
        if self.paper_value == 0:
            return float("inf") if self.measured_value else 0.0
        return abs(self.measured_value - self.paper_value) / \
            abs(self.paper_value)

    def format_row(self) -> str:
        return (f"{self.quantity:<46s} paper={self.paper_value:>12.4g} "
                f"measured={self.measured_value:>12.4g} {self.unit:<8s}"
                f"(rel.err {self.relative_error:6.1%})")
