"""China-like network substrate.

Models the parts of the Chinese Internet that the paper's findings hinge
on: the small set of giant per-ISP autonomous systems, the degraded
cross-ISP paths (the "ISP barrier"), CIDR-based IP-to-ISP resolution (the
role APNIC plays for the real ODR), and residential access links.
"""

from repro.netsim.isp import (
    ISP,
    MAJOR_ISPS,
    IspRegistry,
    default_registry,
)
from repro.netsim.ip import IpAllocator, IpResolver
from repro.netsim.topology import ChinaTopology, PathQuality
from repro.netsim.link import (
    AccessLink,
    AccessTechnology,
    AccessBandwidthModel,
)

__all__ = [
    "ISP",
    "MAJOR_ISPS",
    "IspRegistry",
    "default_registry",
    "IpAllocator",
    "IpResolver",
    "ChinaTopology",
    "PathQuality",
    "AccessLink",
    "AccessTechnology",
    "AccessBandwidthModel",
]
