"""AS-level topology and the ISP barrier.

China's inter-domain structure is modelled as a small graph of giant
per-ISP ASes (paper section 2.1, citing Tian et al.): every ISP is a
single node, intra-ISP paths ride the ISP's own backbone, and inter-ISP
paths traverse congested peering links -- the "ISP barrier" that degrades
cross-ISP delivery.

:class:`ChinaTopology` exposes a single question the rest of the system
asks: *what does the path between ISP A and ISP B support?*  The answer,
a :class:`PathQuality`, carries a bandwidth cap distribution and a
latency.  Caps are sampled per-flow (peering congestion varies), which is
what makes the measured cross-ISP fetch speeds a distribution rather than
a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx
import numpy as np

from repro.netsim.isp import ISP, IspRegistry, default_registry
from repro.sim.clock import kbps, mbps


@dataclass(frozen=True)
class PathQuality:
    """Capability of a network path between two ISP-homed endpoints.

    ``cap_median``/``cap_sigma`` parameterise a lognormal per-flow
    bandwidth cap; ``latency_ms`` is the one-way propagation latency.
    """

    cap_median: float
    cap_sigma: float
    latency_ms: float
    hops: int

    def sample_cap(self, rng: np.random.Generator) -> float:
        """Draw this path's bandwidth cap for one flow, in B/s."""
        return float(self.cap_median *
                     np.exp(rng.normal(0.0, self.cap_sigma)))


# Calibration notes:
#  * intra-ISP backbone paths are effectively unconstrained relative to
#    access links (median 12 MBps per flow);
#  * cross-ISP peering paths are the barrier: median ~90 KBps with high
#    variance, so most cross-ISP flows fall below the 125 KBps HD-video
#    threshold the paper uses to define an "impeded" fetch (section 4.2).
_INTRA_CAP_MEDIAN = mbps(96.0)
_INTRA_CAP_SIGMA = 0.35
_CROSS_CAP_MEDIAN = kbps(90.0)
_CROSS_CAP_SIGMA = 0.60
_INTRA_LATENCY_MS = 18.0
_CROSS_LATENCY_MS = 55.0


class ChinaTopology:
    """The per-ISP AS graph with peering-quality annotations."""

    def __init__(self, registry: Optional[IspRegistry] = None,
                 cross_cap_median: float = _CROSS_CAP_MEDIAN,
                 cross_cap_sigma: float = _CROSS_CAP_SIGMA,
                 intra_cap_median: float = _INTRA_CAP_MEDIAN,
                 intra_cap_sigma: float = _INTRA_CAP_SIGMA):
        self._registry = registry or default_registry()
        self._cross_cap_median = cross_cap_median
        self._cross_cap_sigma = cross_cap_sigma
        self._intra_cap_median = intra_cap_median
        self._intra_cap_sigma = intra_cap_sigma
        self._graph = self._build_graph()
        # The graph is immutable after construction and has a handful of
        # nodes, so both queries are memoised per (src, dst) pair; cloud
        # replay used to spend a third of its time re-running networkx
        # shortest paths over this static mesh.
        self._hop_cache: dict[tuple[ISP, ISP], int] = {}
        self._quality_cache: dict[tuple[ISP, ISP], PathQuality] = {}

    def _build_graph(self) -> nx.Graph:
        graph = nx.Graph()
        isps = self._registry.isps()
        for isp in isps:
            graph.add_node(isp)
        # Full peering mesh among the giants: China's majors interconnect
        # directly (through national exchange points), and the long-tail
        # "other" ISPs buy transit from Telecom and Unicom.
        majors = [isp for isp in isps if self._registry.is_major(isp)]
        for index, a in enumerate(majors):
            for b in majors[index + 1:]:
                graph.add_edge(a, b, kind="peering")
        if ISP.OTHER in isps:
            graph.add_edge(ISP.OTHER, ISP.TELECOM, kind="transit")
            graph.add_edge(ISP.OTHER, ISP.UNICOM, kind="transit")
        return graph

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    def hop_count(self, src: ISP, dst: ISP) -> int:
        """AS hops between two ISPs (0 when homed in the same ISP)."""
        if src == dst:
            return 0
        key = (src, dst)
        hops = self._hop_cache.get(key)
        if hops is None:
            hops = nx.shortest_path_length(self._graph, src, dst)
            self._hop_cache[key] = hops
        return hops

    def path_quality(self, src: ISP, dst: ISP) -> PathQuality:
        """Quality of the best path between endpoints homed at two ISPs."""
        key = (src, dst)
        quality = self._quality_cache.get(key)
        if quality is not None:
            return quality
        quality = self._compute_path_quality(src, dst)
        self._quality_cache[key] = quality
        return quality

    def _compute_path_quality(self, src: ISP, dst: ISP) -> PathQuality:
        hops = self.hop_count(src, dst)
        if hops == 0:
            return PathQuality(cap_median=self._intra_cap_median,
                               cap_sigma=self._intra_cap_sigma,
                               latency_ms=_INTRA_LATENCY_MS, hops=0)
        # Every additional AS hop crosses one more congested peering point;
        # the cap shrinks geometrically and latency grows additively.
        cap = self._cross_cap_median / (2.0 ** (hops - 1))
        latency = _INTRA_LATENCY_MS + hops * _CROSS_LATENCY_MS
        return PathQuality(cap_median=cap, cap_sigma=self._cross_cap_sigma,
                           latency_ms=latency, hops=hops)

    def crosses_barrier(self, src: ISP, dst: ISP) -> bool:
        """True when a flow between the two ISPs crosses the ISP barrier."""
        return src != dst
