"""ISP identities and the registry of their address space.

The paper (section 2.1) describes China's topology as "a simple AS
topology with a small number of major ISPs", and Xuanfeng deploys
uploading servers inside exactly four of them: Unicom, Telecom, Mobile,
and CERNET.  Users outside these four (9.6% of fetch processes in the
measurement) cannot get a privileged path and hit the ISP barrier.

We model the four majors plus a catch-all ``OTHER`` for the long tail of
small ISPs, each owning a handful of /8-scale CIDR blocks loosely
patterned after real allocations.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np


class ISP(enum.Enum):
    """An Internet service provider (autonomous system) in the model."""

    UNICOM = "unicom"
    TELECOM = "telecom"
    MOBILE = "mobile"
    CERNET = "cernet"
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The four ISPs in which Xuanfeng deploys uploading servers.
MAJOR_ISPS: tuple[ISP, ...] = (ISP.UNICOM, ISP.TELECOM, ISP.MOBILE,
                               ISP.CERNET)


@dataclass(frozen=True)
class IspProfile:
    """Static properties of one ISP's address space and population share."""

    isp: ISP
    cidrs: tuple[str, ...]
    #: Share of the modelled user population homed in this ISP.  Calibrated
    #: so that ~9.6% of users fall outside the four majors (paper 4.2).
    population_share: float

    def networks(self) -> list[ipaddress.IPv4Network]:
        # Copy the cached parse so callers that mutate the list (none in
        # tree, but the old contract allowed it) cannot poison the cache.
        return list(_parsed_networks(self.cidrs))


@lru_cache(maxsize=None)
def _parsed_networks(cidrs: tuple[str, ...]) -> tuple[
        ipaddress.IPv4Network, ...]:
    """CIDR parsing is ~10 us per block; profiles are immutable, so parse
    each block tuple once per process instead of per allocation."""
    return tuple(ipaddress.ip_network(cidr) for cidr in cidrs)


_DEFAULT_PROFILES: tuple[IspProfile, ...] = (
    IspProfile(ISP.TELECOM, ("58.32.0.0/11", "114.80.0.0/12",
                             "180.152.0.0/13"), 0.42),
    IspProfile(ISP.UNICOM, ("112.224.0.0/11", "123.112.0.0/12",
                            "221.192.0.0/13"), 0.28),
    IspProfile(ISP.MOBILE, ("111.0.0.0/10", "183.192.0.0/10"), 0.16),
    IspProfile(ISP.CERNET, ("166.111.0.0/16", "202.112.0.0/13",
                            "211.64.0.0/13"), 0.044),
    IspProfile(ISP.OTHER, ("43.224.0.0/11", "103.0.0.0/10",
                           "122.224.0.0/12"), 0.096),
)


class IspRegistry:
    """Lookup table of ISP profiles plus sampling of user home ISPs."""

    def __init__(self, profiles: tuple[IspProfile, ...] = _DEFAULT_PROFILES):
        total_share = sum(p.population_share for p in profiles)
        if abs(total_share - 1.0) > 1e-9:
            raise ValueError(
                f"population shares must sum to 1, got {total_share}")
        seen = set()
        for profile in profiles:
            if profile.isp in seen:
                raise ValueError(f"duplicate profile for {profile.isp}")
            seen.add(profile.isp)
        self._profiles = {p.isp: p for p in profiles}
        self._order = tuple(p.isp for p in profiles)
        # Inverse-CDF table for sample_isp, built exactly the way
        # Generator.choice builds its internal CDF so one searchsorted
        # over one uniform draw is bit-identical to the old per-call
        # rng.choice(len(order), p=shares).
        shares = np.asarray([p.population_share for p in profiles],
                            dtype=float)
        cdf = shares.cumsum()
        cdf /= cdf[-1]
        self._share_cdf = cdf

    def profile(self, isp: ISP) -> IspProfile:
        return self._profiles[isp]

    def isps(self) -> tuple[ISP, ...]:
        return self._order

    def population_shares(self) -> dict[ISP, float]:
        return {isp: self._profiles[isp].population_share
                for isp in self._order}

    def is_major(self, isp: ISP) -> bool:
        """Is this one of the four ISPs hosting Xuanfeng uploading servers?"""
        return isp in MAJOR_ISPS

    def sample_isp(self, rng) -> ISP:
        """Draw a home ISP according to population shares."""
        cdf = self._share_cdf
        index = cdf.searchsorted(rng.random(), side="right")
        return self._order[min(index, len(self._order) - 1)]


_DEFAULT_REGISTRY: IspRegistry | None = None


def default_registry() -> IspRegistry:
    """The shared default registry (cheap, immutable, lazily built)."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = IspRegistry()
    return _DEFAULT_REGISTRY
