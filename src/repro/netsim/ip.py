"""IP address allocation and IP-to-ISP resolution.

The real ODR resolves a requesting user's ISP from her IP address via the
APNIC service.  We reproduce that interface with a deterministic CIDR
registry: :class:`IpAllocator` hands out addresses from each ISP's blocks
(for the synthetic user population) and :class:`IpResolver` maps any
address back to its owning ISP.

Resolution uses a sorted interval table with binary search, so lookups are
O(log n) in the number of CIDR blocks.
"""

from __future__ import annotations

import bisect
import ipaddress
from typing import Optional

from repro.netsim.isp import ISP, IspRegistry, default_registry


class IpAllocator:
    """Sequential, collision-free address allocation per ISP.

    Addresses are handed out deterministically (block by block, skipping
    network/broadcast-ish edges is unnecessary at this abstraction level),
    so a seeded workload always maps users to the same addresses.
    """

    def __init__(self, registry: Optional[IspRegistry] = None):
        self._registry = registry or default_registry()
        self._cursors: dict[ISP, tuple[int, int]] = {}
        self._networks: dict[ISP, list] = {}
        for isp in self._registry.isps():
            self._cursors[isp] = (0, 1)  # (block index, offset in block)
            self._networks[isp] = self._registry.profile(isp).networks()

    def allocate(self, isp: ISP) -> str:
        """Return the next unused address homed in ``isp``."""
        networks = self._networks[isp]
        block_index, offset = self._cursors[isp]
        while block_index < len(networks):
            network = networks[block_index]
            if offset < network.num_addresses - 1:
                address = network.network_address + offset
                self._cursors[isp] = (block_index, offset + 1)
                return str(address)
            block_index, offset = block_index + 1, 1
        raise RuntimeError(f"address space of {isp} exhausted")


class IpResolver:
    """Map an IPv4 address to its owning ISP (APNIC-style lookup)."""

    def __init__(self, registry: Optional[IspRegistry] = None):
        self._registry = registry or default_registry()
        intervals: list[tuple[int, int, ISP]] = []
        for isp in self._registry.isps():
            for network in self._registry.profile(isp).networks():
                start = int(network.network_address)
                end = start + network.num_addresses
                intervals.append((start, end, isp))
        intervals.sort()
        for (s1, e1, i1), (s2, _e2, i2) in zip(intervals, intervals[1:]):
            if s2 < e1:
                raise ValueError(
                    f"overlapping CIDR blocks between {i1} and {i2}")
        self._starts = [interval[0] for interval in intervals]
        self._intervals = intervals

    def resolve(self, address: str) -> Optional[ISP]:
        """The ISP owning ``address``, or ``None`` if unallocated space."""
        value = int(ipaddress.ip_address(address))
        index = bisect.bisect_right(self._starts, value) - 1
        if index < 0:
            return None
        start, end, isp = self._intervals[index]
        if start <= value < end:
            return isp
        return None

    def is_major(self, address: str) -> bool:
        """Whether the address is homed in one of the four major ISPs."""
        isp = self.resolve(address)
        return isp is not None and self._registry.is_major(isp)
