"""Residential access links and the user bandwidth distribution.

Two facts from the paper anchor this model:

* the benchmark testbed uses Unicom ADSL lines with "20 Mbps (= 2.5 MBps)
  of Internet access bandwidth" (section 5.1) -- the high end of China's
  fixed broadband in 2015;
* 10.8% of Xuanfeng fetch processes are limited by low user-side access
  bandwidth, defined as < 125 KBps = 1 Mbps (section 4.2).

:class:`AccessBandwidthModel` therefore samples a mixture: a lognormal
body spanning the 1-20 Mbps broadband range plus an explicit low-speed
tail calibrated to put ~11% of users below 1 Mbps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.sim.clock import kbps, mbps


class AccessTechnology(enum.Enum):
    """Access technology of a modelled subscriber line."""

    ADSL = "adsl"
    FIBER = "fiber"
    CABLE = "cable"
    MOBILE = "mobile"


@dataclass(frozen=True)
class AccessLink:
    """One subscriber's access link: the last-hop bandwidth bound."""

    technology: AccessTechnology
    downstream: float  # B/s
    upstream: float    # B/s

    def __post_init__(self):
        if self.downstream <= 0 or self.upstream <= 0:
            raise ValueError("link rates must be positive")

    @property
    def is_low_bandwidth(self) -> bool:
        """Below the paper's 1 Mbps (125 KBps) HD-streaming threshold."""
        return self.downstream < kbps(125.0)


#: The testbed line used in section 5: 20 Mbps down Unicom ADSL.
TESTBED_ADSL = AccessLink(AccessTechnology.ADSL,
                          downstream=mbps(20.0), upstream=mbps(1.0))

#: TCP goodput over ADSL: ATM cell tax + PPPoE/TCP headers eat ~5% of
#: the sync rate, which is why a 20 Mbps (2.5 MBps) line tops out at the
#: paper's 2.37 MBps.
ADSL_GOODPUT = 0.95


def adsl_goodput(link: AccessLink) -> float:
    """Achievable TCP goodput of an ADSL line's downstream, in B/s."""
    return link.downstream * ADSL_GOODPUT


class AccessBandwidthModel:
    """Sampler of subscriber downstream bandwidth.

    Parameters
    ----------
    low_tail_fraction:
        Probability mass explicitly placed below 1 Mbps; the paper's
        10.8% "low user-side access bandwidth" share (plus margin for
        mass the lognormal body itself puts below the threshold) implies
        roughly 0.10 here.
    body_median / body_sigma:
        Lognormal parameters of the broadband body, in B/s / nats.
    """

    def __init__(self, low_tail_fraction: float = 0.095,
                 body_median: float = mbps(7.2), body_sigma: float = 1.0,
                 max_downstream: float = mbps(50.0)):
        if not 0.0 <= low_tail_fraction < 1.0:
            raise ValueError("low_tail_fraction must be in [0, 1)")
        self.low_tail_fraction = low_tail_fraction
        self.body_median = body_median
        self.body_sigma = body_sigma
        self.max_downstream = max_downstream
        self._log_tail_low = float(np.log(mbps(0.064)))
        self._log_tail_high = float(np.log(mbps(1.0)))

    def sample_downstream(self, rng: np.random.Generator) -> float:
        """Draw one subscriber's downstream bandwidth in B/s."""
        if rng.random() < self.low_tail_fraction:
            # Narrowband / congested-rural tail: 64 Kbps .. 1 Mbps,
            # log-uniform so very slow lines exist but do not dominate.
            return float(np.exp(rng.uniform(self._log_tail_low,
                                            self._log_tail_high)))
        draw = self.body_median * np.exp(rng.normal(0.0, self.body_sigma))
        return float(min(draw, self.max_downstream))

    def sample_link(self, rng: np.random.Generator) -> AccessLink:
        """Draw a full access link; upstream is a realistic ADSL fraction."""
        downstream = self.sample_downstream(rng)
        technology = (AccessTechnology.FIBER if downstream >= mbps(20.0)
                      else AccessTechnology.ADSL)
        upstream = max(mbps(0.032), downstream / 16.0)
        return AccessLink(technology, downstream=downstream,
                          upstream=upstream)
