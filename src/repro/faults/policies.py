"""Resilience policies: retry/backoff, circuit breaking, checkpoints.

All policies are deterministic given their inputs -- jitter comes from a
caller-supplied RNG (a seeded substream), and the circuit breaker is
clock-unit-agnostic: callers feed whatever monotonic clock their layer
runs on (sim seconds, request indices, or wall time) and get the same
state machine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded attempts and optional jitter.

    ``backoff(attempt)`` is the delay *after* the ``attempt``-th failure
    (1-based).  Jitter multiplies the base delay by ``1 + jitter * u``
    with ``u ~ U[0, 1)`` drawn from the caller's RNG, so two runs with
    the same seed back off identically.
    """

    max_attempts: int = 4
    base_delay: float = 30.0
    multiplier: float = 2.0
    max_delay: float = 1800.0
    jitter: float = 0.25

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    def allows(self, attempt: int) -> bool:
        """May a new attempt numbered ``attempt`` (1-based) start?"""
        return attempt <= self.max_attempts

    def backoff(self, attempt: int, rng=None) -> float:
        """Delay after the ``attempt``-th failed attempt (1-based)."""
        delay = min(self.base_delay * self.multiplier ** (attempt - 1),
                    self.max_delay)
        if rng is not None and self.jitter > 0:
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay


@dataclass
class TransferCheckpoint:
    """Committed progress of a transfer that may restart.

    Resume semantics: a restarted session only downloads
    ``remaining(size)`` bytes; bytes committed before the failure are
    never re-fetched (matching how ODR systems persist partial files).
    """

    committed_bytes: float = 0.0

    def commit(self, bytes_obtained: float) -> None:
        if bytes_obtained > 0:
            self.committed_bytes += bytes_obtained

    def remaining(self, size: float) -> float:
        return max(size - self.committed_bytes, 0.0)


class CircuitBreaker:
    """Failure-rate circuit breaker (closed -> open -> half-open).

    The breaker trips open when, over the last ``window`` recorded
    outcomes (with at least ``min_samples`` of them), the failure rate
    reaches ``threshold``.  While open, ``allow`` rejects until
    ``cooldown`` clock units have elapsed, then admits a single
    half-open probe; the probe's outcome closes or re-opens the circuit.

    Clock units are whatever the caller passes as ``now`` -- the state
    machine only compares and subtracts them.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, window: int = 12, threshold: float = 0.5,
                 min_samples: int = 6, cooldown: float = 60.0,
                 name: str = "breaker", metrics=None):
        if window < 1 or min_samples < 1:
            raise ValueError("window and min_samples must be >= 1")
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if cooldown <= 0:
            raise ValueError("cooldown must be > 0")
        self.window = window
        self.threshold = threshold
        self.min_samples = min_samples
        self.cooldown = cooldown
        self.name = name
        self.state = self.CLOSED
        self.opened_at: Optional[float] = None
        self.trips = 0
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._probing = False
        self._metrics = metrics

    def _failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return 1.0 - sum(self._outcomes) / len(self._outcomes)

    def allow(self, now: float) -> bool:
        """May a request proceed through this backend at ``now``?"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self.opened_at is not None and \
                    now - self.opened_at >= self.cooldown:
                self.state = self.HALF_OPEN
                self._probing = False
            else:
                return False
        # Half-open: admit exactly one probe at a time.
        if self._probing:
            return False
        self._probing = True
        return True

    def record(self, success: bool, now: float) -> None:
        """Record an outcome of a request that was allowed through."""
        if self.state == self.HALF_OPEN:
            self._probing = False
            if success:
                self.state = self.CLOSED
                self.opened_at = None
                self._outcomes.clear()
                self._outcomes.append(True)
            else:
                self._trip(now)
            return
        self._outcomes.append(success)
        if (self.state == self.CLOSED
                and len(self._outcomes) >= self.min_samples
                and self._failure_rate() >= self.threshold):
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.state = self.OPEN
        self.opened_at = now
        self.trips += 1
        self._outcomes.clear()
        if self._metrics is not None:
            self._metrics.counter("repro_faults_breaker_trips_total",
                                  breaker=self.name).inc()

    def retry_after(self, now: float) -> float:
        """Clock units until the next probe is admitted (0 if allowed)."""
        if self.state != self.OPEN or self.opened_at is None:
            return 0.0
        return max(self.cooldown - (now - self.opened_at), 0.0)


@dataclass(frozen=True)
class ResiliencePolicies:
    """The bundle of knobs the resilience layer runs with."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint_resume: bool = True
    failover: bool = True
    breaker_window: int = 12
    breaker_threshold: float = 0.5
    breaker_min_samples: int = 6
    breaker_cooldown: float = 60.0

    def breaker(self, name: str, metrics=None) -> CircuitBreaker:
        return CircuitBreaker(window=self.breaker_window,
                              threshold=self.breaker_threshold,
                              min_samples=self.breaker_min_samples,
                              cooldown=self.breaker_cooldown,
                              name=name, metrics=metrics)


DEFAULT_POLICIES = ResiliencePolicies()
