"""The fault injector: delivers a :class:`FaultPlan` into a run.

Two modes of use, both deterministic:

* **Engine mode** (`XuanfengCloud`): ``bind(sim)`` schedules one
  activation callback per fault window; registered processes whose
  entity matches an opening window are interrupted through the engine's
  interrupt machinery (``Interrupt.cause`` is the :class:`FaultSpec`).

* **Query mode** (analytic replay paths -- ``ShardReplay``, the AP
  benchrig, ODR): callers ask "is fault X active on entity E at time
  T?" and steer their own clocks.  All answers depend only on the plan,
  so sharded and sequential runs agree bit-for-bit.

The injector also keeps the resilience scoreboard (faults injected,
impacts, retries, failovers, aborts, recoveries) as plain counters plus
``repro.obs`` metrics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.faults.plan import WEDGE_KINDS, FaultPlan, FaultSpec
from repro.obs import NOOP
from repro.sim.engine import Interrupt, Process, Simulator
from repro.sim.randomness import substream

#: Kinds whose window *opening* interrupts in-flight engine work.  The
#: others (degradations, pool pressure) only shape decisions made at
#: attempt boundaries and are consumed through the query API.
INTERRUPT_KINDS: tuple[str, ...] = ("server_crash", "vm_stall",
                                    "seed_death")


class FaultInjector:
    """Deterministic dispatcher for one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan, metrics=NOOP):
        self.plan = plan
        self.metrics = metrics
        # (domain, entity) -> processes currently exposed to faults
        # (several fetch flows can share one ISP group).
        self._registered: Dict[Tuple[str, str], list[Process]] = {}
        # Scoreboard (plain ints so analytic paths can read them back
        # without an obs registry).
        self.injected = 0
        self.impacts = 0
        self.retries = 0
        self.failovers = 0
        self.aborts = 0
        self.recoveries = 0

    # -- query mode -----------------------------------------------------------

    def _gated(self, kinds: Iterable[str], entity: str):
        for spec in self.plan.specs_of(kinds):
            if self.plan.applies(spec, entity):
                yield spec

    def active(self, kind: str, entity: str,
               now: float) -> Optional[FaultSpec]:
        """The first active, gated window of ``kind`` on ``entity``."""
        for spec in self._gated((kind,), entity):
            if spec.active_at(now):
                return spec
        return None

    def first_active(self, kinds: Iterable[str], entity: str,
                     now: float) -> Optional[FaultSpec]:
        """The first active, gated window among ``kinds`` on ``entity``."""
        for spec in self._gated(kinds, entity):
            if spec.active_at(now):
                return spec
        return None

    def clear_time(self, kinds: Iterable[str], entity: str,
                   now: float) -> float:
        """Earliest time every active window among ``kinds`` has ended."""
        clear = now
        for spec in self._gated(kinds, entity):
            if spec.active_at(now):
                clear = max(clear, spec.end)
        return clear

    def next_break(self, kinds: Iterable[str], entity: str, after: float,
                   before: float) -> Optional[FaultSpec]:
        """Earliest gated window opening strictly inside (after, before)."""
        best: Optional[FaultSpec] = None
        for spec in self._gated(kinds, entity):
            if after < spec.start < before:
                if best is None or spec.start < best.start:
                    best = spec
        return best

    def factor(self, kind: str, entity: str, now: float) -> float:
        """Combined severity multiplier of active ``kind`` windows (1.0
        when none are active)."""
        factor = 1.0
        for spec in self._gated((kind,), entity):
            if spec.active_at(now):
                factor *= spec.severity
        return factor

    def wedged(self, entity: str, born: float,
               now: float) -> Optional[FaultSpec]:
        """The wedge a process born at ``born`` (plan clock) carries.

        Wedge kinds (:data:`~repro.faults.plan.WEDGE_KINDS`) are
        process states, not windows: a process alive when the window
        opens adopts the fault and keeps it until death, while a
        replacement spawned after the open starts clean.  Hence the
        adoption rule ``born <= spec.start <= now`` -- the window end is
        deliberately ignored.
        """
        for spec in self._gated(WEDGE_KINDS, entity):
            if born <= spec.start <= now:
                return spec
        return None

    def crashed_isps(self, now: float) -> frozenset[str]:
        """ISP names whose upload-server groups are dark at ``now``."""
        down = set()
        for spec in self.plan.specs_of(("server_crash",)):
            if not spec.active_at(now):
                continue
            name = spec.target.partition(":")[2]
            if name and name != "*" and self.plan.applies(spec, name):
                down.add(name)
        return frozenset(down)

    def rng(self, label: str):
        """A jitter substream tied to the plan seed (backoff jitter)."""
        return substream(self.plan.seed, f"jitter:{label}")

    # -- engine mode ----------------------------------------------------------

    def register(self, entity: Tuple[str, str], process: Process) -> None:
        """Expose ``process`` to faults targeting ``(domain, name)``."""
        self._registered.setdefault(entity, []).append(process)

    def unregister(self, entity: Tuple[str, str],
                   process: Process) -> None:
        procs = self._registered.get(entity)
        if procs is not None:
            try:
                procs.remove(process)
            except ValueError:
                pass
            if not procs:
                del self._registered[entity]

    def bind(self, sim: Simulator,
             kinds: Optional[Iterable[str]] = None) -> None:
        """Schedule one activation callback per fault window.

        ``kinds`` restricts binding to the given fault kinds (the cloud
        engine binds only cloud-domain kinds; AP windows run on the
        benchrig's own replay clocks and are consumed via queries).
        """
        specs = self.plan.specs if kinds is None \
            else self.plan.specs_of(kinds)
        for spec in specs:
            sim.call_at(spec.start, self._activate, spec)

    def _activate(self, spec: FaultSpec) -> None:
        """A window just opened: interrupt matching registered work."""
        self.injected += 1
        self.metrics.counter("repro_faults_injected_total",
                             kind=spec.kind).inc()
        if spec.kind not in INTERRUPT_KINDS:
            return
        targets = [proc
                   for entity, procs in list(self._registered.items())
                   if entity[0] == spec.domain
                   and self.plan.applies(spec, entity[1])
                   for proc in list(procs)]
        for proc in targets:
            proc.interrupt(cause=spec)

    # -- scoreboard -----------------------------------------------------------

    def impact(self, spec: FaultSpec) -> None:
        self.impacts += 1
        self.metrics.counter("repro_faults_impacts_total",
                             kind=spec.kind).inc()

    def retry(self, layer: str) -> None:
        self.retries += 1
        self.metrics.counter("repro_faults_retries_total",
                             layer=layer).inc()

    def failover(self, layer: str) -> None:
        self.failovers += 1
        self.metrics.counter("repro_faults_failovers_total",
                             layer=layer).inc()

    def abort(self, layer: str) -> None:
        self.aborts += 1
        self.metrics.counter("repro_faults_aborts_total",
                             layer=layer).inc()

    def recover(self, layer: str, seconds: float) -> None:
        """A task finished successfully after being impacted: MTTR."""
        self.recoveries += 1
        self.metrics.counter("repro_faults_recoveries_total",
                             layer=layer).inc()
        self.metrics.histogram("repro_faults_recovery_seconds").observe(
            seconds)

    def scoreboard(self) -> dict:
        return {"injected": self.injected, "impacts": self.impacts,
                "retries": self.retries, "failovers": self.failovers,
                "aborts": self.aborts, "recoveries": self.recoveries}
