"""``python -m repro.faults`` -- the chaos campaign CLI.

Runs a fault plan against the sharded full-week replay and prints (or
writes) the canonical JSON report.  Examples::

    # Built-in plan, policies off vs on, deterministic report:
    python -m repro.faults --scale 0.003 --policies both

    # A custom plan, twice, proving byte-identical output:
    python -m repro.faults --plan chaos.json --out a.json
    python -m repro.faults --plan chaos.json --out b.json --jobs 2
    diff a.json b.json

    # Export the built-in plan for editing:
    python -m repro.faults --write-plan examples/chaos_plan.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.faults.chaos import (
    DEFAULT_CHAOS_SCALE,
    DEFAULT_WORKLOAD_SEED,
    canonical_json,
    chaos_campaign,
)
from repro.faults.plan import (
    DEFAULT_CHAOS_SEED,
    FaultPlan,
    default_chaos_plan,
)
from repro.scale.plan import DEFAULT_SHARDS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Run a deterministic chaos campaign over the "
                    "sharded replay and emit a canonical JSON report.")
    parser.add_argument("--plan", metavar="PATH", default=None,
                        help="fault plan JSON (default: built-in plan)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the plan's gating seed")
    parser.add_argument("--scale", type=float,
                        default=DEFAULT_CHAOS_SCALE,
                        help="workload scale (default %(default)s)")
    parser.add_argument("--workload-seed", type=int,
                        default=DEFAULT_WORKLOAD_SEED,
                        help="workload seed (default %(default)s)")
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS,
                        help="shard count (default %(default)s)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (result-invariant)")
    parser.add_argument("--policies", choices=("on", "off", "both"),
                        default="both",
                        help="resilience policies (default %(default)s)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the report here instead of stdout")
    parser.add_argument("--write-plan", metavar="PATH", default=None,
                        help="write the effective plan JSON and exit")
    return parser


def load_plan(path: Optional[str], seed: Optional[int]) -> FaultPlan:
    if path is not None:
        plan = FaultPlan.from_file(path)
    else:
        plan = default_chaos_plan(
            seed if seed is not None else DEFAULT_CHAOS_SEED)
    if seed is not None and plan.seed != seed:
        plan = FaultPlan(name=plan.name, seed=seed, specs=plan.specs)
    return plan


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    plan = load_plan(args.plan, args.seed)

    if args.write_plan is not None:
        plan.to_file(args.write_plan)
        print(f"wrote {len(plan.specs)}-spec plan {plan.name!r} "
              f"to {args.write_plan}", file=sys.stderr)
        return 0

    report = chaos_campaign(args.scale, args.workload_seed, plan=plan,
                            policies=args.policies, shards=args.shards,
                            jobs=args.jobs)
    text = canonical_json(report)
    if args.out is not None:
        from pathlib import Path

        from repro.recovery.atomic import atomic_write_text
        atomic_write_text(Path(args.out), text + "\n")
        print(f"report written to {args.out} "
              f"(digest {report['digest'][:12]})", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
