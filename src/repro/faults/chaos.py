"""The chaos driver: seeded fault campaigns over the sharded replay.

``python -m repro.faults`` runs a :class:`~repro.faults.plan.FaultPlan`
against the full-week sharded cloud replay and emits a canonical JSON
report.  Two invariants make the report useful as a regression
artifact:

* *Determinism*: the report contains no wall-clock material, its keys
  are sorted, and every number derives from seeded computation -- two
  runs with the same plan/seed/scale are byte-identical, regardless of
  ``--jobs`` (asserted by the CI chaos smoke job).
* *Comparability*: running with ``--policies both`` produces a
  policies-off and a policies-on section over the *same* fault
  schedule, so the difference is purely what the resilience policies
  recovered.

This module imports :mod:`repro.scale` (which imports
:mod:`repro.cloud`, which imports :mod:`repro.faults.injector`), so it
must never be imported from ``repro.faults.__init__``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from repro.faults.plan import FaultPlan, default_chaos_plan
from repro.obs.registry import AnyRegistry, NOOP
from repro.scale.pipelines import sharded_cloud_stats
from repro.scale.plan import DEFAULT_SHARDS, ShardPlan
from repro.scale.replay import ShardRunStats

#: Quantiles summarised per sketch in the report.
REPORT_QUANTILES = (0.5, 0.9, 0.99)

#: Default workload knobs for ``python -m repro.faults``: small enough
#: for CI, large enough that every fault window catches real traffic.
DEFAULT_CHAOS_SCALE = 0.003
DEFAULT_WORKLOAD_SEED = 20150222


def _sketch_summary(sketch) -> dict:
    return {
        "count": sketch.count,
        "mean": sketch.mean,
        "quantiles": {f"p{int(q * 100)}": sketch.quantile(q)
                      for q in REPORT_QUANTILES},
    }


def stats_report(stats: ShardRunStats) -> dict:
    """A deterministic, JSON-ready view of one replay's stats."""
    return {
        "tasks": stats.tasks,
        "lookups": stats.lookups,
        "hits": stats.hits,
        "attempts": stats.attempts,
        "attempt_failures": stats.attempt_failures,
        "failures": stats.failures,
        "failure_ratio": stats.failures / stats.tasks
        if stats.tasks else 0.0,
        "totals_by_class": {klass.value: count for klass, count
                            in sorted(stats.totals_by_class.items(),
                                      key=lambda item: item[0].value)},
        "failures_by_class": {klass.value: count for klass, count
                              in sorted(stats.failures_by_class.items(),
                                        key=lambda item:
                                        item[0].value)},
        "fetch_count": stats.fetch_count,
        "impeded_fetches": stats.impeded_fetches,
        "payload_bytes": stats.payload_bytes,
        "traffic_bytes": stats.traffic_bytes,
        "pre_traffic_bytes": stats.pre_traffic_bytes,
        "pre_speed": _sketch_summary(stats.pre_speed),
        "fetch_speed": _sketch_summary(stats.fetch_speed),
        "e2e_delay": _sketch_summary(stats.e2e_delay),
        "faults": {
            "impacts": stats.fault_impacts,
            "retries": stats.fault_retries,
            "failovers": stats.fault_failovers,
            "aborts": stats.fault_aborts,
            "recoveries": stats.fault_recoveries,
        },
    }


def run_chaos(scale: float = DEFAULT_CHAOS_SCALE,
              seed: int = DEFAULT_WORKLOAD_SEED, *,
              plan: Optional[FaultPlan] = None,
              policies_on: bool = True,
              shards: int = DEFAULT_SHARDS, jobs: int = 1,
              metrics: AnyRegistry = NOOP) -> ShardRunStats:
    """One full-week sharded replay under ``plan`` (or fault-free)."""
    shard_plan = ShardPlan(scale=scale, seed=seed, shards=shards)
    stats, _info = sharded_cloud_stats(shard_plan, jobs=jobs,
                                       metrics=metrics, fault_plan=plan,
                                       policies_on=policies_on)
    return stats


def chaos_campaign(scale: float = DEFAULT_CHAOS_SCALE,
                   seed: int = DEFAULT_WORKLOAD_SEED, *,
                   plan: Optional[FaultPlan] = None,
                   policies: str = "both",
                   shards: int = DEFAULT_SHARDS, jobs: int = 1,
                   metrics: AnyRegistry = NOOP) -> dict:
    """Run the requested campaign and build the canonical report.

    ``policies`` is ``"on"``, ``"off"``, or ``"both"``; with ``both``
    the same plan runs twice and the report carries both sections plus
    the recovery delta.
    """
    plan = plan if plan is not None else default_chaos_plan()
    report: dict = {
        "plan": {"name": plan.name, "seed": plan.seed,
                 "spec_count": len(plan.specs)},
        "workload": {"scale": scale, "seed": seed, "shards": shards},
        "runs": {},
    }
    if policies in ("off", "both"):
        off = run_chaos(scale, seed, plan=plan, policies_on=False,
                        shards=shards, jobs=jobs, metrics=metrics)
        report["runs"]["policies_off"] = stats_report(off)
    if policies in ("on", "both"):
        on = run_chaos(scale, seed, plan=plan, policies_on=True,
                       shards=shards, jobs=jobs, metrics=metrics)
        report["runs"]["policies_on"] = stats_report(on)
    if policies == "both":
        off_failures = report["runs"]["policies_off"]["failures"]
        on_failures = report["runs"]["policies_on"]["failures"]
        recovered = off_failures - on_failures
        report["recovery"] = {
            "policies_off_failures": off_failures,
            "policies_on_failures": on_failures,
            "recovered_tasks": recovered,
            "recovered_fraction": recovered / off_failures
            if off_failures else 0.0,
        }
    report["digest"] = report_digest(report)
    return report


def canonical_json(report: dict) -> str:
    """The byte-stable serialisation the CI smoke job diffs."""
    return json.dumps(report, sort_keys=True, indent=2)


def report_digest(report: dict) -> str:
    """SHA-256 over the canonical serialisation, digest field excluded."""
    body = {key: value for key, value in report.items()
            if key != "digest"}
    return hashlib.sha256(
        json.dumps(body, sort_keys=True).encode()).hexdigest()
