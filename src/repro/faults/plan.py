"""Seeded fault plans: what breaks, where, and when.

A :class:`FaultPlan` is a JSON-loadable schedule of fault windows.  Each
:class:`FaultSpec` names a *kind* from the fixed taxonomy below, a
*target* (``"*"``, ``"<domain>:*"`` or ``"<domain>:<name>"``), a start
time and a duration in the clock of the layer it applies to (sim seconds
for the cloud, the per-AP cumulative replay clock for AP faults), plus
an optional ``severity`` (rate multiplier for degradation kinds) and
``probability`` (per-entity activation chance).

Determinism contract: whether a probabilistic fault hits a given entity
is decided by a stable hash of ``(plan seed, spec key, entity name)`` --
never by shared RNG state -- so any content-sharded partition of a run
(``repro.scale``) sees the identical fault assignment and the merged
result is bit-identical to the unsharded one.

Fault taxonomy (kind -> target domain):

========================  ========  =========================================
kind                      domain    models
========================  ========  =========================================
``server_crash``          isp       an uploading-server group going dark
``isp_degrade``           isp       per-ISP path degradation (severity)
``pool_pressure``         pool      storage-pool disk-full pressure
``vm_stall``              file      a wedged pre-download VM
``seed_death``            file      swarm seed departure mid-transfer
``power_loss``            ap        AP power loss (kills the attempt)
``usb_disconnect``        ap        storage device unplugged
``flash_slowdown``        ap        degraded flash write path (severity)
``link_flap``             ap        ADSL link flap (kills the attempt)
``loss_burst``            ap        lossy uplink (severity on goodput)
``worker_kill``           serve     SIGKILL of a serving-tier worker process
``correlated_kill``       serve     N slots SIGKILLed in one window (count)
``probe_blackhole``       serve     wedged worker: accepts, never responds
``admin_slowloris``       serve     worker write path crawls byte-at-a-time
``conn_reset``            serve     worker resets accepted conns mid-request
========================  ========  =========================================

The three *wedge* kinds (``probe_blackhole``, ``admin_slowloris``,
``conn_reset``) model process-state corruption rather than a transient
window: a worker alive when the window opens adopts the fault and stays
broken until the process dies -- only a restart clears it.  A
replacement spawned after the window opened starts clean.  That makes
"supervision restarts the wedged process" a design property the
availability gate can measure, instead of a race against window end.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

import numpy as np

from repro.sim.clock import DAY, HOUR
from repro.sim.randomness import derive_seed, substream

#: kind -> the entity domain its targets live in.
KIND_DOMAINS: dict[str, str] = {
    "server_crash": "isp",
    "isp_degrade": "isp",
    "pool_pressure": "pool",
    "vm_stall": "file",
    "seed_death": "file",
    "power_loss": "ap",
    "usb_disconnect": "ap",
    "flash_slowdown": "ap",
    "link_flap": "ap",
    "loss_burst": "ap",
    "worker_kill": "serve",
    "correlated_kill": "serve",
    "probe_blackhole": "serve",
    "admin_slowloris": "serve",
    "conn_reset": "serve",
}

#: AP fault kinds that make the attempt unable to proceed at all (the
#: device, its storage, or its uplink is gone, not merely slow).
AP_KILL_KINDS: tuple[str, ...] = ("power_loss", "usb_disconnect",
                                  "link_flap")

#: Kinds that apply to the cloud side (everything not aimed at the AP
#: replay clocks or at live serving-tier processes).
CLOUD_KINDS: tuple[str, ...] = tuple(
    kind for kind, domain in KIND_DOMAINS.items()
    if domain not in ("ap", "serve"))

#: Kinds consumed by the live serving tier's availability campaigns
#: (:mod:`repro.serve.avail`): the target names a worker slot, e.g.
#: ``serve:worker-0`` (or ``serve:*`` for the whole pool).
SERVE_KINDS: tuple[str, ...] = ("worker_kill", "correlated_kill",
                                "probe_blackhole", "admin_slowloris",
                                "conn_reset")

#: Kill kinds the availability harness delivers itself (SIGKILL from
#: the parent); the wedge kinds below are self-applied by the worker.
SERVE_KILL_KINDS: tuple[str, ...] = ("worker_kill", "correlated_kill")

#: Process-state faults a live worker adopts at window open and keeps
#: until the process dies (see the module docstring).
WEDGE_KINDS: tuple[str, ...] = ("probe_blackhole", "admin_slowloris",
                                "conn_reset")

#: The default seed of :func:`default_chaos_plan`.
DEFAULT_CHAOS_SEED = 20150666


def ap_entity_name(hardware) -> str:
    """The fault-target name of an AP (``"HiWiFi (1S)"`` -> ``hiwifi-(1s)``)."""
    return hardware.name.lower().replace(" ", "-")


@dataclass(frozen=True)
class FaultSpec:
    """One fault window."""

    kind: str
    target: str
    start: float
    duration: float
    severity: float = 1.0
    probability: float = 1.0
    count: int = 1          #: slots hit at once (``correlated_kill``)

    def __post_init__(self):
        if self.kind not in KIND_DOMAINS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {sorted(KIND_DOMAINS)}")
        if self.start < 0:
            raise ValueError(f"fault start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(
                f"fault duration must be > 0, got {self.duration}")
        if not 0.0 < self.severity:
            raise ValueError(
                f"fault severity must be > 0, got {self.severity}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], "
                f"got {self.probability}")
        if self.count < 1:
            raise ValueError(f"fault count must be >= 1, got {self.count}")
        if self.count != 1 and self.kind != "correlated_kill":
            raise ValueError(
                f"count is only meaningful on correlated_kill specs, "
                f"got count={self.count} on {self.kind!r}")
        domain = KIND_DOMAINS[self.kind]
        if self.target != "*":
            prefix, _sep, name = self.target.partition(":")
            if prefix != domain or not name:
                raise ValueError(
                    f"target of {self.kind!r} must be '*', "
                    f"'{domain}:*' or '{domain}:<name>', "
                    f"got {self.target!r}")

    @property
    def domain(self) -> str:
        return KIND_DOMAINS[self.kind]

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def key(self) -> str:
        """Stable identity of this spec inside a plan (gating label)."""
        return f"{self.kind}:{self.target}:{self.start:g}"

    def matches(self, entity: str) -> bool:
        """Does this spec target the named entity (domain-local name)?"""
        if self.target == "*":
            return True
        name = self.target.partition(":")[2]
        return name == "*" or name == entity

    def active_at(self, now: float) -> bool:
        return self.start <= now < self.end

    def to_dict(self) -> dict:
        record = {"kind": self.kind, "target": self.target,
                  "start": self.start, "duration": self.duration}
        if self.severity != 1.0:
            record["severity"] = self.severity
        if self.probability != 1.0:
            record["probability"] = self.probability
        if self.count != 1:
            record["count"] = self.count
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "FaultSpec":
        return cls(kind=record["kind"], target=record["target"],
                   start=float(record["start"]),
                   duration=float(record["duration"]),
                   severity=float(record.get("severity", 1.0)),
                   probability=float(record.get("probability", 1.0)),
                   count=int(record.get("count", 1)))


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule of fault windows."""

    name: str
    seed: int
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self):
        if not self.name:
            raise ValueError("a fault plan needs a name")
        object.__setattr__(self, "specs", tuple(self.specs))

    def specs_of(self, kinds: Iterable[str]) -> tuple[FaultSpec, ...]:
        wanted = set(kinds)
        return tuple(spec for spec in self.specs if spec.kind in wanted)

    # -- deterministic per-entity gating ---------------------------------------

    def applies(self, spec: FaultSpec, entity: str) -> bool:
        """Does ``spec`` hit ``entity``?  Stable-hash probability gate.

        Shard-invariant by construction: the decision depends only on
        (plan seed, spec key, entity name), so every worker process of a
        sharded run agrees without communicating.
        """
        if not spec.matches(entity):
            return False
        if spec.probability >= 1.0:
            return True
        draw = derive_seed(self.seed, f"gate:{spec.key}:{entity}") / 2 ** 64
        return draw < spec.probability

    def rng(self, label: str) -> np.random.Generator:
        """A named jitter substream derived from the plan seed."""
        return substream(self.seed, f"faults:{label}")

    # -- (de)serialisation ------------------------------------------------------

    def to_json(self) -> str:
        payload = {"name": self.name, "seed": self.seed,
                   "faults": [spec.to_dict() for spec in self.specs]}
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict) or "faults" not in payload:
            raise ValueError(
                "a fault plan is an object with 'name', 'seed' and a "
                "'faults' array")
        specs = tuple(FaultSpec.from_dict(record)
                      for record in payload["faults"])
        return cls(name=str(payload.get("name", "unnamed")),
                   seed=int(payload.get("seed", DEFAULT_CHAOS_SEED)),
                   specs=specs)

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    def to_file(self, path: str | Path) -> Path:
        from repro.recovery.atomic import atomic_write_text
        return atomic_write_text(Path(path), self.to_json())


def serve_slot_of(target: str) -> Optional[int]:
    """``"serve:worker-1"`` -> ``1``; None for broadcast targets.

    Raises ``ValueError`` for a serve-domain name that is not of the
    ``worker-N`` form (so typos fail loudly at validation time).
    """
    name = target.partition(":")[2]
    if target == "*" or name == "*":
        return None
    prefix = "worker-"
    if not name.startswith(prefix):
        raise ValueError(
            f"serve targets name worker slots ('serve:worker-N' or "
            f"'serve:*'), got {target!r}")
    try:
        return int(name[len(prefix):])
    except ValueError:
        raise ValueError(
            f"serve target slot index must be an integer, "
            f"got {target!r}") from None


def validate_serve_plan(plan: FaultPlan, workers: int) -> None:
    """Fail serve-domain specs that cannot hit a pool of ``workers``.

    Called at plan-*load* time by the availability harness and the
    serving CLI, so an out-of-range ``serve:worker-7`` target or a
    ``correlated_kill`` count exceeding the pool size surfaces as an
    error naming the spec -- not as a silently skipped injection
    mid-campaign.
    """
    for spec in plan.specs_of(SERVE_KINDS):
        try:
            slot = serve_slot_of(spec.target)
        except ValueError as error:
            raise ValueError(f"fault spec {spec.key!r}: {error}") \
                from None
        if slot is not None and not 0 <= slot < workers:
            raise ValueError(
                f"fault spec {spec.key!r} targets slot {slot}, but "
                f"the pool has {workers} worker(s) "
                f"(valid slots: 0..{workers - 1})")
        if spec.kind == "correlated_kill" and spec.count > workers:
            raise ValueError(
                f"fault spec {spec.key!r} wants to kill {spec.count} "
                f"slots at once, but the pool only has {workers} "
                f"worker(s)")


def correlated_slots(plan: FaultPlan, spec: FaultSpec,
                     workers: int) -> list[int]:
    """The slots one ``correlated_kill`` window hits, deterministically.

    A concrete ``serve:worker-N`` target anchors the group at that slot
    (``count`` consecutive ranks, wrapping); a broadcast target draws
    ``count`` distinct slots from the plan's seeded substream -- either
    way the choice depends only on (plan seed, spec key, pool size), so
    replays agree.
    """
    count = min(spec.count, workers)
    anchor = serve_slot_of(spec.target)
    if anchor is not None:
        return [(anchor + offset) % workers for offset in range(count)]
    rng = plan.rng(f"correlated:{spec.key}")
    return sorted(int(slot) for slot in
                  rng.choice(workers, size=count, replace=False))


def default_chaos_plan(seed: int = DEFAULT_CHAOS_SEED) -> FaultPlan:
    """The built-in chaos schedule: one of everything, across the week.

    Cloud windows are sim seconds into the measured week; AP windows are
    seconds of each AP's own cumulative replay clock (the benchmark
    campaign spans weeks of replay time).
    """
    return FaultPlan(name="default-chaos", seed=seed, specs=(
        # -- cloud ------------------------------------------------------------
        FaultSpec("server_crash", "isp:telecom", 1.0 * DAY, 6.0 * HOUR),
        FaultSpec("server_crash", "isp:unicom", 4.0 * DAY, 3.0 * HOUR),
        FaultSpec("isp_degrade", "isp:*", 2.0 * DAY, 8.0 * HOUR,
                  severity=0.3),
        FaultSpec("pool_pressure", "*", 2.5 * DAY, 12.0 * HOUR),
        FaultSpec("vm_stall", "file:*", 3.0 * DAY, 6.0 * HOUR,
                  probability=0.7),
        FaultSpec("seed_death", "file:*", 4.5 * DAY, 12.0 * HOUR,
                  probability=0.6),
        # -- smart APs (per-AP replay clocks) ---------------------------------
        FaultSpec("power_loss", "ap:*", 0.5 * DAY, 2.0 * HOUR),
        FaultSpec("usb_disconnect", "ap:miwifi", 1.0 * DAY, 3.0 * HOUR),
        FaultSpec("flash_slowdown", "ap:*", 1.5 * DAY, 12.0 * HOUR,
                  severity=0.3),
        FaultSpec("link_flap", "ap:hiwifi-(1s)", 2.0 * DAY, 4.0 * HOUR),
        FaultSpec("loss_burst", "ap:*", 2.5 * DAY, 6.0 * HOUR,
                  severity=0.4),
    ))
