"""Resilient execution helpers for the analytic (non-engine) layers.

The AP benchmark rig replays requests on per-AP cumulative clocks with
no simulator underneath, so AP faults are consumed through the
injector's query API: a kill-class window (power loss, USB disconnect,
link flap) blocks or truncates the attempt, degradation windows (flash
slowdown, uplink loss bursts) cap the attempt's rate, and the retry /
checkpoint-resume policies stitch attempts into one merged outcome.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.plan import AP_KILL_KINDS, ap_entity_name
from repro.faults.policies import ResiliencePolicies
from repro.transfer.session import STAGNATION_TIMEOUT, DownloadOutcome
from repro.workload.records import CatalogFile


def ap_chaos_predownload(ap, record: CatalogFile,
                         rng: np.random.Generator, *,
                         start: float,
                         access_bandwidth: Optional[float],
                         uplink_bandwidth: Optional[float],
                         injector: FaultInjector,
                         policies: Optional[ResiliencePolicies],
                         task_label: str
                         ) -> tuple[DownloadOutcome, float]:
    """One AP pre-download campaign under fault injection.

    ``start`` is the AP's cumulative replay clock at task start (the
    clock AP fault windows are scheduled against).  Returns the merged
    (possibly multi-attempt) outcome plus the iowait ratio of the last
    attempt that ran, exactly like ``SmartAP.pre_download``.
    """
    entity = ap_entity_name(ap.hardware)
    retry = policies.retry if policies is not None else None
    jitter = injector.rng(f"ap:{task_label}") if retry is not None \
        else None
    resume = policies is not None and policies.checkpoint_resume
    committed = 0.0
    clock = start
    total_traffic = 0.0
    peak = 0.0
    attempt = 0
    impacted = False
    iowait = 0.0
    while True:
        attempt += 1
        kill = injector.first_active(AP_KILL_KINDS, entity, clock)
        if kill is not None:
            impacted = True
            injector.impact(kill)
            if retry is not None and retry.allows(attempt + 1):
                injector.retry("ap")
                clock = injector.clear_time(AP_KILL_KINDS, entity,
                                            clock) \
                    + retry.backoff(attempt, jitter)
                continue
            # The device (or its link/storage) is gone and nothing
            # restarts the task: it dies after the client gives up.
            clock += STAGNATION_TIMEOUT
            injector.abort("ap")
            return DownloadOutcome(
                success=False, duration=clock - start,
                bytes_obtained=committed, file_size=record.size,
                average_rate=0.0, peak_rate=peak, traffic=total_traffic,
                failure_cause=f"fault:{kill.kind}"), iowait
        remaining = record.size - committed if resume else record.size
        flash = injector.factor("flash_slowdown", entity, clock)
        loss = injector.factor("loss_burst", entity, clock)
        extra_caps = (ap.write_path.max_throughput * flash,) \
            if flash < 1.0 else ()
        uplink = uplink_bandwidth * loss \
            if uplink_bandwidth is not None and loss < 1.0 \
            else uplink_bandwidth
        outcome, iowait = ap.pre_download(
            record, rng, access_bandwidth=access_bandwidth,
            uplink_bandwidth=uplink, size_override=remaining,
            extra_rate_caps=extra_caps)
        brk = injector.next_break(AP_KILL_KINDS, entity, clock,
                                  clock + outcome.duration)
        if brk is None:
            attempt_out = outcome
            clock += outcome.duration
            fault = None
        else:
            fault = brk
            impacted = True
            injector.impact(brk)
            elapsed = brk.start - clock
            frac = min(elapsed / outcome.duration, 1.0) \
                if outcome.duration > 0 else 1.0
            moved = min(outcome.average_rate * elapsed, remaining)
            attempt_out = DownloadOutcome(
                success=False, duration=elapsed, bytes_obtained=moved,
                file_size=remaining, average_rate=outcome.average_rate,
                peak_rate=outcome.peak_rate,
                traffic=outcome.traffic * frac,
                failure_cause=f"fault:{brk.kind}")
            clock = brk.start
        total_traffic += attempt_out.traffic
        peak = max(peak, attempt_out.peak_rate)
        if resume:
            committed = min(committed + attempt_out.bytes_obtained,
                            record.size)
        if attempt_out.success:
            duration = clock - start
            if impacted:
                injector.recover("ap", duration)
            return DownloadOutcome(
                success=True, duration=duration,
                bytes_obtained=record.size, file_size=record.size,
                average_rate=record.size / duration
                if duration > 0 else attempt_out.average_rate,
                peak_rate=peak, traffic=total_traffic), iowait
        if retry is not None and retry.allows(attempt + 1):
            injector.retry("ap")
            wait = retry.backoff(attempt, jitter)
            if fault is not None:
                wait += max(injector.clear_time((fault.kind,), entity,
                                                clock) - clock, 0.0)
            clock += wait
            continue
        if impacted:
            injector.abort("ap")
        return DownloadOutcome(
            success=False, duration=clock - start,
            bytes_obtained=committed if resume
            else attempt_out.bytes_obtained,
            file_size=record.size,
            average_rate=attempt_out.average_rate, peak_rate=peak,
            traffic=total_traffic,
            failure_cause=attempt_out.failure_cause), iowait
