"""repro.faults -- deterministic fault injection + resilience policies.

Public surface:

* :class:`FaultSpec` / :class:`FaultPlan` -- seeded, JSON-loadable
  schedules of fault windows (:func:`default_chaos_plan` is the
  built-in one).
* :class:`FaultInjector` -- delivers a plan into a run, either through
  the engine's interrupt machinery or as a pure query API for the
  analytic replay paths.
* :class:`RetryPolicy` / :class:`CircuitBreaker` /
  :class:`TransferCheckpoint` / :class:`ResiliencePolicies` -- the
  recovery side.

The chaos driver lives in :mod:`repro.faults.chaos` (also ``python -m
repro.faults``) and is intentionally NOT imported here: it pulls in
``repro.scale`` -> ``repro.cloud``, and the cloud package itself
imports :mod:`repro.faults.injector`, so eagerly importing the driver
would create a cycle.
"""

from repro.faults.injector import INTERRUPT_KINDS, FaultInjector
from repro.faults.plan import (
    AP_KILL_KINDS,
    CLOUD_KINDS,
    DEFAULT_CHAOS_SEED,
    KIND_DOMAINS,
    SERVE_KILL_KINDS,
    SERVE_KINDS,
    WEDGE_KINDS,
    FaultPlan,
    FaultSpec,
    ap_entity_name,
    correlated_slots,
    default_chaos_plan,
    serve_slot_of,
    validate_serve_plan,
)
from repro.faults.policies import (
    DEFAULT_POLICIES,
    CircuitBreaker,
    ResiliencePolicies,
    RetryPolicy,
    TransferCheckpoint,
)
from repro.faults.resilience import ap_chaos_predownload

__all__ = [
    "AP_KILL_KINDS",
    "CLOUD_KINDS",
    "DEFAULT_CHAOS_SEED",
    "INTERRUPT_KINDS",
    "DEFAULT_POLICIES",
    "KIND_DOMAINS",
    "SERVE_KILL_KINDS",
    "SERVE_KINDS",
    "WEDGE_KINDS",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ResiliencePolicies",
    "RetryPolicy",
    "TransferCheckpoint",
    "ap_chaos_predownload",
    "ap_entity_name",
    "correlated_slots",
    "default_chaos_plan",
    "serve_slot_of",
    "validate_serve_plan",
]
