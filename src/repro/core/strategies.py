"""Redirection strategies: ODR and the baselines it is compared against.

A :class:`Strategy` maps (user context, file, protocol) to a
:class:`Decision`.  Besides ODR itself, the library ships the three
conventional approaches the paper discusses:

* **cloud-only** -- every request goes through Xuanfeng (section 4's
  subject);
* **smart-AP-only** -- every request is pre-downloaded by the home AP
  (section 5's subject);
* **always-hybrid** -- the commercial HiWiFi/MiWiFi/Newifi hybrid mode:
  cloud pre-downloads, then the AP fetches from the cloud, always taking
  the longest data flow (section 7, "Hybrid approach");

plus **AMS** (Automatic Mode Selection, Zhou et al., IEEE TMM 2013): a
popularity-threshold rule choosing between the cloud-based and
peer-assisted service models, the closest prior algorithm to ODR.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.database import ContentDatabase
from repro.core.auxiliary import UserContext
from repro.core.decision import Action, DataSource, Decision
from repro.core.odr import OdrMiddleware
from repro.transfer.protocols import Protocol
from repro.workload.popularity import PopularityClass


class Strategy:
    """Interface: pure decision logic, no byte movement."""

    name = "strategy"

    def decide(self, context: UserContext, file_id: str,
               protocol: Protocol) -> Decision:
        raise NotImplementedError

    def decide_after_predownload(self, context: UserContext, file_id: str,
                                 success: bool) -> Decision:
        """Default re-ask behaviour: cloud fetch on success."""
        if not success:
            return Decision(action=Action.NOTIFY_FAILURE,
                            data_source=DataSource.CLOUD,
                            rationale="cloud pre-download failed")
        return Decision(action=Action.CLOUD, data_source=DataSource.CLOUD,
                        rationale="pre-download complete; fetch from cloud")


class CloudOnlyStrategy(Strategy):
    """Everything through the cloud (the plain Xuanfeng experience)."""

    name = "cloud-only"

    def __init__(self, database: ContentDatabase):
        self.database = database

    def decide(self, context: UserContext, file_id: str,
               protocol: Protocol) -> Decision:
        if self.database.is_cached(file_id):
            return Decision(action=Action.CLOUD,
                            data_source=DataSource.CLOUD,
                            rationale="cloud-based service")
        return Decision(action=Action.CLOUD_PREDOWNLOAD,
                        data_source=DataSource.CLOUD,
                        rationale="cloud-based service (cache miss)")


class SmartApOnlyStrategy(Strategy):
    """Everything on the home AP (the plain smart-AP experience)."""

    name = "smart-ap-only"

    def decide(self, context: UserContext, file_id: str,
               protocol: Protocol) -> Decision:
        if context.has_smart_ap:
            return Decision(action=Action.SMART_AP,
                            data_source=DataSource.ORIGINAL,
                            rationale="smart-AP service")
        return Decision(action=Action.USER_DEVICE,
                        data_source=DataSource.ORIGINAL,
                        rationale="no AP present; plain direct download")


class AlwaysHybridStrategy(Strategy):
    """The commercial hybrid: always Internet -> cloud -> AP -> user."""

    name = "always-hybrid"

    def __init__(self, database: ContentDatabase):
        self.database = database

    def decide(self, context: UserContext, file_id: str,
               protocol: Protocol) -> Decision:
        if not self.database.is_cached(file_id):
            return Decision(action=Action.CLOUD_PREDOWNLOAD,
                            data_source=DataSource.CLOUD,
                            rationale="hybrid mode: cloud downloads first")
        return self.decide_after_predownload(context, file_id, True)

    def decide_after_predownload(self, context: UserContext, file_id: str,
                                 success: bool) -> Decision:
        if not success:
            return Decision(action=Action.NOTIFY_FAILURE,
                            data_source=DataSource.CLOUD,
                            rationale="cloud pre-download failed")
        if context.has_smart_ap:
            return Decision(action=Action.CLOUD_THEN_SMART_AP,
                            data_source=DataSource.CLOUD,
                            rationale="hybrid mode: AP fetches from the "
                                      "cloud, always the longest flow")
        return Decision(action=Action.CLOUD, data_source=DataSource.CLOUD,
                        rationale="hybrid mode without an AP")


class AmsStrategy(Strategy):
    """Automatic Mode Selection (Zhou et al.): popularity threshold only.

    Popular content -> peer-assisted (direct swarm); unpopular -> cloud.
    Unlike ODR it ignores the user's ISP, bandwidth, and storage, so it
    cannot dodge Bottlenecks 1 and 4.
    """

    name = "ams"

    def __init__(self, database: ContentDatabase,
                 popularity_threshold: int = 85):
        self.database = database
        self.popularity_threshold = popularity_threshold

    def decide(self, context: UserContext, file_id: str,
               protocol: Protocol) -> Decision:
        popularity = self.database.popularity_of(file_id)
        if protocol.is_p2p and popularity >= self.popularity_threshold:
            action = Action.SMART_AP if context.has_smart_ap \
                else Action.USER_DEVICE
            return Decision(action=action, data_source=DataSource.ORIGINAL,
                            rationale="AMS: popular -> peer-assisted")
        if self.database.is_cached(file_id):
            return Decision(action=Action.CLOUD,
                            data_source=DataSource.CLOUD,
                            rationale="AMS: unpopular -> cloud mode")
        return Decision(action=Action.CLOUD_PREDOWNLOAD,
                        data_source=DataSource.CLOUD,
                        rationale="AMS: unpopular -> cloud mode")


class OdrStrategy(Strategy):
    """ODR wrapped in the strategy interface."""

    name = "odr"

    def __init__(self, middleware: OdrMiddleware):
        self.middleware = middleware

    def decide(self, context: UserContext, file_id: str,
               protocol: Protocol) -> Decision:
        return self.middleware.decide(context, file_id, protocol)

    def decide_after_predownload(self, context: UserContext, file_id: str,
                                 success: bool) -> Decision:
        return self.middleware.decide_after_predownload(
            context, file_id, success)
