"""Redirection strategies: ODR and the baselines it is compared against.

A :class:`Strategy` maps (user context, file, protocol) to a
:class:`Decision`.  Since the ``repro.backends`` registry landed, every
concrete strategy is a :class:`ComposedStrategy`: a *backend set* (who
could execute the download -- cloud, smart AP, nearby D2D peers, a
neighbouring AP's cooperative cache) paired with a *policy* (which of
them should).  The classes below keep their historical names,
constructor signatures, and -- bit for bit -- their decisions
(``tests/data/golden_digests.json`` pins both the decision grid and the
full testbed replay), but their logic now lives in
:mod:`repro.backends.policies` and is resolved by name through
:func:`repro.backends.registry.resolve_strategy`:

* **cloud-only** -- every request goes through Xuanfeng (section 4's
  subject);
* **smart-AP-only** -- every request is pre-downloaded by the home AP
  (section 5's subject);
* **always-hybrid** -- the commercial HiWiFi/MiWiFi/Newifi hybrid mode:
  cloud pre-downloads, then the AP fetches from the cloud, always taking
  the longest data flow (section 7, "Hybrid approach");
* **AMS** (Automatic Mode Selection, Zhou et al., IEEE TMM 2013): a
  popularity-threshold rule choosing between the cloud-based and
  peer-assisted service models, the closest prior algorithm to ODR;
* **ODR** itself (Figure 15), plus registry-only compositions such as
  **delay-aware** (DAWN-style deadline/cost trading over all four
  backends).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.cloud.database import ContentDatabase
from repro.core.auxiliary import UserContext
from repro.core.decision import Action, DataSource, Decision
from repro.core.odr import OdrMiddleware
from repro.transfer.protocols import Protocol
from repro.workload.popularity import PopularityClass, classify

if TYPE_CHECKING:   # pragma: no cover - import cycle guard
    from repro.backends.base import Backend, Policy
    from repro.backends.faultgate import FaultGate
    from repro.workload.catalog import FileCatalog


class Strategy:
    """Interface: pure decision logic, no byte movement."""

    name = "strategy"

    def decide(self, context: UserContext, file_id: str,
               protocol: Protocol) -> Decision:
        raise NotImplementedError

    def decide_after_predownload(self, context: UserContext, file_id: str,
                                 success: bool) -> Decision:
        """Default re-ask behaviour: cloud fetch on success."""
        if not success:
            return Decision(action=Action.NOTIFY_FAILURE,
                            data_source=DataSource.CLOUD,
                            rationale="cloud pre-download failed")
        return Decision(action=Action.CLOUD, data_source=DataSource.CLOUD,
                        rationale="pre-download complete; fetch from cloud")


@dataclass(frozen=True)
class FileSnapshot:
    """What a routing policy may know about one requested file.

    A pure value object assembled by :class:`ComposedStrategy` from the
    content database (popularity, cache residency) and, when available,
    the workload catalog (size, true weekly demand).  Policies and
    backends consume this instead of poking the database themselves, so
    the same policy runs identically under the web service, the testbed
    replay, and the sharded comparison engine.
    """

    file_id: str
    protocol: Protocol
    popularity: int = 0
    cached: bool = False
    size: float = 0.0
    weekly_demand: float = 0.0

    @property
    def popularity_class(self) -> PopularityClass:
        return classify(self.popularity)

    @property
    def demand(self) -> float:
        """Best demand estimate: catalog truth, else observed count."""
        return self.weekly_demand if self.weekly_demand > 0 \
            else float(self.popularity)


class ComposedStrategy(Strategy):
    """A strategy expressed as a (backend set, policy) pair.

    The backend tuple is the *preference order* handed to the policy.
    With a :class:`~repro.backends.faultgate.FaultGate` attached, any
    backend whose fault domain has an active window at :attr:`now` is
    moved to the back of that order and named in the ``penalised`` set,
    so delay/cost-scoring policies route around faults that are
    currently firing (legacy policies, which pick backends by name,
    ignore the hint -- exactly their pre-registry behaviour).

    :attr:`now` is the routing clock; replay drivers set it to each
    request's timestamp before calling :meth:`decide`.
    """

    def __init__(self, name: str, backends: Sequence["Backend"],
                 policy: "Policy", *,
                 database: Optional[ContentDatabase] = None,
                 catalog: Optional["FileCatalog"] = None,
                 fault_gate: Optional["FaultGate"] = None):
        self.name = name
        self.backends = tuple(backends)
        self.policy = policy
        self.database = database
        self.catalog = catalog
        self.fault_gate = fault_gate
        self.now = 0.0

    def snapshot(self, file_id: str, protocol: Protocol) -> FileSnapshot:
        """Assemble the file's routing snapshot from db + catalog."""
        popularity = 0
        cached = False
        size = 0.0
        if self.database is not None:
            popularity = self.database.popularity_of(file_id)
            cached = self.database.is_cached(file_id)
            row = self.database.get(file_id)
            if row is not None:
                size = row.size
        weekly_demand = 0.0
        if self.catalog is not None:
            record = self.catalog.get(file_id)
            if record is not None:
                size = record.size
                weekly_demand = float(record.weekly_demand)
        return FileSnapshot(file_id=file_id, protocol=protocol,
                            popularity=popularity, cached=cached,
                            size=size, weekly_demand=weekly_demand)

    def _routing(self) -> tuple[tuple["Backend", ...], frozenset[str]]:
        """(preference-ordered backends, penalised backend names)."""
        if self.fault_gate is None:
            return self.backends, frozenset()
        penalised = frozenset(
            backend.name for backend in self.backends
            if self.fault_gate.penalised(backend, self.now))
        if not penalised:
            return self.backends, penalised
        healthy = tuple(backend for backend in self.backends
                        if backend.name not in penalised)
        unhealthy = tuple(backend for backend in self.backends
                          if backend.name in penalised)
        return healthy + unhealthy, penalised

    def decide(self, context: UserContext, file_id: str,
               protocol: Protocol) -> Decision:
        backends, penalised = self._routing()
        return self.policy.decide(context,
                                  self.snapshot(file_id, protocol),
                                  backends, penalised=penalised)

    def decide_after_predownload(self, context: UserContext, file_id: str,
                                 success: bool) -> Decision:
        # Served from the cloud regardless of the original protocol.
        backends, penalised = self._routing()
        return self.policy.decide_after_predownload(
            context, self.snapshot(file_id, Protocol.HTTP), backends,
            success, penalised=penalised)


def _compose(name: str, **build):
    """Resolve a legacy strategy name to its (backends, policy) pair.

    Imported lazily: ``repro.backends`` imports this module for the
    :class:`Strategy`/:class:`ComposedStrategy` bases, so the registry
    must not be touched while ``repro.core`` is still initialising.
    """
    from repro.backends.registry import compose
    return compose(name, **build)


class CloudOnlyStrategy(ComposedStrategy):
    """Everything through the cloud (the plain Xuanfeng experience)."""

    name = "cloud-only"

    def __init__(self, database: ContentDatabase):
        backends, policy = _compose("cloud-only", database=database)
        super().__init__("cloud-only", backends, policy,
                         database=database)


class SmartApOnlyStrategy(ComposedStrategy):
    """Everything on the home AP (the plain smart-AP experience)."""

    name = "smart-ap-only"

    def __init__(self):
        backends, policy = _compose("smart-ap-only")
        super().__init__("smart-ap-only", backends, policy)


class AlwaysHybridStrategy(ComposedStrategy):
    """The commercial hybrid: always Internet -> cloud -> AP -> user."""

    name = "always-hybrid"

    def __init__(self, database: ContentDatabase):
        backends, policy = _compose("always-hybrid", database=database)
        super().__init__("always-hybrid", backends, policy,
                         database=database)


class AmsStrategy(ComposedStrategy):
    """Automatic Mode Selection (Zhou et al.): popularity threshold only.

    Popular content -> peer-assisted (direct swarm); unpopular -> cloud.
    Unlike ODR it ignores the user's ISP, bandwidth, and storage, so it
    cannot dodge Bottlenecks 1 and 4.
    """

    name = "ams"

    def __init__(self, database: ContentDatabase,
                 popularity_threshold: int = 85):
        backends, policy = _compose(
            "ams", database=database,
            popularity_threshold=popularity_threshold)
        super().__init__("ams", backends, policy, database=database)
        self.popularity_threshold = popularity_threshold


class OdrStrategy(ComposedStrategy):
    """ODR wrapped in the strategy interface."""

    name = "odr"

    def __init__(self, middleware: OdrMiddleware):
        backends, policy = _compose("odr", middleware=middleware)
        super().__init__("odr", backends, policy,
                         database=middleware.database)
        self.middleware = middleware
