"""The ODR decision engine: Figure 15 as executable logic.

The middleware is deliberately thin: it queries the content database for
popularity and cache state, runs the bottleneck detectors over the
user's auxiliary info, and emits a :class:`Decision`.  It requires no
modification to the cloud or to any AP, and it never carries file bytes
-- properties the paper calls out as what makes ODR deployable on a $20
VM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cloud.database import ContentDatabase
from repro.core.auxiliary import UserContext
from repro.core.bottlenecks import BottleneckDetector, BottleneckThresholds
from repro.core.decision import Action, DataSource, Decision
from repro.netsim.ip import IpResolver
from repro.transfer.protocols import Protocol
from repro.workload.popularity import PopularityClass


@dataclass(frozen=True)
class OdrConfig:
    """Tunables of the decision procedure."""

    thresholds: BottleneckThresholds = field(
        default_factory=BottleneckThresholds)


class OdrMiddleware:
    """The redirector itself."""

    def __init__(self, database: ContentDatabase,
                 resolver: Optional[IpResolver] = None,
                 config: OdrConfig = OdrConfig()):
        self.database = database
        self.config = config
        self.detector = BottleneckDetector(resolver=resolver,
                                           thresholds=config.thresholds)

    # -- the Figure 15 state machine ---------------------------------------------

    def decide(self, context: UserContext, file_id: str,
               protocol: Protocol) -> Decision:
        """One pass through the decision diagram.

        For an uncached, not-highly-popular file the answer is
        CLOUD_PREDOWNLOAD: the caller waits for the cloud and then calls
        :meth:`decide_after_predownload` -- exactly the "ask ODR again
        for further suggestions" flow of section 6.1, Case 2.
        """
        klass = self.database.popularity_class_of(file_id)
        if klass is PopularityClass.HIGHLY_POPULAR:
            return self._handle_highly_popular(context, protocol)
        return self._handle_less_popular(context, file_id)

    def decide_after_predownload(self, context: UserContext, file_id: str,
                                 success: bool) -> Decision:
        """The re-ask after a CLOUD_PREDOWNLOAD completes."""
        if not success:
            return Decision(
                action=Action.NOTIFY_FAILURE, data_source=DataSource.CLOUD,
                rationale="the cloud could not obtain the file from its "
                          "source")
        return self._cached_route(context)

    # -- branches -------------------------------------------------------------------

    def _handle_highly_popular(self, context: UserContext,
                               protocol: Protocol) -> Decision:
        if not protocol.is_p2p:
            # A popular HTTP/FTP origin would melt under direct load;
            # the cloud (which certainly has the file cached) serves it.
            return Decision(
                action=Action.CLOUD, data_source=DataSource.CLOUD,
                bottlenecks_addressed=(2,),
                rationale="highly popular HTTP/FTP file: fall back on the "
                          "cloud to avoid overloading the origin server")
        # Highly popular P2P: the swarm is thriving -- download directly
        # from the original source and spare the cloud's upload bandwidth.
        if self.detector.bottleneck4_risk(context):
            return Decision(
                action=Action.USER_DEVICE, data_source=DataSource.ORIGINAL,
                bottlenecks_addressed=(2, 4),
                rationale="thriving swarm, and the smart AP's storage "
                          "write path would throttle the download: use "
                          "the user device directly")
        if context.has_smart_ap:
            return Decision(
                action=Action.SMART_AP, data_source=DataSource.ORIGINAL,
                bottlenecks_addressed=(2,),
                rationale="thriving swarm: let the smart AP pre-download "
                          "from it at the user's convenience")
        return Decision(
            action=Action.USER_DEVICE, data_source=DataSource.ORIGINAL,
            bottlenecks_addressed=(2,),
            rationale="thriving swarm and no smart AP: download directly")

    def _handle_less_popular(self, context: UserContext,
                             file_id: str) -> Decision:
        if self.database.is_cached(file_id):
            return self._cached_route(context)
        # Not cached: only the cloud (with its vantage and collaborative
        # cache) has a fighting chance on an unpopular source.
        return Decision(
            action=Action.CLOUD_PREDOWNLOAD, data_source=DataSource.CLOUD,
            bottlenecks_addressed=(3,),
            rationale="uncached, not highly popular: pre-download via the "
                      "cloud, which fails far less often than an AP on "
                      "unpopular files")

    def _cached_route(self, context: UserContext) -> Decision:
        if self.detector.bottleneck1_risk(context) and context.has_smart_ap:
            return Decision(
                action=Action.CLOUD_THEN_SMART_AP,
                data_source=DataSource.CLOUD,
                bottlenecks_addressed=(1, 3),
                rationale="cloud fetch would be impeded (ISP barrier or "
                          "slow line): stage through the smart AP and "
                          "fetch over the LAN")
        return Decision(
            action=Action.CLOUD, data_source=DataSource.CLOUD,
            bottlenecks_addressed=(3,),
            rationale="cached in the cloud with a healthy path: fetch "
                      "directly from the cloud")
