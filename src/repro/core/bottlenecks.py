"""Bottleneck detectors: the predicates of Figure 15's branch nodes.

Each detector answers one question from the decision diagram using only
information ODR actually has: the user-supplied auxiliary data, the
IP-to-ISP resolver (the APNIC role), and the cloud's content database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.auxiliary import UserContext
from repro.netsim.ip import IpResolver
from repro.sim.clock import kbps, mbps


@dataclass(frozen=True)
class BottleneckThresholds:
    """The decision thresholds the paper hard-codes (section 6.1)."""

    #: A fetch below 1 Mbps cannot sustain HD playback -> Bottleneck 1.
    impeded_rate: float = kbps(125.0)
    #: Below this access bandwidth the slowest storage path (Newifi's
    #: NTFS USB flash at 0.93 MBps, Table 2) can keep up -> the AP is
    #: always safe to use.
    ap_safe_rate: float = 0.93e6
    #: At high access bandwidth (the 20 Mbps testbed line) a weak write
    #: path becomes the binding constraint -> Bottleneck 4.
    high_access_rate: float = mbps(20.0)


class BottleneckDetector:
    """Stateless predicates over a user context."""

    def __init__(self, resolver: Optional[IpResolver] = None,
                 thresholds: BottleneckThresholds = BottleneckThresholds()):
        self.resolver = resolver or IpResolver()
        self.thresholds = thresholds

    # -- Bottleneck 1: impeded cloud fetch ------------------------------------

    def outside_major_isps(self, context: UserContext) -> bool:
        """Is the user beyond the four ISPs with uploading servers?"""
        return not self.resolver.is_major(context.ip_address)

    def low_access_bandwidth(self, context: UserContext) -> bool:
        bandwidth = context.access_bandwidth
        return bandwidth is not None and \
            bandwidth < self.thresholds.impeded_rate

    def bottleneck1_risk(self, context: UserContext) -> bool:
        """Would a cloud fetch be impeded for this user (section 6.1,
        Case 1)?"""
        return self.low_access_bandwidth(context) or \
            self.outside_major_isps(context)

    # -- Bottleneck 4: storage write path ---------------------------------------

    def bottleneck4_risk(self, context: UserContext) -> bool:
        """Would the user's AP throttle the download below what her line
        could carry?

        The AP is safe when the line itself is slower than the worst
        write path; it is a liability when the write path's ceiling is
        below the achievable network rate (the paper's USB-flash/NTFS
        example at 20 Mbps access).
        """
        if context.smart_ap is None:
            return False
        bandwidth = context.access_bandwidth
        if bandwidth is not None and \
                bandwidth <= self.thresholds.ap_safe_rate:
            return False
        ceiling = context.smart_ap.write_path().max_throughput
        achievable = bandwidth if bandwidth is not None \
            else self.thresholds.high_access_rate
        return ceiling < min(achievable, self.thresholds.high_access_rate)
