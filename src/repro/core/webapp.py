"""The ODR web service, as an actual HTTP server.

The paper deploys ODR as "a public web service ... on a low-end virtual
machine" (section 6.1): a front page where the user pastes a link and
her auxiliary info, and a redirection suggestion back.  This module is
that service on the Python standard library -- no frameworks -- so the
proof-of-concept middleware is genuinely runnable::

    python -m repro serve --port 8034
    curl 'localhost:8034/decide?link=magnet://origin/xyz&popularity=200\
&bandwidth_mbps=20&ap=newifi&device=usb-flash&filesystem=ntfs'

Endpoints:

* ``GET /``          -- the HTML front page with the request form;
* ``GET /decide``    -- the decision as JSON (query parameters below);
* ``GET /healthz``   -- liveness probe.

Query parameters of ``/decide``: ``link`` (required), ``popularity``
(observed weekly requests, default 0), ``cached`` (0/1),
``bandwidth_mbps``, ``isp``, ``ap``, ``device``, ``filesystem``, and
``policy`` (a registry strategy name, e.g. ``delay-aware``; default the
server's ``--policy``, normally ``odr``).
A cookie (``odr_user``) keys the server-side auxiliary-info store, as
the real ODR's cookie does.
"""

from __future__ import annotations

import json
import math
import signal
import threading
import time
import uuid
from http.cookies import SimpleCookie
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import parse_qs, urlparse

import repro.ap.models as ap_models
import repro.storage.device as storage_devices
from repro.cloud.database import ContentDatabase
from repro.core.auxiliary import SmartApInfo, UserContext
from repro.core.service import OdrService
from repro.faults.policies import ResiliencePolicies
from repro.netsim.ip import IpAllocator
from repro.netsim.isp import ISP
from repro.obs.registry import AnyRegistry, NOOP
from repro.sim.clock import mbps
from repro.storage.filesystem import Filesystem

#: (status, content-type, body, set-cookie, extra headers)
Response = tuple[int, str, str, Optional[str], dict[str, str]]

_AP_BY_NAME = {"hiwifi": ap_models.HIWIFI_1S, "miwifi": ap_models.MIWIFI,
               "newifi": ap_models.NEWIFI}
_DEVICE_BY_NAME = {"sd": storage_devices.SD_CARD_8GB,
                   "usb-flash": storage_devices.USB_FLASH_8GB,
                   "usb-hdd": storage_devices.USB_HDD_5400,
                   "sata": storage_devices.SATA_HDD_1TB}

_FRONT_PAGE = """<!doctype html>
<html><head><title>ODR — Offline Downloading Redirector</title></head>
<body style="font-family: sans-serif; max-width: 42em; margin: 2em auto">
<h1>ODR — Offline Downloading Redirector</h1>
<p>Paste the link you want to download and your connection details;
ODR suggests where the download should run (cloud, smart AP, your own
device, or a combination) to dodge the four offline-downloading
bottlenecks.</p>
<form action="/decide" method="get">
  <p><label>Link:<br><input name="link" size="60"
      placeholder="magnet://... or http://..."></label></p>
  <p><label>Access bandwidth (Mbps):
      <input name="bandwidth_mbps" size="6"></label>
     <label>ISP: <select name="isp">
       <option>unicom</option><option>telecom</option>
       <option>mobile</option><option>cernet</option>
       <option>other</option></select></label></p>
  <p><label>Smart AP: <select name="ap"><option value="">none</option>
       <option>hiwifi</option><option>miwifi</option>
       <option>newifi</option></select></label>
     <label>Storage: <select name="device"><option value="">default
       </option><option>sd</option><option>usb-flash</option>
       <option>usb-hdd</option><option>sata</option></select></label>
     <label>Filesystem: <select name="filesystem">
       <option value="">default</option><option>fat</option>
       <option>ntfs</option><option>ext4</option></select></label></p>
  <p><button>Ask ODR</button> (append &format=json for the API)</p>
</form></body></html>
"""


class OdrWebApp:
    """The HTTP application: routing plus the wrapped :class:`OdrService`.

    Separated from the handler class so tests can drive it without
    sockets, and so one app instance can serve many requests.
    """

    def __init__(self, database: Optional[ContentDatabase] = None,
                 policies: Optional[ResiliencePolicies] = None,
                 metrics: AnyRegistry = NOOP,
                 clock: Callable[[], float] = time.monotonic,
                 default_policy: str = "odr"):
        self.database = database or ContentDatabase()
        self.default_policy = default_policy
        self.service = OdrService(self.database, policy=default_policy)
        # One service per routing policy, all sharing the database;
        # built lazily as requests name them (?policy=...).
        self._services = {default_policy: self.service}
        self._allocator = IpAllocator()
        self._lock = threading.Lock()
        self._clock = clock
        # A circuit breaker over backend outcomes: while open, /decide
        # sheds load with 503 + Retry-After instead of hammering a
        # failing decision pipeline.
        self._breaker = policies.breaker("odr-web", metrics) \
            if policies is not None and policies.failover else None

    def _service_for(self, policy: str) -> OdrService:
        """The (lazily built) service routing with ``policy``.

        Raises ``ValueError`` for names the registry does not know --
        surfaced to the client as a 400 naming the valid set.
        """
        service = self._services.get(policy)
        if service is None:
            from repro.backends.registry import strategy_names
            if policy not in strategy_names():
                raise ValueError(
                    f"unknown policy {policy!r}; "
                    f"known: {', '.join(strategy_names())}")
            with self._lock:
                service = self._services.get(policy)
                if service is None:
                    service = OdrService(self.database, policy=policy)
                    self._services[policy] = service
        return service

    @property
    def requests_served(self) -> int:
        """Requests served across every policy's service."""
        return sum(service.requests_served
                   for service in self._services.values())

    # -- request handling --------------------------------------------------------

    def handle(self, path: str, cookie_header: str = "",
               deadline: Optional[float] = None) -> Response:
        """Process one GET; returns (status, content_type, body,
        set_cookie, extra_headers).

        ``deadline`` is the absolute ``time.monotonic()`` instant the
        serving tier parsed from ``X-Deadline-Ms``; the remaining
        budget rides into the routing policy layer via
        ``UserContext.deadline_seconds``.
        """
        parsed = urlparse(path)
        if parsed.path in ("/", "/index.html"):
            return 200, "text/html", _FRONT_PAGE, None, {}
        if parsed.path == "/healthz":
            return 200, "application/json", json.dumps(
                {"status": "ok",
                 "requests_served": self.requests_served}), \
                None, {}
        if parsed.path == "/decide":
            return self._decide(parse_qs(parsed.query), cookie_header,
                                deadline)
        return 404, "application/json", json.dumps(
            {"error": f"no such endpoint {parsed.path!r}"}), None, {}

    def handle_batch(self, requests: list[tuple]
                     ) -> list[Response]:
        """Process many GETs coalesced into one evaluation pass.

        The serving tier (``repro.serve``) collects every ``/decide``
        request that arrives within one event-loop tick and evaluates
        them together: one breaker admission check covers the batch, the
        shared lock is taken once for all IP allocations and popularity
        registrations, and only then do the (lock-free) decisions run.
        Semantics per request are identical to :meth:`handle`.

        Entries are ``(path, cookie_header)`` or ``(path,
        cookie_header, deadline)`` with the absolute monotonic deadline
        as :meth:`handle` takes it.
        """
        responses: list[Optional[Response]] = [None] * len(requests)
        decide_items: list[tuple[int, dict[str, list[str]], str,
                                 Optional[float]]] = []
        for index, entry in enumerate(requests):
            path, cookie_header = entry[0], entry[1]
            deadline = entry[2] if len(entry) > 2 else None
            parsed = urlparse(path)
            if parsed.path == "/decide":
                decide_items.append(
                    (index, parse_qs(parsed.query), cookie_header,
                     deadline))
            else:
                responses[index] = self.handle(path, cookie_header)
        if decide_items:
            batch = [(query, cookie, deadline)
                     for _index, query, cookie, deadline
                     in decide_items]
            for (index, _q, _c, _d), response in zip(
                    decide_items, self._decide_batch(batch)):
                responses[index] = response
        return responses   # type: ignore[return-value]

    def _decide(self, query: dict[str, list[str]],
                cookie_header: str,
                deadline: Optional[float] = None) -> Response:
        return self._decide_batch([(query, cookie_header,
                                    deadline)])[0]

    def _shed_response(self, now: float) -> Optional[Response]:
        """The 503 while the breaker is open, or None when admitted."""
        if self._breaker is None or self._breaker.allow(now):
            return None
        retry_after = max(
            1, math.ceil(self._breaker.retry_after(now)))
        return 503, "application/json", json.dumps(
            {"error": "decision backend unavailable",
             "detail": "circuit breaker open; retry later",
             "retry_after_seconds": retry_after}), \
            None, {"Retry-After": str(retry_after)}

    def _decide_batch(self, items: list[tuple[dict[str, list[str]],
                                              str, Optional[float]]]
                      ) -> list[Response]:
        """Evaluate a batch of ``/decide`` queries in one pass.

        Phases: (1) per-request parse/validation, lock-free, producing
        400s early; (2) one breaker admission check and one clock read
        for the whole batch; (3) a single ``self._lock`` scope doing
        every IP allocation and popularity registration; (4) lock-free
        decision evaluation, recording per-request outcomes into the
        breaker.
        """
        from repro.core.service import parse_link
        responses: list[Optional[Response]] = [None] * len(items)
        now = self._clock()
        shed = self._shed_response(now) if items else None
        #: (index, first, link, file_id, popularity, cached, isp,
        #:  set_cookie, user_id, service, deadline)
        prepared: list[tuple] = []
        for index, (query, cookie_header, deadline) in enumerate(items):
            def first(key: str, default: str = "",
                      _query=query) -> str:
                return _query.get(key, [default])[0]

            link = first("link")
            if not link:
                responses[index] = 400, "application/json", json.dumps(
                    {"error": "missing required parameter 'link'"}), \
                    None, {}
                continue
            if shed is not None:
                responses[index] = shed
                continue
            user_id, set_cookie = \
                self._user_id_from_cookie(cookie_header)
            try:
                isp = ISP(first("isp", "unicom"))
                _protocol, file_id = parse_link(link)
                popularity = int(first("popularity", "0") or 0)
                service = self._service_for(
                    first("policy", self.default_policy))
            except ValueError as error:
                responses[index] = 400, "application/json", json.dumps(
                    {"error": str(error)}), set_cookie, {}
                continue
            cached = first("cached", "0") in ("1", "true", "yes")
            prepared.append((index, first, link, file_id, popularity,
                             cached, isp, set_cookie, user_id, service,
                             deadline))

        # One lock scope for the whole batch: IP allocation plus the
        # popularity registration that seeds the database (the real ODR
        # queries Xuanfeng's live DB instead).
        addresses: dict[int, str] = {}
        if prepared:
            with self._lock:
                for (index, first, link, file_id, popularity, cached,
                     isp, set_cookie, user_id, service,
                     deadline) in prepared:
                    addresses[index] = self._allocator.allocate(isp)
                    row = self.database.row(file_id, size=0.0)
                    if row.request_count < popularity:
                        row.request_count = popularity
                    self.database.set_cached(file_id, cached)

        for (index, first, link, file_id, popularity, cached, isp,
             set_cookie, user_id, service, deadline) in prepared:
            try:
                context = self._build_context(
                    first, user_id, ip_address=addresses[index],
                    deadline=deadline)
                response = service.handle_request(context, link)
            except (ValueError, KeyError) as error:
                # Malformed input is the client's fault: it must not
                # trip the breaker or tear anything down.
                responses[index] = 400, "application/json", json.dumps(
                    {"error": str(error)}), set_cookie, {}
                continue
            except Exception as error:   # noqa: BLE001 - boundary handler
                # A backend bug used to propagate out of handle() and
                # kill the request thread mid-response; degrade to a
                # structured 500 and feed the breaker instead.
                if self._breaker is not None:
                    self._breaker.record(False, self._clock())
                responses[index] = 500, "application/json", json.dumps(
                    {"error": "internal error",
                     "detail": f"{type(error).__name__}: {error}"}), \
                    set_cookie, {}
                continue

            if self._breaker is not None:
                self._breaker.record(True, self._clock())
            payload = {
                "action": response.decision.action.value,
                "data_source": response.decision.data_source.value,
                "bottlenecks_addressed":
                    list(response.decision.bottlenecks_addressed),
                "explanation": response.explanation,
                "file_id": response.file_id,
                "protocol": response.protocol.value,
                "policy": service.policy,
            }
            responses[index] = 200, "application/json", \
                json.dumps(payload, indent=2), set_cookie, {}
        return responses   # type: ignore[return-value]

    def _user_id_from_cookie(self, cookie_header: str
                             ) -> tuple[str, Optional[str]]:
        cookie = SimpleCookie()
        if cookie_header:
            cookie.load(cookie_header)
        morsel = cookie.get("odr_user")
        if morsel is not None and morsel.value:
            return morsel.value, None
        user_id = uuid.uuid4().hex[:16]
        return user_id, f"odr_user={user_id}; Path=/"

    def _build_context(self, first, user_id: str,
                       ip_address: Optional[str] = None,
                       deadline: Optional[float] = None) -> UserContext:
        if ip_address is None:
            isp = ISP(first("isp", "unicom"))
            with self._lock:
                ip_address = self._allocator.allocate(isp)
        bandwidth = None
        raw_bandwidth = first("bandwidth_mbps")
        if raw_bandwidth:
            bandwidth = mbps(float(raw_bandwidth))
        smart_ap = None
        ap_name = first("ap")
        if ap_name:
            hardware = _AP_BY_NAME[ap_name]
            device = _DEVICE_BY_NAME[first("device")] \
                if first("device") else hardware.default_device
            filesystem = Filesystem(first("filesystem")) \
                if first("filesystem") else hardware.default_filesystem
            smart_ap = SmartApInfo(hardware, device, filesystem)
        # An absolute monotonic deadline becomes the remaining budget
        # at decide time; requests without one leave the field None so
        # policies keep their static defaults (and replay paths, which
        # never stamp deadlines, stay bit-identical).
        deadline_seconds = max(0.0, deadline - time.monotonic()) \
            if deadline is not None else None
        return UserContext(user_id=user_id, ip_address=ip_address,
                           access_bandwidth=bandwidth,
                           smart_ap=smart_ap,
                           deadline_seconds=deadline_seconds)

    def _register_popularity(self, link: str, first) -> None:
        from repro.core.service import parse_link
        _protocol, file_id = parse_link(link)
        popularity = int(first("popularity", "0") or 0)
        with self._lock:
            row = self.database.row(file_id, size=0.0)
            if row.request_count < popularity:
                row.request_count = popularity
            self.database.set_cached(file_id,
                                     first("cached", "0") in
                                     ("1", "true", "yes"))


class _Handler(BaseHTTPRequestHandler):
    app: OdrWebApp   # injected by make_server

    def do_GET(self):   # noqa: N802  (BaseHTTPRequestHandler API)
        status, content_type, body, set_cookie, headers = \
            self.app.handle(self.path, self.headers.get("Cookie", ""))
        payload = body.encode()
        self.send_response(status)
        self.send_header("Content-Type",
                         f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        if set_cookie:
            self.send_header("Set-Cookie", set_cookie)
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format, *args):   # silence test output
        pass


class OdrHTTPServer(ThreadingHTTPServer):
    """The ODR server with explicit lifecycle semantics.

    ``daemon_threads`` so in-flight handler threads never block process
    exit (``shutdown()`` only stops the accept loop), and
    ``allow_reuse_address`` so a restart can rebind the port while the
    previous socket lingers in TIME_WAIT.

    The server counts in-flight handler threads so a graceful stop can
    ``shutdown()`` the accept loop, :meth:`drain` the requests already
    being answered, and only then ``server_close()`` the socket --
    instead of daemon threads being cut off mid-response at exit.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._inflight = 0
        self._inflight_cv = threading.Condition()

    def process_request_thread(self, request, client_address):
        with self._inflight_cv:
            self._inflight += 1
        try:
            super().process_request_thread(request, client_address)
        finally:
            with self._inflight_cv:
                self._inflight -= 1
                self._inflight_cv.notify_all()

    @property
    def inflight_requests(self) -> int:
        with self._inflight_cv:
            return self._inflight

    @property
    def host(self) -> str:
        """The interface the server actually bound."""
        return self.server_address[0]

    @property
    def port(self) -> int:
        """The port the server actually bound.

        When constructed with port 0 the OS picks a free port at bind
        time; callers (the load generator, tests, the bench harness)
        read it here instead of poking ``server_address``.
        """
        return self.server_address[1]

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait until in-flight requests finish; False on timeout."""
        deadline = time.monotonic() + timeout
        with self._inflight_cv:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cv.wait(remaining)
        return True


def make_server(port: int = 0,
                database: Optional[ContentDatabase] = None,
                policies: Optional[ResiliencePolicies] = None,
                metrics: AnyRegistry = NOOP,
                default_policy: str = "odr") -> OdrHTTPServer:
    """Build (without starting) the HTTP server; port 0 picks a free
    one."""
    app = OdrWebApp(database, policies=policies, metrics=metrics,
                    default_policy=default_policy)
    handler = type("OdrHandler", (_Handler,), {"app": app})
    return OdrHTTPServer(("127.0.0.1", port), handler)


def run_server(server: OdrHTTPServer, *,
               install_signals: bool = True,
               grace: float = 10.0,
               ready: Optional[threading.Event] = None,
               stop: Optional[threading.Event] = None,
               quiet: bool = False) -> int:
    """Run ``server`` until SIGINT/SIGTERM, then drain and close.

    The accept loop runs in a background thread; the caller's thread
    waits on ``stop`` (set by the installed signal handlers, by
    Ctrl-C, or externally by tests).  On stop: ``shutdown()`` stops
    accepting, :meth:`OdrHTTPServer.drain` waits up to ``grace``
    seconds for in-flight responses, then the socket closes.  Returns 0
    on a clean drain, 1 if requests were still in flight at the
    deadline.
    """
    stop = stop or threading.Event()
    previous: dict[int, object] = {}

    def _on_signal(signum, frame):   # noqa: ARG001 - signal API
        stop.set()

    if install_signals \
            and threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, _on_signal)

    accept = threading.Thread(target=server.serve_forever,
                              name="odr-accept", daemon=True)
    accept.start()
    drained = True
    try:
        if ready is not None:
            ready.set()
        try:
            while not stop.wait(0.1):
                pass
        except KeyboardInterrupt:
            stop.set()
        if not quiet:
            print("ODR shutting down: draining in-flight requests ...")
        server.shutdown()
        accept.join(grace)
        drained = server.drain(grace)
        if not drained and not quiet:
            print(f"ODR drain timed out after {grace:g}s with "
                  f"{server.inflight_requests} request(s) in flight")
    finally:
        server.server_close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0 if drained else 1


def serve(port: int = 8034,
          policies: Optional[ResiliencePolicies] = None,
          grace: float = 10.0) -> int:   # pragma: no cover - interactive
    server = make_server(port, policies=policies)
    actual_port = server.port
    print(f"ODR listening on http://127.0.0.1:{actual_port}/ "
          f"(Ctrl-C or SIGTERM to stop)")
    return run_server(server, grace=grace)
