"""Buffer-based adaptive bitrate selection (Huang et al., SIGCOMM 2014).

The paper's section 6.1 names this as the finer-grained alternative to
ODR's hard-coded 125 KBps view-as-download rule: instead of asking "is
the fetch speed above the HD playback rate?", a BBA player picks the
video bitrate from the *playback buffer level*, so a fetch that dips
below HD rate for a while degrades quality instead of stalling.

This module implements the BBA-0 rate map (a linear ramp between a
reservoir and a cushion) and a playback simulator, plus
:func:`streaming_verdict`, the drop-in refinement of ODR's Bottleneck 1
predicate: a route is streaming-viable if BBA playback over its speed
profile rebuffers less than a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

#: A typical 2015 ladder, in B/s of media rate (0.3 .. 2.5 Mbps).
DEFAULT_LADDER: tuple[float, ...] = (37.5e3, 62.5e3, 125e3, 187.5e3,
                                     312.5e3)


@dataclass(frozen=True)
class BbaConfig:
    """BBA-0 parameters (seconds of buffered video)."""

    ladder: tuple[float, ...] = DEFAULT_LADDER
    reservoir: float = 10.0       # below this: minimum rate
    cushion: float = 50.0         # above reservoir+cushion: maximum rate
    max_buffer: float = 120.0

    def __post_init__(self):
        if not self.ladder or list(self.ladder) != sorted(self.ladder):
            raise ValueError("ladder must be ascending and non-empty")
        if self.reservoir <= 0 or self.cushion <= 0:
            raise ValueError("reservoir and cushion must be positive")

    def rate_for_buffer(self, buffer_seconds: float) -> float:
        """The BBA-0 map: R_min below the reservoir, R_max above the
        cushion, linear in between."""
        r_min, r_max = self.ladder[0], self.ladder[-1]
        if buffer_seconds <= self.reservoir:
            return r_min
        if buffer_seconds >= self.reservoir + self.cushion:
            return r_max
        slope = (r_max - r_min) / self.cushion
        target = r_min + slope * (buffer_seconds - self.reservoir)
        # Quantise down to a ladder rung (never exceed the map).
        chosen = r_min
        for rung in self.ladder:
            if rung <= target:
                chosen = rung
        return chosen


@dataclass
class PlaybackResult:
    """What a simulated viewing session experienced."""

    played_seconds: float
    rebuffer_seconds: float
    startup_delay: float
    mean_bitrate: float
    bitrate_switches: int

    @property
    def rebuffer_ratio(self) -> float:
        total = self.played_seconds + self.rebuffer_seconds
        return self.rebuffer_seconds / total if total > 0 else 0.0


def simulate_playback(throughput: Sequence[float],
                      config: BbaConfig = BbaConfig(),
                      step: float = 1.0,
                      startup_buffer: float = 5.0) -> PlaybackResult:
    """Play a video over a per-step throughput profile with BBA-0.

    ``throughput`` is the download speed (B/s) in each ``step``-second
    slot.  The player buffers video seconds at rate
    ``throughput / bitrate``, drains one real-time second per second
    while playing, and stalls (rebuffers) when the buffer empties.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    buffer = 0.0
    playing = False
    played = 0.0
    rebuffering = 0.0
    startup = 0.0
    switches = 0
    weighted_bitrate = 0.0
    last_rate: float | None = None

    for slot_throughput in throughput:
        rate = config.rate_for_buffer(buffer)
        if last_rate is not None and rate != last_rate:
            switches += 1
        last_rate = rate
        buffer += step * slot_throughput / rate
        buffer = min(buffer, config.max_buffer)
        if not playing:
            if buffer >= startup_buffer:
                playing = True
            else:
                startup += step
                continue
        if buffer >= step:
            buffer -= step
            played += step
            weighted_bitrate += rate * step
        else:
            rebuffering += step
    mean_bitrate = weighted_bitrate / played if played > 0 else 0.0
    return PlaybackResult(played_seconds=played,
                          rebuffer_seconds=rebuffering,
                          startup_delay=startup,
                          mean_bitrate=mean_bitrate,
                          bitrate_switches=switches)


def streaming_verdict(throughput: Sequence[float],
                      config: BbaConfig = BbaConfig(),
                      rebuffer_tolerance: float = 0.02) -> bool:
    """Is view-as-download viable over this throughput profile?

    The BBA refinement of ODR's 125 KBps rule: viable means BBA playback
    rebuffers for less than ``rebuffer_tolerance`` of the session.  A
    steady 100 KBps fetch -- impeded by the hard rule -- is perfectly
    watchable at a lower rung; a bursty fetch averaging 150 KBps may
    not be.
    """
    result = simulate_playback(throughput, config=config)
    if result.played_seconds <= 0:
        return False
    return result.rebuffer_ratio <= rebuffer_tolerance
