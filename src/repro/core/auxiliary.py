"""Auxiliary user information ODR collects, and its cookie persistence.

When a user submits a link, ODR also asks for her IP address, access
bandwidth, smart-AP type, and storage device / filesystem type (paper
section 6.1).  A web cookie remembers the answers so repeat visitors skip
the form; :class:`CookieJar` reproduces that behaviour for the replay
harness.  Access bandwidth is the one non-obvious field -- the real
service walks users through PC-assistant software to measure it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.ap.models import ApHardware
from repro.storage.device import StorageDevice
from repro.storage.filesystem import Filesystem
from repro.storage.writepath import WritePath


@dataclass(frozen=True)
class SmartApInfo:
    """The user's smart AP as reported to ODR."""

    hardware: ApHardware
    device: StorageDevice
    filesystem: Filesystem

    def write_path(self) -> WritePath:
        return WritePath(self.device, self.filesystem,
                         self.hardware.cpu_mhz)

    @classmethod
    def default_for(cls, hardware: ApHardware) -> "SmartApInfo":
        return cls(hardware=hardware, device=hardware.default_device,
                   filesystem=hardware.default_filesystem)


@dataclass(frozen=True)
class UserContext:
    """Everything ODR knows about the requesting user."""

    user_id: str
    ip_address: str
    access_bandwidth: Optional[float]     # B/s; None if the user cannot say
    smart_ap: Optional[SmartApInfo] = None
    #: Remaining per-request completion budget in seconds, parsed from
    #: the serving tier's ``X-Deadline-Ms`` header.  Per request, never
    #: cookie-persisted: delay-aware routing ranks against it when
    #: present and falls back to its static default when None, so
    #: replay paths (which never set it) stay bit-identical.
    deadline_seconds: Optional[float] = None

    @property
    def has_smart_ap(self) -> bool:
        return self.smart_ap is not None


class CookieJar:
    """Server-side stand-in for ODR's per-user web cookies."""

    def __init__(self):
        self._contexts: dict[str, UserContext] = {}

    def __len__(self) -> int:
        return len(self._contexts)

    def remember(self, context: UserContext) -> None:
        # Deadlines are per-request budgets, not user attributes; a
        # stale one must never resurface from the cookie on a later
        # visit.
        if context.deadline_seconds is not None:
            context = replace(context, deadline_seconds=None)
        self._contexts[context.user_id] = context

    def recall(self, user_id: str) -> Optional[UserContext]:
        return self._contexts.get(user_id)

    def merge(self, context: UserContext) -> UserContext:
        """Fill the gaps of a fresh submission from the stored cookie.

        A returning user who leaves the bandwidth or AP fields blank gets
        them back from her previous visit; whatever she *does* supply
        wins and refreshes the cookie.
        """
        stored = self._contexts.get(context.user_id)
        if stored is not None:
            if context.access_bandwidth is None:
                context = replace(
                    context, access_bandwidth=stored.access_bandwidth)
            if context.smart_ap is None:
                context = replace(context, smart_ap=stored.smart_ap)
        self.remember(context)
        return context
