"""Redirection decisions: the leaves of Figure 15's state machine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Action(enum.Enum):
    """Who executes the download."""

    CLOUD = "cloud"                      # fetch (and pre-download) via cloud
    SMART_AP = "smart_ap"                # the AP pre-downloads
    USER_DEVICE = "user_device"          # the user's own machine downloads
    CLOUD_THEN_SMART_AP = "cloud+ap"     # AP pulls from cloud, user from AP
    CLOUD_PREDOWNLOAD = "cloud_predownload"  # wait for the cloud, ask again
    NOTIFY_FAILURE = "notify_failure"    # the cloud could not obtain it
    D2D = "d2d"                          # nearby completed downloaders seed it
    NEIGHBOR_AP = "neighbor_ap"          # a neighbouring AP's co-op cache


class DataSource(enum.Enum):
    """Where the bytes come from."""

    ORIGINAL = "original"                # the HTTP/FTP server or P2P swarm
    CLOUD = "cloud"                      # Xuanfeng's uploading servers
    PEERS = "peers"                      # nearby user devices (D2D)
    NEIGHBOR_AP = "neighbor_ap"          # a neighbouring smart AP's cache


@dataclass(frozen=True)
class Decision:
    """One redirection decision with its audit trail.

    ``bottlenecks_addressed`` lists which of the paper's four bottleneck
    numbers this decision dodges -- the explanations ODR's web page shows
    users, and what the evaluation aggregates.
    """

    action: Action
    data_source: DataSource
    bottlenecks_addressed: tuple[int, ...] = ()
    rationale: str = ""

    def __post_init__(self):
        for bottleneck in self.bottlenecks_addressed:
            if bottleneck not in (1, 2, 3, 4):
                raise ValueError(f"unknown bottleneck {bottleneck}")
        if self.action is Action.CLOUD and \
                self.data_source is not DataSource.CLOUD:
            raise ValueError("cloud fetches serve from the cloud")

    @property
    def uses_cloud_bandwidth(self) -> bool:
        """Does this route consume cloud upload bandwidth for delivery?"""
        return self.action in (Action.CLOUD, Action.CLOUD_THEN_SMART_AP)

    @property
    def is_terminal(self) -> bool:
        """False only for CLOUD_PREDOWNLOAD, which requires a re-ask."""
        return self.action is not Action.CLOUD_PREDOWNLOAD
