"""The ODR web-service facade.

The deployed ODR is "a public web service ... on a low-end virtual
machine" (section 6.1): users open the front page, paste a link, fill in
(or let the cookie recall) their auxiliary info, and read back the
suggestion.  :class:`OdrService` reproduces that request/response
surface in-process: link parsing, cookie merging, decision, and a
human-readable explanation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional
from urllib.parse import urlparse

from repro.cloud.database import ContentDatabase
from repro.core.auxiliary import CookieJar, UserContext
from repro.core.decision import Decision
from repro.core.odr import OdrConfig, OdrMiddleware
from repro.netsim.ip import IpResolver
from repro.transfer.protocols import Protocol

_SCHEME_TO_PROTOCOL = {
    "http": Protocol.HTTP,
    "https": Protocol.HTTP,
    "ftp": Protocol.FTP,
    "magnet": Protocol.BITTORRENT,
    "bittorrent": Protocol.BITTORRENT,
    "ed2k": Protocol.EMULE,
    "emule": Protocol.EMULE,
}


def parse_link(link: str) -> tuple[Protocol, str]:
    """Extract (protocol, file identifier) from a submitted link.

    File identity is the last path component -- the synthetic catalog
    builds links as ``<scheme>://origin/<content-id>``, and real links
    carry an info-hash the same way.
    """
    parsed = urlparse(link)
    protocol = _SCHEME_TO_PROTOCOL.get(parsed.scheme.lower())
    if protocol is None:
        raise ValueError(f"unsupported link scheme {parsed.scheme!r}")
    identifier = parsed.path.rstrip("/").rsplit("/", 1)[-1] or parsed.netloc
    if not identifier:
        raise ValueError(f"cannot extract a file identifier from {link!r}")
    return protocol, identifier


@dataclass(frozen=True)
class OdrResponse:
    """What the front page renders back to the user."""

    decision: Decision
    file_id: str
    protocol: Protocol
    explanation: str


class OdrService:
    """The public entry point wrapping a routing strategy.

    Historically this wrapped :class:`OdrMiddleware` directly; it now
    routes through any registry strategy (``policy`` names one of
    :func:`repro.backends.registry.strategy_names`).  The default,
    ``"odr"``, wraps the same middleware as before and produces
    byte-identical decisions; ``self.middleware`` remains available
    either way for callers that tune the Figure-15 knobs.
    """

    def __init__(self, database: ContentDatabase,
                 resolver: Optional[IpResolver] = None,
                 config: OdrConfig = OdrConfig(),
                 policy: str = "odr"):
        self.middleware = OdrMiddleware(database, resolver=resolver,
                                        config=config)
        self.policy = policy
        from repro.backends.registry import resolve_strategy
        self.strategy = resolve_strategy(
            policy, database=database,
            middleware=self.middleware if policy == "odr" else None)
        self.cookies = CookieJar()
        self.requests_served = 0

    def handle_request(self, context: UserContext,
                       link: str) -> OdrResponse:
        """One user interaction: merge cookies, decide, explain."""
        context = self.cookies.merge(context)
        protocol, file_id = parse_link(link)
        decision = self.strategy.decide(context, file_id, protocol)
        self.requests_served += 1
        return OdrResponse(
            decision=decision, file_id=file_id, protocol=protocol,
            explanation=self._render(decision))

    def handle_predownload_completion(self, context: UserContext,
                                      file_id: str,
                                      success: bool) -> OdrResponse:
        """The notification + re-ask after a cloud pre-download."""
        context = self.cookies.merge(context)
        decision = self.strategy.decide_after_predownload(
            context, file_id, success)
        return OdrResponse(
            decision=decision, file_id=file_id,
            protocol=Protocol.HTTP,     # served from the cloud regardless
            explanation=self._render(decision))

    @staticmethod
    def _render(decision: Decision) -> str:
        addressed = ", ".join(f"Bottleneck {n}"
                              for n in decision.bottlenecks_addressed)
        suffix = f" (addresses {addressed})" if addressed else ""
        return (f"Suggested route: {decision.action.value} from "
                f"{decision.data_source.value} -- "
                f"{decision.rationale}{suffix}")
