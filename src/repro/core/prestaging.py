"""Content pre-staging: defer elastic downloads to off-peak windows.

Section 6.1 cites Finamore et al.'s "mobile phone content pre-staging":
when users are not time-sensitive, simply deferring downloads to times
of better bandwidth flattens the load.  For the cloud this attacks
Bottleneck 2 from a second angle: Figure 11's day-7 peak pierces the
purchased 30 Gbps while the nightly troughs idle far below it.

:class:`PrestagingScheduler` performs water-filling: given the observed
burden series and a set of deferrable flows (each with a release time,
a deadline, and a byte volume), it packs each flow into the cheapest
bins of its feasibility window.  The ablation bench shows the peak
reduction this buys on the simulated week.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class DeferrableFlow:
    """One elastic download: must run between release and deadline."""

    flow_id: str
    volume_bytes: float
    release_time: float
    deadline: float

    def __post_init__(self):
        if self.volume_bytes <= 0:
            raise ValueError("volume must be positive")
        if self.deadline <= self.release_time:
            raise ValueError("deadline must follow the release time")


@dataclass
class ScheduleResult:
    """The scheduler's output."""

    baseline_series: np.ndarray     # original burden per bin (B/s)
    scheduled_series: np.ndarray    # burden with deferrals applied
    placements: dict[str, list[tuple[int, float]]]  # flow -> (bin, B/s)
    bin_width: float

    @property
    def baseline_peak(self) -> float:
        return float(self.baseline_series.max())

    @property
    def scheduled_peak(self) -> float:
        return float(self.scheduled_series.max())

    @property
    def peak_reduction(self) -> float:
        if self.baseline_peak <= 0:
            return 0.0
        return 1.0 - self.scheduled_peak / self.baseline_peak


class PrestagingScheduler:
    """Water-filling placement of deferrable flows into a burden series.

    ``inelastic_series`` is the burden that cannot move (per bin, B/s);
    deferrable flows are *removed* from it by the caller beforehand (or
    were never part of it).  Flows are placed greedily, largest first,
    each filling its window's lowest bins -- the classic water-filling
    heuristic, optimal for minimising the resulting peak when windows
    nest.
    """

    def __init__(self, inelastic_series: Sequence[float],
                 bin_width: float):
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = bin_width
        self.inelastic = np.asarray(inelastic_series, dtype=float)
        if self.inelastic.ndim != 1 or len(self.inelastic) == 0:
            raise ValueError("inelastic_series must be a non-empty "
                             "1-D sequence")

    def _window_bins(self, flow: DeferrableFlow) -> tuple[int, int]:
        first = max(0, int(flow.release_time / self.bin_width))
        last = min(len(self.inelastic) - 1,
                   int((flow.deadline - 1e-9) / self.bin_width))
        if last < first:
            raise ValueError(
                f"flow {flow.flow_id}: window misses the series")
        return first, last

    def schedule(self, flows: Sequence[DeferrableFlow]) -> ScheduleResult:
        series = self.inelastic.copy()
        placements: dict[str, list[tuple[int, float]]] = {}
        for flow in sorted(flows, key=lambda f: -f.volume_bytes):
            placements[flow.flow_id] = self._place(flow, series)
        return ScheduleResult(
            baseline_series=self.inelastic,
            scheduled_series=series,
            placements=placements,
            bin_width=self.bin_width)

    def _place(self, flow: DeferrableFlow,
               series: np.ndarray) -> list[tuple[int, float]]:
        first, last = self._window_bins(flow)
        window = np.arange(first, last + 1)
        # Closed-form water level L: pouring `volume` into the window
        # raises every bin below L up to exactly L, where
        #   sum_b max(0, L - series[b]) * bin_width = volume.
        heights = np.sort(series[window])
        volume = flow.volume_bytes
        count = len(heights)
        filled = 0.0
        level = heights[-1]
        found = False
        for k in range(count - 1):
            gap = (heights[k + 1] - heights[k]) * (k + 1) * self.bin_width
            if filled + gap >= volume:
                level = heights[k] + (volume - filled) / \
                    ((k + 1) * self.bin_width)
                found = True
                break
            filled += gap
        if not found:
            # Window fully levelled; spread the remainder evenly.
            level = heights[-1] + (volume - filled) / \
                (count * self.bin_width)
        placed: list[tuple[int, float]] = []
        for b in window:
            add = max(0.0, level - series[b])
            if add > 0:
                series[b] += add
                placed.append((int(b), add))
        return placed


def deferrable_from_flows(flows, horizon: float,
                          slack: float) -> tuple[list[DeferrableFlow],
                                                 list]:
    """Adapt cloud :class:`repro.cloud.system.FetchFlow` records into
    deferrable flows with ``slack`` seconds of deadline laxity.

    Returns ``(deferrables, leftovers)``.  Flows whose full slack window
    would spill past the horizon are returned as leftovers instead of
    being clipped -- clipping would cram every late-week flow into the
    final bins and manufacture an artificial end-of-horizon peak (in
    reality their windows extend into the following week).
    """
    deferrables: list[DeferrableFlow] = []
    leftovers: list = []
    for index, flow in enumerate(flows):
        volume = flow.rate * (flow.end - flow.start)
        if volume <= 0:
            continue
        if flow.start + slack > horizon:
            leftovers.append(flow)
            continue
        deferrables.append(DeferrableFlow(
            flow_id=f"flow-{index}", volume_bytes=volume,
            release_time=flow.start, deadline=flow.start + slack))
    return deferrables, leftovers
