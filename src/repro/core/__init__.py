"""ODR -- the Offline Downloading Redirector (the paper's contribution).

ODR is a lightweight middleware that takes a user's offline-downloading
request plus auxiliary information (IP, access bandwidth, smart-AP
hardware, storage device/filesystem), queries the cloud's content
database for the file's popularity, and redirects the request to
whichever backend dodges the four measured bottlenecks:

* Bottleneck 1 -- impeded cloud fetches (ISP barrier / low access bw);
* Bottleneck 2 -- cloud upload bandwidth wasted on highly popular files;
* Bottleneck 3 -- smart APs failing on unpopular files;
* Bottleneck 4 -- storage write paths throttling AP pre-downloads.

ODR never moves file bytes itself; it only answers "where should this
download run" (Figure 15's state machine).
"""

from repro.core.decision import Action, DataSource, Decision
from repro.core.auxiliary import CookieJar, SmartApInfo, UserContext
from repro.core.bottlenecks import BottleneckDetector
from repro.core.odr import OdrConfig, OdrMiddleware
from repro.core.service import OdrService, OdrResponse
from repro.core.strategies import (
    AlwaysHybridStrategy,
    AmsStrategy,
    CloudOnlyStrategy,
    OdrStrategy,
    SmartApOnlyStrategy,
    Strategy,
)
from repro.core.replay import OdrReplayResult, ReplayEvaluator, RouteOutcome
from repro.core.bba import BbaConfig, simulate_playback, \
    streaming_verdict
from repro.core.prestaging import (
    DeferrableFlow,
    PrestagingScheduler,
    deferrable_from_flows,
)

__all__ = [
    "Action",
    "DataSource",
    "Decision",
    "UserContext",
    "SmartApInfo",
    "CookieJar",
    "BottleneckDetector",
    "OdrConfig",
    "OdrMiddleware",
    "OdrService",
    "OdrResponse",
    "Strategy",
    "CloudOnlyStrategy",
    "SmartApOnlyStrategy",
    "AlwaysHybridStrategy",
    "AmsStrategy",
    "OdrStrategy",
    "ReplayEvaluator",
    "OdrReplayResult",
    "RouteOutcome",
    "BbaConfig",
    "simulate_playback",
    "streaming_verdict",
    "DeferrableFlow",
    "PrestagingScheduler",
    "deferrable_from_flows",
]
