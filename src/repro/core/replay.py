"""Replaying the sampled workload through a redirection strategy.

Reproduces the section 6.2 evaluation: the 1000-request Unicom sample
replays on the Figure 12 testbed (smart APs and a laptop behind a
20 Mbps Unicom ADSL line), but each request is first routed by a
:class:`Strategy` (ODR or a baseline).  The harness executes whatever
the decision says -- cloud fetch, AP pre-download from the swarm, direct
download, cloud-then-AP staging -- and aggregates the four bottleneck
metrics plus the Figure 17 fetch-speed distribution.

Highly popular P2P routes assume the cloud *seeds* the swarm: ODR's
bandwidth saving is the delivered bytes divided by the swarm's bandwidth
multiplier (Li et al., IWQoS'12), which is why the measured reduction
(35%) is slightly below the highly-popular byte share (39%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.analysis.cdf import CDF, empirical_cdf
from repro.ap.models import ApHardware, BENCHMARKED_APS
from repro.ap.smartap import SmartAP
from repro.cloud.database import ContentDatabase
from repro.cloud.fetch import FetchSpeedModel
from repro.core.auxiliary import SmartApInfo, UserContext
from repro.core.decision import Action, DataSource, Decision
from repro.core.strategies import Strategy
from repro.faults.policies import CircuitBreaker, ResiliencePolicies
from repro.netsim.isp import ISP
from repro.netsim.link import TESTBED_ADSL, adsl_goodput
from repro.netsim.topology import ChinaTopology
from repro.obs.registry import AnyRegistry, NOOP
from repro.paper import IMPEDED_FETCH_THRESHOLD
from repro.sim.clock import kbps
from repro.sim.randomness import RngFactory
from repro.transfer.source import SourceModel
from repro.transfer.swarm import Swarm
from repro.workload.catalog import FileCatalog
from repro.workload.popularity import PopularityClass
from repro.workload.records import CatalogFile, RequestRecord


@dataclass
class RouteOutcome:
    """What executing one decision produced."""

    request: RequestRecord
    file: CatalogFile
    decision: Decision
    success: bool
    #: Speed of getting the bytes onto the user's premises (the WAN leg),
    #: what Figure 17 plots; 0 on failure.
    wan_speed: float
    #: What the user experiences when streaming/fetching: the LAN rate
    #: for AP-staged routes, the WAN rate otherwise.
    user_speed: float
    cloud_delivered_bytes: float = 0.0
    cloud_seeding_bytes: float = 0.0
    write_path_limited: bool = False
    failure_cause: Optional[str] = None

    @property
    def impeded(self) -> bool:
        """Below HD playback rate from the user's point of view."""
        return self.success and \
            self.user_speed < IMPEDED_FETCH_THRESHOLD


@dataclass
class OdrReplayResult:
    """Aggregates of one replay campaign (one strategy)."""

    strategy_name: str
    outcomes: list[RouteOutcome]

    def __post_init__(self):
        if not self.outcomes:
            raise ValueError("empty replay")

    # -- Bottleneck 1 ------------------------------------------------------------

    @property
    def impeded_share(self) -> float:
        fetched = [o for o in self.outcomes if o.success]
        if not fetched:
            return 0.0
        return sum(1 for o in fetched if o.impeded) / len(fetched)

    # -- Bottleneck 2 ------------------------------------------------------------

    @property
    def cloud_bandwidth_bytes(self) -> float:
        """Total cloud upload bytes: deliveries plus swarm seeding."""
        return sum(o.cloud_delivered_bytes + o.cloud_seeding_bytes
                   for o in self.outcomes)

    def cloud_bandwidth_reduction(self,
                                  baseline: "OdrReplayResult") -> float:
        """Fractional saving of cloud upload bytes vs a baseline run."""
        base = baseline.cloud_bandwidth_bytes
        if base <= 0:
            return 0.0
        return 1.0 - self.cloud_bandwidth_bytes / base

    # -- Bottleneck 3 ------------------------------------------------------------

    @property
    def unpopular_failure_ratio(self) -> float:
        unpopular = [o for o in self.outcomes
                     if o.file.popularity_class is
                     PopularityClass.UNPOPULAR]
        if not unpopular:
            return 0.0
        return sum(1 for o in unpopular if not o.success) / len(unpopular)

    @property
    def failure_ratio(self) -> float:
        return sum(1 for o in self.outcomes
                   if not o.success) / len(self.outcomes)

    # -- Bottleneck 4 ------------------------------------------------------------

    @property
    def write_path_limited_share(self) -> float:
        return sum(1 for o in self.outcomes
                   if o.write_path_limited) / len(self.outcomes)

    # -- Figure 17 ------------------------------------------------------------------

    def fetch_speed_cdf(self) -> CDF:
        """WAN fetch speeds, failures included at 0."""
        return empirical_cdf([o.wan_speed if o.success else 0.0
                              for o in self.outcomes])

    @property
    def wrong_decision_share(self) -> float:
        """Redirections away from the cloud that still ended up impeded
        or failed -- the paper's 'occasionally incorrect decisions'."""
        redirected = [o for o in self.outcomes
                      if o.decision.data_source is DataSource.ORIGINAL]
        if not redirected:
            return 0.0
        bad = sum(1 for o in redirected if not o.success or o.impeded)
        return bad / len(self.outcomes)

    def route_mix(self) -> dict[str, float]:
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            key = outcome.decision.action.value
            counts[key] = counts.get(key, 0) + 1
        return {key: count / len(self.outcomes)
                for key, count in counts.items()}


class ReplayEvaluator:
    """Executes strategy decisions on the simulated testbed."""

    def __init__(self, catalog: FileCatalog, database: ContentDatabase,
                 source_model: Optional[SourceModel] = None,
                 fetch_model: Optional[FetchSpeedModel] = None,
                 aps: Sequence[ApHardware] = BENCHMARKED_APS,
                 uplink_bandwidth: float = adsl_goodput(TESTBED_ADSL),
                 seed: int = 20150323,
                 metrics: AnyRegistry = NOOP,
                 policies: Optional[ResiliencePolicies] = None):
        self.catalog = catalog
        self.database = database
        self.source_model = source_model or SourceModel()
        self.fetch_model = fetch_model or FetchSpeedModel()
        self.uplink_bandwidth = uplink_bandwidth
        self._rng_factory = RngFactory(seed)
        self.metrics = metrics
        # Resilience is opt-in: with ``policies`` set, a circuit breaker
        # watches real smart-AP outcomes and, while open, fails smart-AP
        # routes over to the cloud (clocked on the request index).
        self.policies = policies
        self._aps = [SmartAP(hardware, source_model=self.source_model)
                     for hardware in aps]
        # The testbed sits inside Unicom, so cloud fetches ride a
        # privileged path.
        self._privileged_path = ChinaTopology().path_quality(ISP.UNICOM,
                                                             ISP.UNICOM)

    def replay(self, requests: Sequence[RequestRecord],
               strategy: Strategy) -> OdrReplayResult:
        if not requests:
            raise ValueError("nothing to replay")
        rng = self._rng_factory.stream(f"replay-{strategy.name}")
        breaker = self.policies.breaker(f"smart-ap:{strategy.name}",
                                        self.metrics) \
            if self.policies is not None and self.policies.failover \
            else None
        outcomes = [self._execute(request, strategy, index, rng, breaker)
                    for index, request in enumerate(requests)]
        self._account(strategy.name, outcomes)
        return OdrReplayResult(strategy_name=strategy.name,
                               outcomes=outcomes)

    def _account(self, strategy_name: str,
                 outcomes: list[RouteOutcome]) -> None:
        """Per-strategy bottleneck counters for the metrics registry."""
        metrics = self.metrics
        if not metrics.enabled:
            return
        impeded = metrics.counter("repro_odr_impeded_total",
                                  strategy=strategy_name)
        failures = metrics.counter("repro_odr_failures_total",
                                   strategy=strategy_name)
        writepath = metrics.counter("repro_odr_writepath_limited_total",
                                    strategy=strategy_name)
        seeding = metrics.counter("repro_odr_cloud_seeding_bytes_total",
                                  strategy=strategy_name)
        for outcome in outcomes:
            metrics.counter("repro_odr_routes_total",
                            strategy=strategy_name,
                            action=outcome.decision.action.value).inc()
            if outcome.impeded:
                impeded.inc()
            if not outcome.success:
                failures.inc()
            if outcome.write_path_limited:
                writepath.inc()
            if outcome.cloud_seeding_bytes:
                seeding.inc(outcome.cloud_seeding_bytes)

    # -- per-request execution -------------------------------------------------------

    def _execute(self, request: RequestRecord, strategy: Strategy,
                 index: int, rng: np.random.Generator,
                 breaker: Optional[CircuitBreaker] = None
                 ) -> RouteOutcome:
        ap = self._aps[index % len(self._aps)]
        context = UserContext(
            user_id=request.user_id, ip_address=request.ip_address,
            access_bandwidth=request.access_bandwidth,
            smart_ap=SmartApInfo(ap.hardware, ap.device, ap.filesystem))
        record = self.catalog[request.file_id]
        decision = strategy.decide(context, record.file_id,
                                   record.protocol)

        if decision.action is Action.CLOUD_PREDOWNLOAD:
            success = self._cloud_predownload(record, rng)
            decision = strategy.decide_after_predownload(
                context, record.file_id, success)

        via_ap = decision.action is Action.SMART_AP
        if via_ap and breaker is not None \
                and not breaker.allow(float(index)):
            # The breaker saw too many recent smart-AP failures: route
            # this request through the cloud until the cooldown elapses.
            self.metrics.counter("repro_faults_failovers_total",
                                 layer="odr").inc()
            decision = Decision(
                action=Action.CLOUD, data_source=DataSource.CLOUD,
                bottlenecks_addressed=decision.bottlenecks_addressed,
                rationale="smart-AP circuit open: failing over to cloud")
            via_ap = False

        outcome = self._run_decision(request, record, context, ap,
                                     decision, rng)
        if via_ap and breaker is not None:
            # Only genuinely executed smart-AP routes feed the breaker.
            breaker.record(outcome.success, float(index))
        return outcome

    def _cloud_predownload(self, record: CatalogFile,
                           rng: np.random.Generator) -> bool:
        """One cloud pre-download attempt, updating the shared database."""
        from repro.transfer.session import DownloadSession, SessionLimits
        from repro.transfer.source import CLOUD_VANTAGE
        source = self.source_model.build(record.file_id, record.protocol,
                                         record.weekly_demand)
        session = DownloadSession(source, record.size, CLOUD_VANTAGE,
                                  limits=SessionLimits(rate_caps=(2.5e6,)),
                                  metrics=self.metrics)
        outcome = session.simulate(rng)
        self.database.record_attempt(record.file_id, outcome.success)
        if outcome.success:
            self.database.set_cached(record.file_id, True)
        return outcome.success

    def _run_decision(self, request: RequestRecord, record: CatalogFile,
                      context: UserContext, ap: SmartAP,
                      decision: Decision,
                      rng: np.random.Generator) -> RouteOutcome:
        user_bw = min(request.access_bandwidth or self.uplink_bandwidth,
                      self.uplink_bandwidth)

        if decision.action is Action.NOTIFY_FAILURE:
            return RouteOutcome(request=request, file=record,
                                decision=decision, success=False,
                                wan_speed=0.0, user_speed=0.0,
                                failure_cause="cloud_predownload_failed")

        if decision.action is Action.CLOUD:
            speed = min(self.fetch_model.sample_speed(
                user_bw, self._privileged_path, rng), user_bw)
            return RouteOutcome(request=request, file=record,
                                decision=decision, success=True,
                                wan_speed=speed, user_speed=speed,
                                cloud_delivered_bytes=record.size)

        if decision.action is Action.CLOUD_THEN_SMART_AP:
            wan = min(self.fetch_model.sample_speed(
                user_bw, self._privileged_path, rng),
                user_bw, ap.write_path.max_throughput)
            lan = ap.lan_fetch_rate(rng)
            return RouteOutcome(
                request=request, file=record, decision=decision,
                success=True, wan_speed=wan, user_speed=lan,
                cloud_delivered_bytes=record.size,
                write_path_limited=self._writepath_limited(ap, user_bw))

        if decision.action is Action.D2D:
            return self._run_d2d(request, record, decision, rng)

        if decision.action is Action.NEIGHBOR_AP:
            return self._run_neighbor_ap(request, record, ap, decision,
                                         rng)

        # Direct-from-origin routes (SMART_AP or USER_DEVICE).
        return self._run_direct(request, record, context, ap, decision,
                                rng, user_bw)

    def _run_d2d(self, request: RequestRecord, record: CatalogFile,
                 decision: Decision,
                 rng: np.random.Generator) -> RouteOutcome:
        """Device-to-device: nearby completed downloaders seed the file.

        The transfer rides local Wi-Fi, so neither the WAN plan nor the
        AP write path constrains it; it fails outright when no nearby
        seed materialises.  Only registry-composed strategies emit
        :attr:`Action.D2D`, so the legacy strategies' pinned RNG
        consumption sequences never reach this branch.
        """
        from repro.backends.builtin import (
            D2D_LAN_CAP,
            D2D_NEIGHBOR_SHARE,
            D2D_RATE_EXPONENT,
            D2D_RATE_MEDIAN,
        )
        mean_nearby = self.source_model.swarm_model.mean_seeds(
            record.weekly_demand) * D2D_NEIGHBOR_SHARE
        nearby = int(rng.poisson(mean_nearby))
        if nearby < 1:
            return RouteOutcome(request=request, file=record,
                                decision=decision, success=False,
                                wan_speed=0.0, user_speed=0.0,
                                failure_cause="no_nearby_peer")
        rate = min(D2D_RATE_MEDIAN * nearby ** D2D_RATE_EXPONENT *
                   float(np.exp(rng.normal(0.0, 0.35))), D2D_LAN_CAP)
        return RouteOutcome(request=request, file=record,
                            decision=decision, success=True,
                            wan_speed=rate, user_speed=rate)

    def _run_neighbor_ap(self, request: RequestRecord,
                         record: CatalogFile, ap: SmartAP,
                         decision: Decision,
                         rng: np.random.Generator) -> RouteOutcome:
        """Fetch from a neighbouring AP's cooperative cache: one switch
        hop, always obtainable (the policy verified residency)."""
        from repro.backends.builtin import NEIGHBOR_AP_RATE
        rate = NEIGHBOR_AP_RATE * float(np.exp(rng.normal(0.0, 0.25)))
        user_speed = ap.lan_fetch_rate(rng)
        return RouteOutcome(request=request, file=record,
                            decision=decision, success=True,
                            wan_speed=rate, user_speed=user_speed)

    def _run_direct(self, request: RequestRecord, record: CatalogFile,
                    context: UserContext, ap: SmartAP, decision: Decision,
                    rng: np.random.Generator,
                    user_bw: float) -> RouteOutcome:
        highly_popular = record.popularity_class is \
            PopularityClass.HIGHLY_POPULAR
        seeding_bytes = 0.0
        via_ap = decision.action is Action.SMART_AP

        if highly_popular and record.protocol.is_p2p:
            # A thriving, cloud-seeded swarm: always obtainable, fast.
            swarm = Swarm(record.file_id, record.weekly_demand,
                          model=self.source_model.swarm_model)
            organic = swarm.sample_rate(
                max(1, swarm.sample_seed_count(rng)), rng)
            # The cloud seeds the swarm at a managed rate, so redirected
            # users see a dependable floor on top of organic peers; the
            # low sigma reflects that the seeder is provisioned, which is
            # what keeps ODR's wrong-decision rate under 1%.
            seeded_boost = kbps(450.0) * float(
                np.exp(rng.normal(0.0, 0.55)))
            rate = organic + seeded_boost
            multiplier = swarm.bandwidth_multiplier(seeded_boost)
            seeding_bytes = record.size / max(multiplier, 1.0)
            caps = [user_bw]
            if via_ap:
                caps.append(ap.write_path.max_throughput)
            speed = min(rate, *caps)
            user_speed = ap.lan_fetch_rate(rng) if via_ap else speed
            return RouteOutcome(
                request=request, file=record, decision=decision,
                success=True, wan_speed=speed, user_speed=user_speed,
                cloud_seeding_bytes=seeding_bytes,
                write_path_limited=via_ap and
                self._writepath_limited(ap, user_bw))

        # Ordinary (organic) direct download -- what the smart-AP-only
        # baseline does for everything: a home-vantage session.
        if via_ap:
            outcome, _iowait = ap.pre_download(
                record, rng, access_bandwidth=user_bw,
                uplink_bandwidth=self.uplink_bandwidth)
            limited = self._writepath_limited(ap, user_bw)
        else:
            from repro.transfer.session import DownloadSession, \
                SessionLimits
            from repro.transfer.source import HOME_VANTAGE
            source = self.source_model.build(
                record.file_id, record.protocol, record.weekly_demand)
            session = DownloadSession(
                source, record.size, HOME_VANTAGE,
                limits=SessionLimits(rate_caps=(user_bw,
                                                self.uplink_bandwidth)),
                metrics=self.metrics)
            outcome = session.simulate(rng)
            limited = False
        speed = outcome.average_rate if outcome.success else 0.0
        # An AP-staged download is consumed over the LAN once complete,
        # so the user's streaming experience is never WAN-bound.
        user_speed = ap.lan_fetch_rate(rng) \
            if via_ap and outcome.success else speed
        return RouteOutcome(
            request=request, file=record, decision=decision,
            success=outcome.success, wan_speed=speed,
            user_speed=user_speed,
            write_path_limited=limited and outcome.success,
            failure_cause=outcome.failure_cause)

    @staticmethod
    def _writepath_limited(ap: SmartAP, user_bw: float) -> bool:
        """Is the storage write path the binding constraint (B4)?"""
        return ap.write_path.max_throughput < user_bw
