"""Table-driven fast path for the cloud task loop.

The generator coroutines in :mod:`repro.cloud.system` spend most of a
fault-free replay inside engine dispatch: every task is a
:class:`~repro.sim.engine.Process` whose ``send`` re-enters
``_task``/``_predownload_phase``/``_fetch_phase`` at each hop.  This
module replaces them with an explicit state machine: per-task state
lives in preallocated parallel tables (phase codes, phase start times,
wait deadlines, reserved flow rates) plus parallel object slots, and
every hop is a plain scheduled callback that indexes into those tables
-- no generators, no Process objects, no ``yield`` plumbing.  Constant
columns (popularity flags, the arrival order) are batch-computed with
numpy up front; the mutable per-event scalars live in plain Python
lists, whose single-element reads/writes are several times cheaper
than numpy fancy indexing.

Bit-identity with the generator path is load-bearing (the golden
digests pin it) and rests on two invariants:

* **Hop structure.**  Every ``yield`` in the generator path costs
  exactly one scheduled callback at a fixed ``seq`` position; the
  machine schedules exactly one callback in the same position.  The
  per-request ``call_at`` storm is replaced by a single arrival cursor
  walking a stable argsort of the request times -- order-preserving
  because the old start events did no observable work before deferring
  to an immediate ``call_in(0, ...)``.  A pre-download session costs
  three hops (process start, duration timeout, waiter resume) in both
  worlds.
* **Draw order.**  All randomness comes from the one shared per-run
  ``rng`` stream, so event order *is* draw order.  The machine performs
  each draw inside the same hop, in the same argument order, as the
  generator it replaces.

The generator path stays the only implementation under fault injection
(``faults is not None``) so :mod:`repro.faults` interrupt semantics are
untouched; :class:`~repro.cloud.system.XuanfengCloud` picks the path in
``run()``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

import numpy as np

import repro.cloud.system as cloud_system
from repro.cloud.fetch import FetchSpeedModel
from repro.obs.registry import NOOP
from repro.paper import FETCH_SPEED_MEAN
from repro.sim.engine import SimulationError, Simulator
from repro.workload.generator import Workload
from repro.workload.popularity import HIGHLY_POPULAR_ABOVE
from repro.workload.records import FetchRecord, PreDownloadRecord

if TYPE_CHECKING:
    from repro.cloud.system import XuanfengCloud

# Phase codes stored in the machine's int8 phase table.
PHASE_NEW = 0          # not started yet
PHASE_COALESCE = 1     # waiting on another task's in-flight pre-download
PHASE_SLOT_WAIT = 2    # waiting FIFO for a pre-downloader VM slot
PHASE_SESSION = 3      # own pre-download session in flight
PHASE_LAG = 4          # user think-time before the fetch
PHASE_FETCH = 5        # fetch flow in progress
PHASE_DONE = 6         # terminal


class _FastTask:
    """Event-waiter facade for one machine task.

    Quacks like a :class:`~repro.sim.engine.Process` just enough to sit
    in ``Event._waiters``: the engine resumes waiters via
    ``call_in(0, waiter._step, value, None, waiter._resume_token)``, so
    all the machine needs is a token slot and a ``_step`` that routes
    the wake-up to the right phase handler.
    """

    __slots__ = ("machine", "idx", "_resume_token")

    def __init__(self, machine: "FastTaskMachine", idx: int):
        self.machine = machine
        self.idx = idx
        self._resume_token = 0

    def _step(self, value: Any = None, error: Optional[BaseException] = None,
              token: Optional[int] = None) -> None:
        if token is not None and token != self._resume_token:
            return   # stale wake-up from a wait this task already left
        self._resume_token += 1
        if error is not None:
            raise error
        machine = self.machine
        phase = machine.phase[self.idx]
        if phase == PHASE_COALESCE:
            machine._coalesce_done(self.idx, value)
        elif phase == PHASE_SLOT_WAIT:
            machine._slot_granted(self.idx, value)
        else:
            raise SimulationError(
                f"fast task {self.idx} resumed in phase {phase}")


class FastTaskMachine:
    """Runs every task of one cloud replay without generator coroutines."""

    def __init__(self, cloud: "XuanfengCloud", sim: Simulator,
                 workload: Workload, users: dict,
                 rng: np.random.Generator, tasks: list, flows: list):
        self.cloud = cloud
        self.sim = sim
        self.rng = rng
        self.tasks = tasks
        self.flows = flows

        requests = workload.requests
        catalog = workload.catalog
        n = len(requests)
        self.n = n
        self.requests = requests
        self.records = [catalog[request.file_id] for request in requests]
        self.users = [users[request.user_id] for request in requests]

        # Columnar per-task state: one row per task, written/read by the
        # phase callbacks.  Constant columns are batch-computed up front
        # with numpy; the mutable scalars are plain lists (single-element
        # list indexing beats numpy scalar indexing by ~5x).
        self.phase = [PHASE_NEW] * n
        self.pre_start = [0.0] * n
        self.fetch_start = [0.0] * n
        self.deadline = [0.0] * n
        self.rate = [0.0] * n
        demands = np.fromiter(
            (record.weekly_demand for record in self.records),
            dtype=np.float64, count=n)
        self.highly_popular = (demands > HIGHLY_POPULAR_ABOVE).tolist()

        # Object slots, live only while the owning phase is.
        self.waiters: list[Optional[_FastTask]] = [None] * n
        self.events: list = [None] * n
        self.sessions: list = [None] * n
        self.outcomes: list = [None] * n
        self.slots: list = [None] * n
        self.results: list = [None] * n
        self.paths: list = [None] * n
        self.reservations: list = [None] * n

        # Hot-loop bindings: every callback below runs tens of
        # thousands of times per replay, so attribute chains that are
        # constant for the run (bound methods, config scalars) are
        # resolved once here.
        config = cloud.config
        self._call_in = sim.call_in
        self._sim_event = sim.event
        self._rng_random = rng.random
        self._rng_normal = rng.normal
        self._collaborative = config.collaborative_cache
        self._lag_median = config.fetch_lag_median
        self._lag_sigma = config.fetch_lag_sigma
        self._max_fetch_rate = config.max_fetch_rate
        self._select_and_reserve = cloud.uploads.select_and_reserve
        self._record_request = cloud.database.record_request
        # The LRU's own ``get`` (recency refresh + hit/miss counters);
        # binding it directly skips the storage pool's one-line
        # ``lookup`` wrapper frame on every request.  Returns the
        # stored value (the file size) or ``None``.
        self._cache_get = cloud.pool._cache.get
        self._in_flight = cloud._in_flight
        self._session_for = cloud.fleet.session_for
        # Per-request counter bumps are real work only when a live
        # metrics registry is attached; under the NOOP registry the
        # calls are skipped outright instead of dispatched to no-ops.
        self._metered = cloud.metrics is not NOOP
        self._tasks_inc = cloud._m_tasks.inc
        self._hits_inc = cloud._m_cache_hits.inc
        self._misses_inc = cloud._m_cache_misses.inc
        self._tasks_append = tasks.append
        self._flows_append = flows.append
        self._FetchFlow = cloud_system.FetchFlow
        self._TaskResult = cloud_system.TaskResult

        # Specialised speed sampler.  With the stock model (always,
        # outside subclassing tests) the whole per-fetch draw chain --
        # server-rate lognormal, path-cap lognormal, degradation coin --
        # is inlined into one closure over the model's constants: the
        # same draws from the same stream in the same order as
        # ``FetchSpeedModel.sample_speed`` + ``PathQuality.sample_cap``,
        # without their method dispatch and self-attribute traffic.
        model = cloud.fetch_model
        if type(model) is FetchSpeedModel:
            np_exp = np.exp
            rng_normal = rng.normal
            rng_random = rng.random
            rate_median = model.server_rate_median
            rate_sigma = model.server_rate_sigma
            rate_cap = model.server_rate_cap
            degrade_p = model.unknown_degradation_probability
            degrade_low = model.unknown_degradation_low
            degrade_span = model.unknown_degradation_high - degrade_low

            def _speed(bandwidth: float, quality) -> float:
                speed = min(
                    rate_median * float(np_exp(rng_normal(0.0, rate_sigma))),
                    rate_cap,
                    float(quality.cap_median *
                          np_exp(rng_normal(0.0, quality.cap_sigma))),
                    bandwidth)
                if rng_random() < degrade_p:
                    speed *= degrade_low + degrade_span * rng_random()
                return speed

            self._speed_for = _speed
        else:
            sample_speed = model.sample_speed
            self._speed_for = (lambda bandwidth, quality:
                               sample_speed(bandwidth, quality, rng))

        # Arrival cursor: a stable sort keeps equal-time requests in
        # submission order, matching the seq order of the per-request
        # ``call_at`` loop it replaces.
        times = np.fromiter(
            (request.request_time for request in requests),
            dtype=np.float64, count=n)
        order = np.argsort(times, kind="stable")
        self._order = order.tolist()
        self._times = times[order].tolist()
        self._cursor = 0

    # -- arrival cursor ----------------------------------------------------------

    def start(self) -> None:
        if self.n:
            self.sim.call_at(self._times[0], self._arrive)

    def _arrive(self) -> None:
        sim = self.sim
        now = sim._now
        times = self._times
        order = self._order
        call_in = sim.call_in
        begin = self._begin
        k = self._cursor
        n = self.n
        while k < n and times[k] == now:
            call_in(0.0, begin, order[k])
            k += 1
        self._cursor = k
        if k < n:
            sim.call_at(times[k], self._arrive)

    # -- pre-download ------------------------------------------------------------

    def _begin(self, idx: int) -> None:
        cloud = self.cloud
        sim = self.sim
        request = self.requests[idx]
        record = self.records[idx]
        file_id = record.file_id
        start = sim._now
        metered = self._metered
        if metered:
            self._tasks_inc()
        self._record_request(file_id, record.size, start)
        self.pre_start[idx] = start
        collaborative = self._collaborative
        if collaborative and self._cache_get(file_id) is not None:
            if metered:
                self._hits_inc()
            self._after_predownload(idx, PreDownloadRecord(
                request.task_id, file_id, start, start,
                record.size, 0.0, True, 0.0, 0.0, True))
            return
        if metered:
            self._misses_inc()

        in_flight = self._in_flight.get(file_id) \
            if collaborative else None
        if in_flight is not None:
            self.phase[idx] = PHASE_COALESCE
            in_flight._add_waiter(self._waiter(idx))
            return

        event = self._sim_event()
        self._in_flight[file_id] = event
        self.events[idx] = event
        self.sessions[idx] = self._session_for(record)
        vm_slots = cloud._vm_slots
        if vm_slots is not None:
            acquire = vm_slots.acquire(sim)
            cloud._m_queue_depth.set(vm_slots.queue_length)
            self.phase[idx] = PHASE_SLOT_WAIT
            acquire._add_waiter(self._waiter(idx))
            return
        self.phase[idx] = PHASE_SESSION
        self._call_in(0.0, self._run_session, idx)

    def _waiter(self, idx: int) -> _FastTask:
        waiter = self.waiters[idx]
        if waiter is None:
            waiter = self.waiters[idx] = _FastTask(self, idx)
        return waiter

    def _slot_granted(self, idx: int, slot: Any) -> None:
        cloud = self.cloud
        cloud._m_queue_depth.set(cloud._vm_slots.queue_length)
        self.slots[idx] = slot
        self.phase[idx] = PHASE_SESSION
        self._call_in(0.0, self._run_session, idx)

    def _run_session(self, idx: int) -> None:
        # Mirrors the session Process's first step: all of the
        # session's draws happen here, then one timeout spans the
        # transfer.
        outcome = self.sessions[idx].simulate(self.rng)
        self.outcomes[idx] = outcome
        self.deadline[idx] = self.sim._now + outcome.duration
        self._call_in(outcome.duration, self._session_timeout, idx)

    def _session_timeout(self, idx: int) -> None:
        # Mirrors the generator world's third session hop: the session
        # process finishes and schedules the waiting task's resume.
        self._call_in(0.0, self._session_done, idx)

    def _session_done(self, idx: int) -> None:
        cloud = self.cloud
        sim = self.sim
        request = self.requests[idx]
        record = self.records[idx]
        outcome = self.outcomes[idx]
        slot = self.slots[idx]
        if slot is not None:
            cloud._vm_slots.release(slot, sim)
            self.slots[idx] = None
        self._in_flight.pop(record.file_id, None)
        cloud.fleet.account(outcome)
        cloud.database.record_attempt(record.file_id, outcome.success)
        if outcome.success and cloud.config.collaborative_cache:
            cloud.pool.insert(record)
            cloud.database.set_cached(record.file_id, True)
        self.events[idx].trigger(outcome)
        self.events[idx] = None
        self.sessions[idx] = None
        self.outcomes[idx] = None
        self._after_predownload(idx, PreDownloadRecord(
            request.task_id, record.file_id,
            self.pre_start[idx], sim._now,
            outcome.bytes_obtained, outcome.traffic, False,
            outcome.average_rate, outcome.peak_rate, outcome.success,
            outcome.failure_cause))

    def _coalesce_done(self, idx: int, outcome: Any) -> None:
        request = self.requests[idx]
        record = self.records[idx]
        start = self.pre_start[idx]
        finish = self.sim._now
        if outcome.success:
            self._cache_get(record.file_id)   # count the warm hit
            pre_record = PreDownloadRecord(
                request.task_id, record.file_id, start, finish,
                record.size, 0.0, True, 0.0, 0.0, True)
        else:
            pre_record = PreDownloadRecord(
                request.task_id, record.file_id, start, finish,
                outcome.bytes_obtained, 0.0, False,
                0.0, 0.0, False, outcome.failure_cause)
        self._after_predownload(idx, pre_record)

    def _after_predownload(self, idx: int,
                           pre_record: PreDownloadRecord) -> None:
        result = self._TaskResult(
            self.requests[idx], self.records[idx], pre_record)
        self._tasks_append(result)
        if not pre_record.success:
            self.phase[idx] = PHASE_DONE
            return
        self.results[idx] = result
        lag = self._lag_median * float(
            np.exp(self._rng_normal(0.0, self._lag_sigma)))
        self.phase[idx] = PHASE_LAG
        self._call_in(lag, self._enter_fetch, idx)

    # -- fetch -------------------------------------------------------------------

    def _enter_fetch(self, idx: int) -> None:
        request = self.requests[idx]
        record = self.records[idx]
        user = self.users[idx]
        start = self.sim._now
        self.fetch_start[idx] = start

        speed_for = self._speed_for
        bandwidth = user.access_bandwidth
        admitted = self._select_and_reserve(
            user.isp, start,
            lambda quality: speed_for(bandwidth, quality))
        if admitted is None:
            result = self.results[idx]
            estimated_rate = FETCH_SPEED_MEAN
            self._flows_append(self._FetchFlow(
                start, start + record.size / estimated_rate,
                estimated_rate, self.highly_popular[idx], True))
            result.fetch_record = FetchRecord(
                request.task_id, user.user_id, user.ip_address,
                user.reported_bandwidth, start, start,
                0.0, 0.0, 0.0, 0.0, True)
            self.results[idx] = None
            self.phase[idx] = PHASE_DONE
            return

        path, reservation, rate = admitted
        self.paths[idx] = path
        self.reservations[idx] = reservation
        self.rate[idx] = rate
        duration = record.size / rate if rate > 0 else 0.0
        self.deadline[idx] = start + duration
        self.phase[idx] = PHASE_FETCH
        self._call_in(duration, self._finish_fetch, idx)

    def _finish_fetch(self, idx: int) -> None:
        now = self.sim._now
        request = self.requests[idx]
        record = self.records[idx]
        user = self.users[idx]
        random = self._rng_random
        rate = self.rate[idx]
        start = self.fetch_start[idx]
        self.reservations[idx].release(now)
        self.reservations[idx] = None
        self._flows_append(self._FetchFlow(
            start, now, rate, self.highly_popular[idx]))
        result = self.results[idx]
        result.fetch_path = self.paths[idx]
        # ``lo + (hi - lo) * rng.random()`` is the exact computation
        # (and stream consumption) of ``rng.uniform(lo, hi)`` without
        # its per-call argument broadcasting -- bit-identical, ~2x
        # cheaper per draw.
        size = record.size
        result.fetch_record = FetchRecord(
            request.task_id, user.user_id, user.ip_address,
            user.reported_bandwidth, start, now, size,
            size * (1.07 + (1.10 - 1.07) * random()),
            rate,
            min(rate * (1.0 + (1.4 - 1.0) * random()),
                self._max_fetch_rate))
        self.paths[idx] = None
        self.results[idx] = None
        self.phase[idx] = PHASE_DONE
