"""The end-to-end cloud system: request -> pre-download -> fetch.

:class:`XuanfengCloud` replays a synthetic week through the full
machinery on the discrete-event engine: cache lookups with in-flight
coalescing (concurrent requests for one file share a single
pre-download), VM pre-download sessions, user fetch admission over the
per-ISP uploading servers, and the bookkeeping behind every cloud-side
figure of the paper (8, 9, 10, 11 and the section 4 text statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Optional

import numpy as np

from repro.analysis.cdf import CDF, empirical_cdf
from repro.cloud.config import CloudConfig
from repro.cloud.database import ContentDatabase
from repro.cloud.fetch import FetchSpeedModel
from repro.cloud.predownload import PreDownloaderFleet
from repro.cloud.storagepool import CloudStoragePool
from repro.cloud.upload import PathChoice, UploadingServers
from repro.faults.injector import FaultInjector
from repro.faults.plan import CLOUD_KINDS
from repro.faults.policies import ResiliencePolicies, TransferCheckpoint
from repro.netsim.topology import ChinaTopology
from repro.obs.registry import AnyRegistry, NOOP
from repro.paper import FETCH_SPEED_MEAN, IMPEDED_FETCH_THRESHOLD
from repro.sim.clock import WEEK
from repro.sim.engine import Event, Interrupt, Process, Simulator, Timeout
from repro.sim.queueing import SlotResource
from repro.sim.randomness import RngFactory
from repro.transfer.session import DownloadOutcome
from repro.transfer.source import SourceModel
from repro.workload.generator import Workload
from repro.workload.popularity import PopularityClass
from repro.workload.records import (
    CatalogFile,
    FetchRecord,
    PreDownloadRecord,
    RequestRecord,
    User,
)


class FetchFlow(NamedTuple):
    """One fetch flow interval, for bandwidth-burden binning (Fig. 11).

    A named tuple: one is appended per fetch and never mutated, so it
    skips per-instance ``__dict__`` allocation and dataclass ``__init__``
    overhead on the replay hot path.
    """

    start: float
    end: float
    rate: float
    highly_popular: bool
    rejected: bool = False


@dataclass(slots=True)
class TaskResult:
    """Everything one offline-downloading task produced."""

    request: RequestRecord
    file: CatalogFile
    pre_record: PreDownloadRecord
    fetch_record: Optional[FetchRecord] = None
    fetch_path: Optional[PathChoice] = None

    @property
    def succeeded(self) -> bool:
        return self.pre_record.success and self.fetch_record is not None \
            and not self.fetch_record.rejected

    @property
    def end_to_end_delay(self) -> Optional[float]:
        """Pre-download delay plus fetch delay (paper section 4.3)."""
        if not self.succeeded:
            return None
        return self.pre_record.delay + self.fetch_record.delay

    @property
    def end_to_end_speed(self) -> Optional[float]:
        delay = self.end_to_end_delay
        if delay is None:
            return None
        if delay <= 0:
            return self.fetch_record.average_speed
        return self.file.size / delay


@dataclass
class CloudRunResult:
    """The outcome of replaying one workload through the cloud."""

    config: CloudConfig
    tasks: list[TaskResult]
    flows: list[FetchFlow]
    pool: CloudStoragePool
    uploads: UploadingServers
    fleet: PreDownloaderFleet
    database: ContentDatabase
    horizon: float

    # -- trace views -----------------------------------------------------------

    @property
    def pre_records(self) -> list[PreDownloadRecord]:
        return [task.pre_record for task in self.tasks]

    @property
    def fetch_records(self) -> list[FetchRecord]:
        return [task.fetch_record for task in self.tasks
                if task.fetch_record is not None]

    # -- figure 8 / 9 distributions ---------------------------------------------

    def attempt_speed_cdf(self) -> CDF:
        """Pre-download speeds excluding cache hits (failures included)."""
        speeds = [record.average_speed for record in self.pre_records
                  if not record.cache_hit]
        return empirical_cdf(speeds)

    def attempt_delay_cdf(self) -> CDF:
        """Pre-download delays excluding cache hits."""
        delays = [record.delay for record in self.pre_records
                  if not record.cache_hit]
        return empirical_cdf(delays)

    def fetch_speed_cdf(self) -> CDF:
        """Fetch speeds, rejected requests included at 0 B/s."""
        return empirical_cdf(
            [record.average_speed for record in self.fetch_records])

    def fetch_delay_cdf(self) -> CDF:
        return empirical_cdf(
            [record.delay for record in self.fetch_records
             if not record.rejected])

    def e2e_speed_cdf(self) -> CDF:
        return empirical_cdf([task.end_to_end_speed for task in self.tasks
                              if task.end_to_end_speed is not None])

    def e2e_delay_cdf(self) -> CDF:
        return empirical_cdf([task.end_to_end_delay for task in self.tasks
                              if task.end_to_end_delay is not None])

    # -- headline statistics ------------------------------------------------------

    @property
    def cache_hit_ratio(self) -> float:
        return self.pool.hit_ratio

    @property
    def request_failure_ratio(self) -> float:
        failures = sum(1 for task in self.tasks
                       if not task.pre_record.success)
        return failures / len(self.tasks) if self.tasks else 0.0

    def failure_ratio_by_class(self) -> dict[PopularityClass, float]:
        totals: dict[PopularityClass, int] = {}
        failures: dict[PopularityClass, int] = {}
        for task in self.tasks:
            klass = task.file.popularity_class
            totals[klass] = totals.get(klass, 0) + 1
            if not task.pre_record.success:
                failures[klass] = failures.get(klass, 0) + 1
        return {klass: failures.get(klass, 0) / totals[klass]
                for klass in totals}

    def failure_ratio_by_demand(self) -> list[tuple[int, float]]:
        """(weekly demand, request-level failure ratio) pairs (Fig. 10)."""
        totals: dict[int, int] = {}
        failures: dict[int, int] = {}
        for task in self.tasks:
            demand = task.file.weekly_demand
            totals[demand] = totals.get(demand, 0) + 1
            if not task.pre_record.success:
                failures[demand] = failures.get(demand, 0) + 1
        return sorted((demand, failures.get(demand, 0) / count)
                      for demand, count in totals.items())

    @property
    def impeded_fetch_share(self) -> float:
        """Share of fetches below the 1 Mbps HD threshold (Bottleneck 1)."""
        records = self.fetch_records
        if not records:
            return 0.0
        impeded = sum(1 for record in records
                      if record.average_speed < IMPEDED_FETCH_THRESHOLD)
        return impeded / len(records)

    def impeded_breakdown(self) -> dict[str, float]:
        """Decompose impeded fetches by cause (paper section 4.2)."""
        records = [(task.fetch_record, task.fetch_path, task.request)
                   for task in self.tasks if task.fetch_record is not None]
        if not records:
            return {}
        counts = {"isp_barrier": 0, "low_access_bandwidth": 0,
                  "rejected": 0, "unknown": 0}
        for record, path, request in records:
            if record.average_speed >= IMPEDED_FETCH_THRESHOLD:
                continue
            # Unreported access bandwidth is approximated by the peak
            # fetch speed, exactly as the paper's footnote 2 does.
            approx_bandwidth = record.access_bandwidth \
                if record.access_bandwidth is not None \
                else record.peak_speed
            if record.rejected:
                counts["rejected"] += 1
            elif path is not None and not path.privileged:
                counts["isp_barrier"] += 1
            elif approx_bandwidth < IMPEDED_FETCH_THRESHOLD:
                counts["low_access_bandwidth"] += 1
            else:
                counts["unknown"] += 1
        total = len(records)
        return {cause: count / total for cause, count in counts.items()}

    @property
    def rejection_ratio(self) -> float:
        return self.uploads.rejection_ratio

    def bandwidth_series(self, bin_width: float = 300.0,
                         include_rejected: bool = True,
                         only_highly_popular: bool = False) -> np.ndarray:
        """Upload-bandwidth burden per time bin, in B/s (Figure 11)."""
        from repro.analysis.timeseries import bin_rate_series
        flows = [(flow.start, flow.end, flow.rate) for flow in self.flows
                 if (include_rejected or not flow.rejected)
                 and (not only_highly_popular or flow.highly_popular)]
        return bin_rate_series(flows, bin_width, self.horizon)

    def user_traffic_overhead(self) -> float:
        """User-side traffic relative to payload (paper: 1.07-1.10)."""
        traffic = sum(record.traffic_bytes for record in self.fetch_records
                      if not record.rejected)
        payload = sum(record.acquired_bytes
                      for record in self.fetch_records
                      if not record.rejected)
        return traffic / payload if payload > 0 else 0.0


class XuanfengCloud:
    """The simulated cloud service."""

    def __init__(self, config: CloudConfig = CloudConfig(),
                 source_model: Optional[SourceModel] = None,
                 fetch_model: Optional[FetchSpeedModel] = None,
                 topology: Optional[ChinaTopology] = None,
                 seed: int = 41,
                 metrics: AnyRegistry = NOOP,
                 faults: Optional[FaultInjector] = None,
                 policies: Optional[ResiliencePolicies] = None,
                 fast_tasks: bool = True):
        self.config = config
        # Replay fault-free tasks on the table-driven state machine
        # (repro.cloud.fastpath) instead of per-task generator
        # coroutines; bit-identical, ~2x faster.  The generator path
        # remains the only implementation under fault injection.
        self._fast_tasks = fast_tasks
        # Fault injection + resilience are strictly opt-in: with
        # ``faults=None`` every code path and RNG draw below is
        # identical to the fault-free build (golden digests depend on
        # this).  ``policies`` only matters when faults are injected.
        self.faults = faults
        self.policies = policies
        self.topology = topology or ChinaTopology()
        self.fetch_model = fetch_model or FetchSpeedModel()
        self.metrics = metrics
        self.pool = CloudStoragePool(config.scaled_storage_capacity)
        self.uploads = UploadingServers(config, self.topology,
                                        metrics=metrics)
        self.fleet = PreDownloaderFleet(config, source_model,
                                        metrics=metrics)
        self.database = ContentDatabase()
        self._rng_factory = RngFactory(seed)
        self._in_flight: dict[str, Event] = {}
        self._preseeded = False
        self._runs = 0
        self._vm_slots: Optional[SlotResource] = None
        if config.predownloader_count is not None:
            self._vm_slots = SlotResource(config.predownloader_count,
                                          name="pre-downloaders")
        self._m_cache_hits = metrics.counter("repro_cloud_cache_hits_total")
        self._m_cache_misses = metrics.counter(
            "repro_cloud_cache_misses_total")
        self._m_dedup_saved = metrics.gauge(
            "repro_cloud_dedup_bytes_saved")
        self._m_queue_depth = metrics.gauge(
            "repro_cloud_predownload_queue_depth")
        self._m_tasks = metrics.counter("repro_cloud_tasks_total")

    # -- public entry point -------------------------------------------------------

    def run(self, workload: Workload) -> CloudRunResult:
        """Replay a whole workload; returns the collected run result."""
        sim = Simulator(metrics=self.metrics)
        rng = self._rng_factory.stream(f"cloud-run-{self._runs}")
        self._runs += 1
        if self.faults is not None:
            self.faults.bind(sim, kinds=CLOUD_KINDS)
        if self.config.collaborative_cache and not self._preseeded:
            # The pool predates the first measured week; on subsequent
            # runs of the same instance (multi-week studies) the pool's
            # own accumulated contents play that role.
            self._preseeded = True
            self.pool.preseed(workload.catalog,
                              self.config.precached_probability,
                              self._rng_factory.stream("preseed"))
            for record in workload.catalog:
                if record.file_id in self.pool:
                    self.database.set_cached(record.file_id, True)

        users = workload.user_by_id()
        tasks: list[TaskResult] = []
        flows: list[FetchFlow] = []
        if self.faults is None and self._fast_tasks:
            from repro.cloud.fastpath import FastTaskMachine
            FastTaskMachine(self, sim, workload, users, rng,
                            tasks, flows).start()
        else:
            for request in workload.requests:
                sim.call_at(request.request_time, self._start_task,
                            sim, request,
                            workload.catalog[request.file_id],
                            users[request.user_id], rng, tasks, flows)
        sim.run()
        self._m_dedup_saved.set(self.pool.dedup_bytes_saved)
        # Freeze the clock at the end of the week so observations made
        # after the run (and enclosing spans) keep a meaningful
        # sim-time stamp instead of reading a dead simulator.
        final_time = sim.now
        self.metrics.set_clock(lambda: final_time)
        return CloudRunResult(
            config=self.config, tasks=tasks, flows=flows, pool=self.pool,
            uploads=self.uploads, fleet=self.fleet,
            database=self.database, horizon=workload.horizon)

    # -- task process ----------------------------------------------------------------

    def _start_task(self, sim: Simulator, request: RequestRecord,
                    record: CatalogFile, user: User,
                    rng: np.random.Generator, tasks: list[TaskResult],
                    flows: list[FetchFlow]) -> None:
        # The task generator needs its own Process handle to register
        # for fault interrupts; sim.process defers the first step, so
        # filling the box after the call is race-free.
        box: list[Process] = []
        box.append(sim.process(
            self._task(sim, request, record, user, rng, tasks, flows,
                       box),
            name=f"task-{request.task_id}"))

    def _task(self, sim: Simulator, request: RequestRecord,
              record: CatalogFile, user: User, rng: np.random.Generator,
              tasks: list[TaskResult], flows: list[FetchFlow],
              box: list[Process]):
        self._m_tasks.inc()
        self.database.record_request(record.file_id, record.size, sim.now)
        if self.faults is None:
            pre_record = yield from self._predownload_phase(sim, request,
                                                            record, rng)
        else:
            pre_record = yield from self._resilient_predownload(
                sim, request, record, rng, box[0])
        result = TaskResult(request=request, file=record,
                            pre_record=pre_record)
        tasks.append(result)
        if not pre_record.success:
            return result

        # The user comes back to fetch after a think-time lag.
        lag = self.config.fetch_lag_median * float(
            np.exp(rng.normal(0.0, self.config.fetch_lag_sigma)))
        yield Timeout(lag)
        if self.faults is None:
            yield from self._fetch_phase(sim, request, record, user, rng,
                                         result, flows)
        else:
            yield from self._resilient_fetch(sim, request, record, user,
                                             rng, result, flows, box[0])
        return result

    # -- pre-download ------------------------------------------------------------------

    def _predownload_phase(self, sim: Simulator, request: RequestRecord,
                           record: CatalogFile, rng: np.random.Generator):
        start = sim.now
        if self.config.collaborative_cache and \
                self.pool.lookup(record.file_id):
            self._m_cache_hits.inc()
            return self._hit_record(request, record, start, start)
        self._m_cache_misses.inc()

        in_flight = self._in_flight.get(record.file_id) \
            if self.config.collaborative_cache else None
        if in_flight is not None:
            # Coalesce with the running pre-download of the same file.
            outcome = yield in_flight
            finish = sim.now
            if outcome.success:
                self.pool.lookup(record.file_id)   # count the warm hit
                return self._hit_record(request, record, start, finish)
            return PreDownloadRecord(
                task_id=request.task_id, file_id=record.file_id,
                start_time=start, finish_time=finish,
                acquired_bytes=outcome.bytes_obtained,
                traffic_bytes=0.0, cache_hit=False,
                average_speed=0.0, peak_speed=0.0, success=False,
                failure_cause=outcome.failure_cause)

        event = sim.event(name=f"pre-{record.file_id}")
        self._in_flight[record.file_id] = event
        session = self.fleet.session_for(record)
        try:
            slot = None
            if self._vm_slots is not None:
                # A finite fleet: wait FIFO for a free pre-downloader VM.
                acquire = self._vm_slots.acquire(sim)
                self._m_queue_depth.set(self._vm_slots.queue_length)
                slot = yield acquire
                self._m_queue_depth.set(self._vm_slots.queue_length)
            try:
                outcome = yield sim.process(
                    session.run(rng), name=f"pre-{request.task_id}")
            finally:
                if slot is not None:
                    self._vm_slots.release(slot, sim)
        finally:
            self._in_flight.pop(record.file_id, None)
        self.fleet.account(outcome)
        self.database.record_attempt(record.file_id, outcome.success)
        if outcome.success and self.config.collaborative_cache:
            self.pool.insert(record)
            self.database.set_cached(record.file_id, True)
        event.trigger(outcome)
        return PreDownloadRecord(
            task_id=request.task_id, file_id=record.file_id,
            start_time=start, finish_time=sim.now,
            acquired_bytes=outcome.bytes_obtained,
            traffic_bytes=outcome.traffic, cache_hit=False,
            average_speed=outcome.average_rate,
            peak_speed=outcome.peak_rate, success=outcome.success,
            failure_cause=outcome.failure_cause)

    def _resilient_predownload(self, sim: Simulator,
                               request: RequestRecord,
                               record: CatalogFile,
                               rng: np.random.Generator, proc: Process):
        """Pre-download under fault injection, with optional recovery.

        The campaign runs session attempts until one succeeds, the retry
        budget is spent, or (policies off) the first attempt resolves.
        Faults land as engine interrupts while the attempt is in flight
        (``vm_stall`` / ``seed_death``) or shape the attempt at its
        boundary (a stalled VM at attempt start, ``pool_pressure`` at
        insert time).  With checkpoint-resume on, a restarted attempt
        fetches only the uncommitted remainder.
        """
        inj = self.faults
        assert inj is not None
        start = sim.now
        if self.config.collaborative_cache and \
                self.pool.lookup(record.file_id):
            self._m_cache_hits.inc()
            return self._hit_record(request, record, start, start)
        self._m_cache_misses.inc()

        in_flight = self._in_flight.get(record.file_id) \
            if self.config.collaborative_cache else None
        if in_flight is not None:
            outcome = yield in_flight
            finish = sim.now
            if outcome.success:
                self.pool.lookup(record.file_id)   # count the warm hit
                return self._hit_record(request, record, start, finish)
            return PreDownloadRecord(
                task_id=request.task_id, file_id=record.file_id,
                start_time=start, finish_time=finish,
                acquired_bytes=outcome.bytes_obtained,
                traffic_bytes=0.0, cache_hit=False,
                average_speed=0.0, peak_speed=0.0, success=False,
                failure_cause=outcome.failure_cause)

        event = sim.event(name=f"pre-{record.file_id}")
        self._in_flight[record.file_id] = event
        policies = self.policies
        retry = policies.retry if policies is not None else None
        jitter = inj.rng(f"cloud-pre:{request.task_id}") \
            if retry is not None else None
        resume = policies is not None and policies.checkpoint_resume
        checkpoint = TransferCheckpoint()
        entity = ("file", record.file_id)
        attempt = 0
        total_traffic = 0.0
        peak = 0.0
        impacted = False
        final: Optional[DownloadOutcome] = None
        try:
            slot = None
            if self._vm_slots is not None:
                acquire = self._vm_slots.acquire(sim)
                self._m_queue_depth.set(self._vm_slots.queue_length)
                slot = yield acquire
                self._m_queue_depth.set(self._vm_slots.queue_length)
            try:
                while final is None:
                    attempt += 1
                    now = sim.now
                    stall = inj.active("vm_stall", record.file_id, now)
                    if stall is not None:
                        impacted = True
                        inj.impact(stall)
                        if retry is not None and retry.allows(attempt + 1):
                            inj.retry("cloud-pre")
                            clear = inj.clear_time(
                                ("vm_stall",), record.file_id, now)
                            yield Timeout(clear - now
                                          + retry.backoff(attempt, jitter))
                            continue
                        # No recovery: the stalled VM burns the session
                        # stagnation timeout and the task dies.
                        yield Timeout(self.config.stagnation_timeout)
                        final = DownloadOutcome(
                            success=False, duration=sim.now - start,
                            bytes_obtained=checkpoint.committed_bytes,
                            file_size=record.size, average_rate=0.0,
                            peak_rate=peak, traffic=total_traffic,
                            failure_cause="fault:vm_stall")
                        break
                    remaining = checkpoint.remaining(record.size) \
                        if resume else record.size
                    dead = record.is_p2p and inj.active(
                        "seed_death", record.file_id, now) is not None
                    session = self.fleet.session_for(
                        record, size=remaining,
                        mid_failure_probability=1.0 if dead else None)
                    outcome = session.simulate(rng)
                    deadline = now + outcome.duration
                    fault = None
                    inj.register(entity, proc)
                    try:
                        while sim.now < deadline:
                            try:
                                yield Timeout(deadline - sim.now)
                            except Interrupt as intr:
                                spec = intr.cause
                                if spec.kind == "seed_death" \
                                        and not record.is_p2p:
                                    continue   # no swarm to kill
                                fault = spec
                                break
                    finally:
                        inj.unregister(entity, proc)
                    if fault is None:
                        attempt_outcome = outcome
                    else:
                        impacted = True
                        inj.impact(fault)
                        elapsed = sim.now - now
                        frac = min(elapsed / outcome.duration, 1.0) \
                            if outcome.duration > 0 else 1.0
                        moved = min(outcome.average_rate * elapsed,
                                    remaining)
                        attempt_outcome = DownloadOutcome(
                            success=False, duration=elapsed,
                            bytes_obtained=moved, file_size=remaining,
                            average_rate=outcome.average_rate,
                            peak_rate=outcome.peak_rate,
                            traffic=outcome.traffic * frac,
                            failure_cause=f"fault:{fault.kind}")
                    self.fleet.account(attempt_outcome)
                    self.database.record_attempt(record.file_id,
                                                 attempt_outcome.success)
                    total_traffic += attempt_outcome.traffic
                    peak = max(peak, attempt_outcome.peak_rate)
                    if resume:
                        checkpoint.commit(attempt_outcome.bytes_obtained)
                    if attempt_outcome.success:
                        duration = sim.now - start
                        final = DownloadOutcome(
                            success=True, duration=duration,
                            bytes_obtained=record.size,
                            file_size=record.size,
                            average_rate=record.size / duration
                            if duration > 0 else outcome.average_rate,
                            peak_rate=peak, traffic=total_traffic)
                        break
                    if retry is not None and retry.allows(attempt + 1):
                        inj.retry("cloud-pre")
                        wait = retry.backoff(attempt, jitter)
                        if fault is not None:
                            clear = inj.clear_time(
                                (fault.kind,), record.file_id, sim.now)
                            wait += max(clear - sim.now, 0.0)
                        yield Timeout(wait)
                        continue
                    final = DownloadOutcome(
                        success=False, duration=sim.now - start,
                        bytes_obtained=checkpoint.committed_bytes
                        if resume else attempt_outcome.bytes_obtained,
                        file_size=record.size,
                        average_rate=attempt_outcome.average_rate,
                        peak_rate=peak, traffic=total_traffic,
                        failure_cause=attempt_outcome.failure_cause)
            finally:
                if slot is not None:
                    self._vm_slots.release(slot, sim)
        finally:
            self._in_flight.pop(record.file_id, None)
        if impacted and final.success:
            inj.recover("cloud-pre", sim.now - start)
        if impacted and not final.success:
            inj.abort("cloud-pre")
        if final.success and self.config.collaborative_cache:
            pressure = inj.active("pool_pressure", "pool", sim.now)
            if pressure is not None:
                # Disk-full pressure: the finished file cannot be
                # admitted to the pool (later requests miss).
                inj.impact(pressure)
            else:
                self.pool.insert(record)
                self.database.set_cached(record.file_id, True)
        event.trigger(final)
        return PreDownloadRecord(
            task_id=request.task_id, file_id=record.file_id,
            start_time=start, finish_time=sim.now,
            acquired_bytes=final.bytes_obtained,
            traffic_bytes=final.traffic, cache_hit=False,
            average_speed=final.average_rate,
            peak_speed=final.peak_rate, success=final.success,
            failure_cause=final.failure_cause)

    @staticmethod
    def _hit_record(request: RequestRecord, record: CatalogFile,
                    start: float, finish: float) -> PreDownloadRecord:
        return PreDownloadRecord(
            task_id=request.task_id, file_id=record.file_id,
            start_time=start, finish_time=finish,
            acquired_bytes=record.size, traffic_bytes=0.0, cache_hit=True,
            average_speed=0.0, peak_speed=0.0, success=True)

    # -- fetch ------------------------------------------------------------------------

    def _fetch_phase(self, sim: Simulator, request: RequestRecord,
                     record: CatalogFile, user: User,
                     rng: np.random.Generator, result: TaskResult,
                     flows: list[FetchFlow]):
        start = sim.now
        highly_popular = record.popularity_class is \
            PopularityClass.HIGHLY_POPULAR

        admitted = self.uploads.select_and_reserve(
            user.isp, start,
            lambda quality: self.fetch_model.sample_speed(
                user.access_bandwidth, quality, rng))
        if admitted is None:
            # Rejected: record the fetch at 0 B/s and the burden the flow
            # *would* have imposed (Fig. 11 counts rejected demand at the
            # fleet-average fetch speed, per the paper's estimate).
            estimated_rate = FETCH_SPEED_MEAN
            flows.append(FetchFlow(
                start=start, end=start + record.size / estimated_rate,
                rate=estimated_rate, highly_popular=highly_popular,
                rejected=True))
            result.fetch_record = FetchRecord(
                task_id=request.task_id, user_id=user.user_id,
                ip_address=user.ip_address,
                access_bandwidth=user.reported_bandwidth,
                start_time=start, finish_time=start, acquired_bytes=0.0,
                traffic_bytes=0.0, average_speed=0.0, peak_speed=0.0,
                rejected=True)
            return

        path, reservation, rate = admitted
        duration = record.size / rate if rate > 0 else 0.0
        yield Timeout(duration)
        reservation.release(sim.now)
        flows.append(FetchFlow(start=start, end=sim.now, rate=rate,
                               highly_popular=highly_popular))
        result.fetch_path = path
        result.fetch_record = FetchRecord(
            task_id=request.task_id, user_id=user.user_id,
            ip_address=user.ip_address,
            access_bandwidth=user.reported_bandwidth,
            start_time=start, finish_time=sim.now,
            acquired_bytes=record.size,
            traffic_bytes=record.size * rng.uniform(1.07, 1.10),
            average_speed=rate,
            peak_speed=min(rate * rng.uniform(1.0, 1.4),
                           self.config.max_fetch_rate))

    def _resilient_fetch(self, sim: Simulator, request: RequestRecord,
                         record: CatalogFile, user: User,
                         rng: np.random.Generator, result: TaskResult,
                         flows: list[FetchFlow], proc: Process):
        """User fetch under fault injection, with optional recovery.

        Crashed server groups are excluded from admission (the home
        group being dark forces a barrier-crossing failover); an
        in-flight flow interrupted by ``server_crash`` commits its
        transferred bytes (checkpoint-resume) and retries after the
        window clears plus backoff.  ``isp_degrade`` scales candidate
        flow rates at admission time.
        """
        inj = self.faults
        assert inj is not None
        policies = self.policies
        retry = policies.retry if policies is not None else None
        jitter = inj.rng(f"cloud-fetch:{request.task_id}") \
            if retry is not None else None
        resume = policies is not None and policies.checkpoint_resume
        overall_start = sim.now
        highly_popular = record.popularity_class is \
            PopularityClass.HIGHLY_POPULAR
        checkpoint = TransferCheckpoint()
        attempt = 0
        impacted = False
        while True:
            attempt += 1
            now = sim.now
            down = inj.crashed_isps(now)
            admitted = self.uploads.select_and_reserve(
                user.isp, now,
                lambda quality: self.fetch_model.sample_speed(
                    user.access_bandwidth, quality, rng),
                exclude=down,
                rate_scale=lambda isp: inj.factor(
                    "isp_degrade", isp.value, now))
            if admitted is None:
                if down and retry is not None \
                        and retry.allows(attempt + 1):
                    # Candidate groups are dark: wait out the longest
                    # active crash window and try admission again.
                    inj.retry("cloud-fetch")
                    clear = max(inj.clear_time(("server_crash",),
                                               name, now)
                                for name in down)
                    yield Timeout(max(clear - now, 0.0)
                                  + retry.backoff(attempt, jitter))
                    continue
                if impacted or user.isp.value in down:
                    inj.abort("cloud-fetch")
                estimated_rate = FETCH_SPEED_MEAN
                flows.append(FetchFlow(
                    start=now, end=now + record.size / estimated_rate,
                    rate=estimated_rate, highly_popular=highly_popular,
                    rejected=True))
                result.fetch_record = FetchRecord(
                    task_id=request.task_id, user_id=user.user_id,
                    ip_address=user.ip_address,
                    access_bandwidth=user.reported_bandwidth,
                    start_time=overall_start, finish_time=now,
                    acquired_bytes=checkpoint.committed_bytes,
                    traffic_bytes=0.0, average_speed=0.0,
                    peak_speed=0.0, rejected=True)
                return

            path, reservation, rate = admitted
            if user.isp.value in down and path.server_isp is not user.isp:
                inj.failover("cloud-fetch")
            remaining = checkpoint.remaining(record.size) \
                if resume else record.size
            deadline = now + (remaining / rate if rate > 0 else 0.0)
            entity = ("isp", path.server_isp.value)
            fault = None
            inj.register(entity, proc)
            try:
                while sim.now < deadline:
                    try:
                        yield Timeout(deadline - sim.now)
                    except Interrupt as intr:
                        spec = intr.cause
                        if spec.kind != "server_crash":
                            continue
                        fault = spec
                        break
            finally:
                inj.unregister(entity, proc)
                reservation.release(sim.now)
            flows.append(FetchFlow(start=now, end=sim.now, rate=rate,
                                   highly_popular=highly_popular))
            if resume:
                checkpoint.commit(min(rate * (sim.now - now), remaining))
            if fault is None:
                finish = sim.now
                duration = finish - overall_start
                result.fetch_path = path
                result.fetch_record = FetchRecord(
                    task_id=request.task_id, user_id=user.user_id,
                    ip_address=user.ip_address,
                    access_bandwidth=user.reported_bandwidth,
                    start_time=overall_start, finish_time=finish,
                    acquired_bytes=record.size,
                    traffic_bytes=record.size * rng.uniform(1.07, 1.10),
                    average_speed=record.size / duration
                    if duration > 0 else rate,
                    peak_speed=min(rate * rng.uniform(1.0, 1.4),
                                   self.config.max_fetch_rate))
                if impacted:
                    inj.recover("cloud-fetch", duration)
                return
            impacted = True
            inj.impact(fault)
            if retry is not None and retry.allows(attempt + 1):
                inj.retry("cloud-fetch")
                clear = inj.clear_time(("server_crash",),
                                       path.server_isp.value, sim.now)
                yield Timeout(max(clear - sim.now, 0.0)
                              + retry.backoff(attempt, jitter))
                continue
            inj.abort("cloud-fetch")
            result.fetch_record = FetchRecord(
                task_id=request.task_id, user_id=user.user_id,
                ip_address=user.ip_address,
                access_bandwidth=user.reported_bandwidth,
                start_time=overall_start, finish_time=sim.now,
                acquired_bytes=checkpoint.committed_bytes,
                traffic_bytes=0.0, average_speed=0.0, peak_speed=0.0,
                rejected=True)
            return
