"""The fetch-speed model: what a user gets when pulling from the cloud.

A fetch flow's speed is the minimum of three independent limits --

* the per-connection throughput of the uploading server (disk + NIC +
  TCP dynamics; lognormal around ~330 KBps),
* the network path's capacity (effectively unconstrained inside one ISP,
  ~90 KBps median across the ISP barrier),
* the user's own access bandwidth --

optionally degraded by an "unknown cause" factor: the paper attributes
6.1% of impeded fetches to unexplained dynamics or bugs (section 4.2),
which we model as a rare multiplicative collapse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.topology import PathQuality
from repro.sim.clock import kbps, mbps


@dataclass(frozen=True)
class FetchSpeedModel:
    """Sampler of per-fetch speeds given path quality and user bandwidth."""

    server_rate_median: float = kbps(700.0)
    server_rate_sigma: float = 1.30
    server_rate_cap: float = mbps(50.0)    # "no limitation", max ~6.25 MBps
    unknown_degradation_probability: float = 0.045
    unknown_degradation_low: float = 0.05
    unknown_degradation_high: float = 0.50

    def sample_server_rate(self, rng: np.random.Generator) -> float:
        rate = self.server_rate_median * float(
            np.exp(rng.normal(0.0, self.server_rate_sigma)))
        return min(rate, self.server_rate_cap)

    def sample_speed(self, user_bandwidth: float, quality: PathQuality,
                     rng: np.random.Generator) -> float:
        """Draw the end-to-end speed of one fetch flow, in B/s."""
        if user_bandwidth <= 0:
            raise ValueError("user_bandwidth must be positive")
        # The server-rate draw is inlined from ``sample_server_rate``
        # (same draw, same arithmetic: min() over the flattened limits
        # equals the nested min), and the degradation factor expands
        # ``rng.uniform(lo, hi)`` into the exact computation it performs
        # -- this method sits on the per-fetch admission path.
        speed = min(self.server_rate_median * float(
                        np.exp(rng.normal(0.0, self.server_rate_sigma))),
                    self.server_rate_cap,
                    quality.sample_cap(rng),
                    user_bandwidth)
        if rng.random() < self.unknown_degradation_probability:
            low = self.unknown_degradation_low
            speed *= low + (self.unknown_degradation_high - low) \
                * rng.random()
        return speed
