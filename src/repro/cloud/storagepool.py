"""The geo-distributed cloud storage pool with collaborative caching.

Files are content-addressed (MD5), deduplicated at file level, and
replaced LRU (paper section 2.1).  The pool is what turns one user's
successful pre-download into every later requester's instant cache hit
-- the "collaborative caching" that halves the failure ratio.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.storage.dedup import ContentStore
from repro.storage.lru import LRUCache
from repro.workload.catalog import FileCatalog
from repro.workload.popularity import PopularityClass
from repro.workload.records import CatalogFile


class CloudStoragePool:
    """LRU-managed, deduplicated file pool."""

    def __init__(self, capacity_bytes: float):
        self._cache: LRUCache[str, float] = LRUCache(capacity_bytes)
        self._store = ContentStore()

    def __contains__(self, file_id: str) -> bool:
        return file_id in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def used_bytes(self) -> float:
        return self._cache.used_bytes

    @property
    def hit_ratio(self) -> float:
        return self._cache.stats.hit_ratio

    @property
    def dedup_bytes_saved(self) -> float:
        """Logical minus physical bytes: what file-level dedup reclaims."""
        return max(0.0, self._store.logical_bytes -
                   self._store.physical_bytes)

    def lookup(self, file_id: str) -> bool:
        """Hit-test with recency refresh and hit/miss accounting."""
        return self._cache.get(file_id) is not None

    def insert(self, record: CatalogFile) -> list[str]:
        """Cache a freshly pre-downloaded file; returns evicted IDs."""
        evicted = self._cache.put(record.file_id, record.size, record.size)
        self._store.add(record.file_id, record.size)
        for file_id in evicted:
            if file_id in self._store:
                self._store.drop(file_id)
        return evicted

    def preseed(self, catalog: FileCatalog,
                probabilities: dict[PopularityClass, float],
                rng: np.random.Generator) -> int:
        """Populate the pool with files cached before the week began.

        Files are inserted in random order so the initial LRU ordering
        carries no popularity bias.  Returns the number seeded.
        """
        records = list(catalog)
        rng.shuffle(records)  # type: ignore[arg-type]
        seeded = 0
        for record in records:
            probability = probabilities.get(record.popularity_class, 0.0)
            if rng.random() < probability:
                self.insert(record)
                seeded += 1
        return seeded
