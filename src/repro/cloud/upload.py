"""Uploading servers and privileged network paths.

Xuanfeng deploys uploading-server groups inside the four major ISPs and
always tries to serve a fetch from the user's own ISP, dodging the ISP
barrier (paper section 2.1).  Construction fails when (1) the user is
outside the four majors, or (2) the home group's upload bandwidth is
exhausted; either way an alternative group with the lowest latency to
the user is used -- crossing the barrier.  When *every* group is
exhausted the fetch request is rejected outright rather than degrading
active flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.netsim.isp import ISP, MAJOR_ISPS
from repro.netsim.topology import ChinaTopology, PathQuality
from repro.obs.registry import AnyRegistry, NOOP
from repro.sim.clock import kbps, to_gbps
from repro.sim.resources import Reservation, ReservationPool
from repro.cloud.config import CloudConfig

#: A reservation below this rate is pointless to admit (the flow would be
#: unusable); used as the headroom test during group selection.
MIN_USEFUL_RATE = kbps(16.0)


@dataclass(frozen=True)
class PathChoice:
    """The outcome of privileged-path construction for one fetch."""

    server_isp: ISP
    privileged: bool            # same-ISP, no barrier crossed
    quality: PathQuality


class UploadingServers:
    """The per-ISP uploading-server groups and their admission logic."""

    def __init__(self, config: CloudConfig,
                 topology: Optional[ChinaTopology] = None,
                 metrics: AnyRegistry = NOOP):
        self.config = config
        self.topology = topology or ChinaTopology()
        self.pools: dict[ISP, ReservationPool] = {
            isp: ReservationPool(config.upload_capacity_of(isp),
                                 name=f"upload-{isp.value}")
            for isp in MAJOR_ISPS
        }
        self.rejected_fetches = 0
        self.total_fetches = 0
        self._m_fetches = metrics.counter("repro_cloud_fetches_total")
        self._m_rejects = metrics.counter(
            "repro_cloud_admission_rejects_total")
        self._m_crossings = metrics.counter(
            "repro_cloud_isp_barrier_crossings_total")
        # Committed upload bandwidth per ISP group, sampled at every
        # admission into sim-time bins (the Fig. 11 burden series).
        self._m_upload = {
            isp: metrics.gauge("repro_cloud_upload_gbps", isp=isp.value)
            for isp in MAJOR_ISPS}

    # -- selection -------------------------------------------------------------

    def candidate_groups(self, user_isp: ISP) -> list[ISP]:
        """Server groups tried for a user homed in ``user_isp``.

        Per section 2.1: the home group first (privileged path), and when
        that fails -- or the user is outside the four majors -- the single
        alternative group with the shortest latency to the user.  If that
        alternative cannot admit the flow either, the fetch is rejected;
        Xuanfeng does not hunt across every group.
        """
        if not self.config.privileged_paths:
            # Ablation: ISP-blind selection, most headroom first.
            by_headroom = sorted(
                MAJOR_ISPS,
                key=lambda isp: -self.pools[isp].available)
            return by_headroom[:2]

        def preference(server_isp: ISP) -> tuple[float, float]:
            # Shortest latency first; among equals, the group with the
            # most headroom (the selector load-balances its equals).
            quality = self.topology.path_quality(server_isp, user_isp)
            return quality.latency_ms, -self.pools[server_isp].available
        alternatives = sorted((isp for isp in MAJOR_ISPS
                               if isp is not user_isp), key=preference)
        if user_isp in self.pools:
            return [user_isp, alternatives[0]]
        return alternatives[:2]

    def select_and_reserve(
            self, user_isp: ISP, now: float,
            rate_for_path: Callable[[PathQuality], float],
            exclude: frozenset[str] = frozenset(),
            rate_scale: Optional[Callable[[ISP], float]] = None,
    ) -> Optional[tuple[PathChoice, Reservation, float]]:
        """Pick a group, compute the flow rate, and reserve it.

        ``rate_for_path`` maps the candidate path's quality to the speed
        the flow would actually achieve (the min of server rate, path
        cap, and user bandwidth); the reservation holds that rate.
        Returns ``None`` when every group is exhausted (the fetch is
        rejected).

        ``exclude`` names server groups that are dark (fault injection:
        a crashed group is skipped as if exhausted); ``rate_scale`` maps
        a candidate group to a degradation multiplier on its flow rate.
        Both default to no-ops so the fault-free path is unchanged.
        """
        self.total_fetches += 1
        self._m_fetches.inc()
        for server_isp in self.candidate_groups(user_isp):
            if server_isp.value in exclude:
                continue
            pool = self.pools[server_isp]
            assert pool.capacity is not None
            limit = self.config.admission_utilization_limit \
                if server_isp == user_isp \
                else self.config.overflow_utilization_limit
            if pool.committed >= pool.capacity * limit or \
                    pool.available < MIN_USEFUL_RATE:
                continue
            quality = self.topology.path_quality(server_isp, user_isp)
            rate = min(rate_for_path(quality), self.config.max_fetch_rate)
            if rate_scale is not None:
                rate *= rate_scale(server_isp)
            if rate <= 0:
                continue
            # "No limitation on the user's fetching speed": the flow is
            # admitted at its full rate or not at all -- Xuanfeng rejects
            # rather than degrade (section 2.1).
            reservation = pool.try_reserve(rate, now, label=user_isp.value)
            if reservation is not None:
                choice = PathChoice(server_isp=server_isp,
                                    privileged=(server_isp == user_isp),
                                    quality=quality)
                if not choice.privileged:
                    self._m_crossings.inc()
                self._m_upload[server_isp].set(to_gbps(pool.committed))
                return choice, reservation, rate
        self.rejected_fetches += 1
        self._m_rejects.inc()
        return None

    # -- accounting --------------------------------------------------------------

    @property
    def rejection_ratio(self) -> float:
        if self.total_fetches == 0:
            return 0.0
        return self.rejected_fetches / self.total_fetches

    def total_committed(self) -> float:
        return sum(pool.committed for pool in self.pools.values())

    def binned_total_usage(self, bin_width: float,
                           horizon: float) -> list[float]:
        """Aggregate committed upload bandwidth per time bin (Figure 11)."""
        per_pool = [pool.binned_usage(bin_width, horizon)
                    for pool in self.pools.values()]
        return [sum(values) for values in zip(*per_pool)]
