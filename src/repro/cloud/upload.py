"""Uploading servers and privileged network paths.

Xuanfeng deploys uploading-server groups inside the four major ISPs and
always tries to serve a fetch from the user's own ISP, dodging the ISP
barrier (paper section 2.1).  Construction fails when (1) the user is
outside the four majors, or (2) the home group's upload bandwidth is
exhausted; either way an alternative group with the lowest latency to
the user is used -- crossing the barrier.  When *every* group is
exhausted the fetch request is rejected outright rather than degrading
active flows.
"""

from __future__ import annotations

from typing import Callable, NamedTuple, Optional

from repro.netsim.isp import ISP, MAJOR_ISPS
from repro.netsim.topology import ChinaTopology, PathQuality
from repro.obs.registry import AnyRegistry, NOOP
from repro.sim.clock import kbps, to_gbps
from repro.sim.resources import Reservation, ReservationPool
from repro.cloud.config import CloudConfig

#: A reservation below this rate is pointless to admit (the flow would be
#: unusable); used as the headroom test during group selection.
MIN_USEFUL_RATE = kbps(16.0)


class PathChoice(NamedTuple):
    """The outcome of privileged-path construction for one fetch.

    A named tuple rather than a frozen dataclass: one is built per
    admitted fetch, and tuple construction skips the frozen-dataclass
    ``object.__setattr__`` round-trips.
    """

    server_isp: ISP
    privileged: bool            # same-ISP, no barrier crossed
    quality: PathQuality


class UploadingServers:
    """The per-ISP uploading-server groups and their admission logic."""

    def __init__(self, config: CloudConfig,
                 topology: Optional[ChinaTopology] = None,
                 metrics: AnyRegistry = NOOP):
        self.config = config
        self.topology = topology or ChinaTopology()
        self.pools: dict[ISP, ReservationPool] = {
            isp: ReservationPool(config.upload_capacity_of(isp),
                                 name=f"upload-{isp.value}")
            for isp in MAJOR_ISPS
        }
        self.rejected_fetches = 0
        self.total_fetches = 0
        # With the NOOP registry the per-fetch counter/gauge calls are
        # skipped entirely (one flag test) instead of dispatched to
        # do-nothing methods two or three times per admission.
        self._metered = metrics is not NOOP
        self._m_fetches = metrics.counter("repro_cloud_fetches_total")
        self._m_rejects = metrics.counter(
            "repro_cloud_admission_rejects_total")
        self._m_crossings = metrics.counter(
            "repro_cloud_isp_barrier_crossings_total")
        # Committed upload bandwidth per ISP group, sampled at every
        # admission into sim-time bins (the Fig. 11 burden series).
        self._m_upload = {
            isp: metrics.gauge("repro_cloud_upload_gbps", isp=isp.value)
            for isp in MAJOR_ISPS}
        # Alternative groups per user ISP, pre-grouped into latency
        # tiers.  Path latencies are static topology facts, so only the
        # headroom tiebreak *within* a tier depends on run-time state;
        # resolving it over the cached tiers replaces the per-fetch full
        # sort (and its preference-closure allocations).
        self._alt_tiers: dict[ISP, tuple[tuple[ISP, ...], ...]] = {}
        # Per-group hot-path row: the pool, admission thresholds in
        # absolute B/s, the home-path quality, the ISP's label string,
        # and its burden gauge.  All of these are fixed after
        # construction, so the per-fetch path compares ``committed``
        # against a constant and never goes through a topology lookup,
        # an ``Enum.value`` descriptor, or a gauge-dict hash.
        self._admission: dict[
            ISP, tuple[ReservationPool, float, float, PathQuality,
                       str, object]] = {
            isp: (pool,
                  pool.capacity * config.admission_utilization_limit,
                  pool.capacity * config.overflow_utilization_limit,
                  self.topology.path_quality(isp, isp),
                  isp.value,
                  self._m_upload[isp])
            for isp, pool in self.pools.items()}

    # -- selection -------------------------------------------------------------

    def _alternative_tiers(self, user_isp: ISP) -> tuple[tuple[ISP, ...], ...]:
        """Non-home groups for ``user_isp``, grouped by ascending latency.

        Within a tier the groups keep their :data:`MAJOR_ISPS` order --
        the same order the old stable full sort left equal-key
        candidates in.
        """
        tiers = self._alt_tiers.get(user_isp)
        if tiers is None:
            ranked = sorted(
                ((self.topology.path_quality(isp, user_isp).latency_ms, isp)
                 for isp in MAJOR_ISPS if isp is not user_isp),
                key=lambda pair: pair[0])
            grouped: list[list[ISP]] = []
            last_latency: Optional[float] = None
            for latency, isp in ranked:
                if latency != last_latency:
                    grouped.append([isp])
                    last_latency = latency
                else:
                    grouped[-1].append(isp)
            tiers = tuple(tuple(tier) for tier in grouped)
            self._alt_tiers[user_isp] = tiers
        return tiers

    def candidate_groups(self, user_isp: ISP) -> tuple[ISP, ...]:
        """Server groups tried for a user homed in ``user_isp``.

        Per section 2.1: the home group first (privileged path), and when
        that fails -- or the user is outside the four majors -- the single
        alternative group with the shortest latency to the user.  If that
        alternative cannot admit the flow either, the fetch is rejected;
        Xuanfeng does not hunt across every group.
        """
        pools = self.pools
        if not self.config.privileged_paths:
            # Ablation: ISP-blind selection, most headroom first.
            by_headroom = sorted(
                MAJOR_ISPS,
                key=lambda isp: -pools[isp].available)
            return tuple(by_headroom[:2])

        tiers = self._alternative_tiers(user_isp)
        if user_isp in pools:
            # Home group plus the single lowest-latency alternative;
            # among latency-equals, the one with the most headroom (the
            # strict > keeps the first of exact ties, matching the old
            # stable sort).
            tier = tiers[0]
            best = tier[0]
            if len(tier) > 1:
                admission = self._admission
                pool = admission[best][0]
                best_headroom = pool.capacity - pool.committed
                for isp in tier[1:]:
                    pool = admission[isp][0]
                    headroom = pool.capacity - pool.committed
                    if headroom > best_headroom:
                        best, best_headroom = isp, headroom
            return (user_isp, best)
        # Outside the four majors: the two lowest-latency alternatives,
        # headroom-ordered within each latency tier.
        chosen: list[ISP] = []
        for tier in tiers:
            if len(tier) == 1:
                chosen.append(tier[0])
            else:
                chosen.extend(sorted(
                    tier, key=lambda isp: -pools[isp].available))
            if len(chosen) >= 2:
                break
        return tuple(chosen[:2])

    def select_and_reserve(
            self, user_isp: ISP, now: float,
            rate_for_path: Callable[[PathQuality], float],
            exclude: frozenset[str] = frozenset(),
            rate_scale: Optional[Callable[[ISP], float]] = None,
    ) -> Optional[tuple[PathChoice, Reservation, float]]:
        """Pick a group, compute the flow rate, and reserve it.

        ``rate_for_path`` maps the candidate path's quality to the speed
        the flow would actually achieve (the min of server rate, path
        cap, and user bandwidth); the reservation holds that rate.
        Returns ``None`` when every group is exhausted (the fetch is
        rejected).

        ``exclude`` names server groups that are dark (fault injection:
        a crashed group is skipped as if exhausted); ``rate_scale`` maps
        a candidate group to a degradation multiplier on its flow rate.
        Both default to no-ops so the fault-free path is unchanged.
        """
        self.total_fetches += 1
        metered = self._metered
        if metered:
            self._m_fetches.inc()
        max_fetch_rate = self.config.max_fetch_rate
        path_quality = self.topology.path_quality
        admission = self._admission
        home_info = admission.get(user_isp) \
            if self.config.privileged_paths else None
        if home_info is not None:
            # Home-first fast path: most fetches admit at the privileged
            # group, so the alternative (whose headroom tiebreak reads
            # the same pool states either way -- a failed home attempt
            # commits nothing) is only resolved when home actually
            # fails.
            pool, home_threshold, _overflow, quality, label, gauge = \
                home_info
            if label not in exclude:
                committed = pool.committed
                if committed < home_threshold and \
                        pool.capacity - committed >= MIN_USEFUL_RATE:
                    rate = min(rate_for_path(quality), max_fetch_rate)
                    if rate_scale is not None:
                        rate *= rate_scale(user_isp)
                    if rate > 0:
                        reservation = pool.try_reserve(
                            rate, now, label=label)
                        if reservation is not None:
                            if metered:
                                gauge.set(to_gbps(pool.committed))
                            return (PathChoice(user_isp, True, quality),
                                    reservation, rate)
            tier = self._alternative_tiers(user_isp)[0]
            best = tier[0]
            if len(tier) > 1:
                pool = admission[best][0]
                best_headroom = pool.capacity - pool.committed
                for isp in tier[1:]:
                    alt = admission[isp][0]
                    headroom = alt.capacity - alt.committed
                    if headroom > best_headroom:
                        best, best_headroom = isp, headroom
            candidates: tuple[ISP, ...] = (best,)
        else:
            candidates = self.candidate_groups(user_isp)
        for server_isp in candidates:
            pool, home_threshold, overflow_threshold, home_quality, \
                server_label, gauge = admission[server_isp]
            if server_label in exclude:
                continue
            privileged = server_isp is user_isp
            committed = pool.committed
            if committed >= (home_threshold if privileged
                             else overflow_threshold) or \
                    pool.capacity - committed < MIN_USEFUL_RATE:
                continue
            quality = home_quality if privileged \
                else path_quality(server_isp, user_isp)
            rate = min(rate_for_path(quality), max_fetch_rate)
            if rate_scale is not None:
                rate *= rate_scale(server_isp)
            if rate <= 0:
                continue
            # "No limitation on the user's fetching speed": the flow is
            # admitted at its full rate or not at all -- Xuanfeng rejects
            # rather than degrade (section 2.1).
            reservation = pool.try_reserve(rate, now, label=user_isp.value)
            if reservation is not None:
                choice = PathChoice(server_isp, privileged, quality)
                if not privileged and metered:
                    self._m_crossings.inc()
                if metered:
                    gauge.set(to_gbps(pool.committed))
                return choice, reservation, rate
        self.rejected_fetches += 1
        if metered:
            self._m_rejects.inc()
        return None

    # -- accounting --------------------------------------------------------------

    @property
    def rejection_ratio(self) -> float:
        if self.total_fetches == 0:
            return 0.0
        return self.rejected_fetches / self.total_fetches

    def total_committed(self) -> float:
        return sum(pool.committed for pool in self.pools.values())

    def binned_total_usage(self, bin_width: float,
                           horizon: float) -> list[float]:
        """Aggregate committed upload bandwidth per time bin (Figure 11)."""
        per_pool = [pool.binned_usage(bin_width, horizon)
                    for pool in self.pools.values()]
        return [sum(values) for values in zip(*per_pool)]
