"""Configuration of the cloud system, scaled to the workload.

The real Xuanfeng (paper section 2.1 / 4.2): ~2 PB of storage across
~500 commodity servers caching ~5 M files, 20 Mbps pre-downloader VMs,
and 30 Gbps of purchased upload bandwidth spread over the four major
ISPs.  A synthetic week at ``scale`` gets ``scale`` times the storage and
upload capacity, so utilisation and rejection dynamics match the real
system's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.isp import ISP, MAJOR_ISPS
from repro.sim.clock import gbps, mbps
from repro.transfer.session import STAGNATION_TIMEOUT
from repro.workload.popularity import PopularityClass

#: How the purchased upload bandwidth splits across the four major ISPs.
#: Proportional to each ISP's share of the (major-ISP) user population.
UPLOAD_SPLIT: dict[ISP, float] = {
    ISP.TELECOM: 0.46,
    ISP.UNICOM: 0.31,
    ISP.MOBILE: 0.18,
    ISP.CERNET: 0.05,
}


@dataclass(frozen=True)
class CloudConfig:
    """Knobs of the simulated Xuanfeng cloud."""

    scale: float = 0.01
    storage_capacity: float = 2e15          # bytes at scale=1 (~2 PB)
    upload_capacity: float = gbps(30.0)     # at scale=1
    predownloader_bandwidth: float = mbps(20.0)
    #: Size of the pre-downloader VM fleet; ``None`` means effectively
    #: unbounded (the real system elastically provisions VMs, and the
    #: trace shows no pre-download queueing).  A finite fleet makes
    #: cache misses queue FIFO for a VM -- the ablation for "what if
    #: Xuanfeng skimped on pre-downloaders".
    predownloader_count: int | None = None
    max_fetch_rate: float = mbps(50.0)      # observed fetch max ~6.25 MBps
    stagnation_timeout: float = STAGNATION_TIMEOUT
    #: Ablation switch: disable the collaborative cache entirely (every
    #: request pre-downloads fresh) -- the paper's "if we do not take the
    #: cache hit cases into account" counterfactual.
    collaborative_cache: bool = True
    #: Ablation switch: disable privileged-path construction (uploading
    #: server chosen by load alone, ignoring the user's ISP).
    privileged_paths: bool = True
    #: Probability that a file of each class was already cached when the
    #: measurement week began (the pool predates the trace; popular
    #: content is almost surely resident).  Calibrated so the synthetic
    #: request-level cache-hit ratio lands at the paper's 89%.
    precached_probability: dict[PopularityClass, float] = field(
        default_factory=lambda: {
            PopularityClass.UNPOPULAR: 0.27,
            PopularityClass.POPULAR: 0.75,
            PopularityClass.HIGHLY_POPULAR: 0.92,
        })
    #: A group stops admitting *any* new flow once committed bandwidth
    #: passes this fraction of capacity: operators keep headroom for the
    #: throughput variability of active TCP flows, so the last few
    #: percent of a link are never handed out.  This couples per-ISP
    #: saturation -- when one group is full, trickle-rate cross-ISP flows
    #: cannot keep squeezing into the remaining slivers of another full
    #: group -- which is how peak overload becomes rejections (the
    #: paper's 1.5%) rather than an unbounded swarm of slow flows.
    admission_utilization_limit: float = 0.97
    #: A group only accepts *overflow* (flows whose home group is full,
    #: or users from outside the four majors) while it has real spare
    #: capacity.  During a global peak every group runs hot, so overflow
    #: is rejected rather than smeared across the mesh as trickle-rate
    #: cross-ISP flows -- which is why Xuanfeng's observed cross-ISP
    #: share stays near the structural 9.6% while rejections spike on
    #: the overloaded final days.
    overflow_utilization_limit: float = 0.90
    #: Median / sigma of the lognormal lag between "file ready" and the
    #: user actually starting to fetch (view-as-download users start
    #: almost immediately; others come back later).
    fetch_lag_median: float = 8 * 60.0
    fetch_lag_sigma: float = 1.6

    @property
    def scaled_storage_capacity(self) -> float:
        return self.storage_capacity * self.scale

    @property
    def scaled_upload_capacity(self) -> float:
        return self.upload_capacity * self.scale

    def upload_capacity_of(self, isp: ISP) -> float:
        if isp not in MAJOR_ISPS:
            raise ValueError(f"no uploading servers in {isp}")
        return self.scaled_upload_capacity * UPLOAD_SPLIT[isp]
