"""The cloud-based offline-downloading system (Xuanfeng model).

Three server clusters plus a metadata database, exactly as the paper's
Figure 3 describes: pre-downloading servers (VM pre-downloaders at
20 Mbps each), storage servers (an MD5-deduplicated LRU pool), and
uploading servers deployed inside the four major ISPs, with privileged
network paths to same-ISP users and admission control that rejects new
fetches rather than degrade active ones.
"""

from repro.cloud.config import CloudConfig
from repro.cloud.database import ContentDatabase, FileMetadata
from repro.cloud.storagepool import CloudStoragePool
from repro.cloud.upload import PathChoice, UploadingServers
from repro.cloud.fetch import FetchSpeedModel
from repro.cloud.predownload import PreDownloaderFleet
from repro.cloud.system import CloudRunResult, TaskResult, XuanfengCloud

__all__ = [
    "CloudConfig",
    "ContentDatabase",
    "FileMetadata",
    "CloudStoragePool",
    "UploadingServers",
    "PathChoice",
    "FetchSpeedModel",
    "PreDownloaderFleet",
    "XuanfengCloud",
    "CloudRunResult",
    "TaskResult",
]
