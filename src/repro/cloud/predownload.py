"""The pre-downloader fleet.

When a requested file is not in the storage pool, Xuanfeng "assigns a
virtual machine (named a pre-downloader) to pre-download the file from
the Internet"; each VM has ~20 Mbps of access bandwidth (paper section
2.1).  The fleet builds the file's data source from the catalog (swarm
or origin server) and runs a download session from the cloud vantage.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cloud.config import CloudConfig
from repro.obs.registry import AnyRegistry, NOOP
from repro.transfer.session import DownloadOutcome, DownloadSession, \
    SessionLimits
from repro.transfer.source import CLOUD_VANTAGE, ContentSource, SourceModel
from repro.workload.records import CatalogFile


class PreDownloaderFleet:
    """Builds and runs pre-download sessions on cloud VMs.

    Sources are cached per file so repeated attempts hit the *same*
    swarm/server object (its state, e.g. demand-coupled seed levels, is
    shared across attempts) while every attempt redraws the momentary
    conditions.
    """

    def __init__(self, config: CloudConfig,
                 source_model: Optional[SourceModel] = None,
                 metrics: AnyRegistry = NOOP):
        self.config = config
        self.source_model = source_model or SourceModel()
        self.metrics = metrics
        self._sources: dict[str, ContentSource] = {}
        self.attempts = 0
        self.failures = 0
        self.traffic_bytes = 0.0
        self.payload_bytes = 0.0
        self._m_attempts = metrics.counter(
            "repro_cloud_predownload_attempts_total")
        self._m_failures = metrics.counter(
            "repro_cloud_predownload_failures_total")
        self._m_traffic = metrics.counter(
            "repro_cloud_predownload_traffic_bytes_total")

    def source_for(self, record: CatalogFile) -> ContentSource:
        source = self._sources.get(record.file_id)
        if source is None:
            source = self.source_model.build(
                record.file_id, record.protocol, record.weekly_demand)
            self._sources[record.file_id] = source
        return source

    def session_for(self, record: CatalogFile,
                    size: Optional[float] = None,
                    mid_failure_probability: Optional[float] = None,
                    ) -> DownloadSession:
        """Build one attempt's session.

        ``size`` overrides the transfer size (checkpoint-resume restarts
        fetch only the uncommitted remainder); ``mid_failure_probability``
        overrides the protocol model's mid-transfer failure chance (fault
        injection forces 1.0 while a swarm's seeds are dead).  Both
        default to the fault-free behaviour.
        """
        limits = SessionLimits(
            rate_caps=(self.config.predownloader_bandwidth,),
            stagnation_timeout=self.config.stagnation_timeout)
        return DownloadSession(self.source_for(record),
                               record.size if size is None else size,
                               CLOUD_VANTAGE, limits=limits,
                               mid_failure_probability=mid_failure_probability,
                               metrics=self.metrics)

    def attempt(self, record: CatalogFile,
                rng: np.random.Generator) -> DownloadOutcome:
        """Run one pre-download attempt to completion (analytic form)."""
        outcome = self.session_for(record).simulate(rng)
        self.account(outcome)
        return outcome

    def account(self, outcome: DownloadOutcome) -> None:
        """Fold an externally run session outcome into fleet statistics."""
        self.attempts += 1
        self._m_attempts.inc()
        if not outcome.success:
            self.failures += 1
            self._m_failures.inc()
        self.traffic_bytes += outcome.traffic
        self.payload_bytes += outcome.bytes_obtained
        self._m_traffic.inc(outcome.traffic)

    @property
    def attempt_failure_ratio(self) -> float:
        return self.failures / self.attempts if self.attempts else 0.0

    def no_cache_failure_ratio(self, records,
                               rng: np.random.Generator) -> float:
        """Counterfactual: failure ratio if the storage pool vanished.

        Runs one fresh pre-download attempt per given request's file
        (request-weighted, like the paper's 16.4% figure) without
        touching fleet accounting or the cache.
        """
        records = list(records)
        if not records:
            return 0.0
        failures = 0
        for record in records:
            outcome = self.session_for(record).simulate(rng)
            if not outcome.success:
                failures += 1
        return failures / len(records)

    @property
    def traffic_overhead(self) -> float:
        """Pre-download traffic relative to payload (paper: ~196% for P2P)."""
        if self.payload_bytes <= 0:
            return 0.0
        return self.traffic_bytes / self.payload_bytes
