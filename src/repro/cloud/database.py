"""The cloud's metadata database.

Tracks, per content ID, what Xuanfeng's DB tracks: popularity statistics
(request counts), cache residency, and pre-download failure history.
ODR queries this database for "the latest popularity statistics of the
requested file" (paper section 6.1), so the query surface here is the
one ODR programs against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.workload.popularity import PopularityClass, classify


@dataclass
class FileMetadata:
    """Per-file bookkeeping row."""

    file_id: str
    size: float
    request_count: int = 0
    cached: bool = False
    predownload_attempts: int = 0
    predownload_failures: int = 0
    last_request_time: Optional[float] = None

    @property
    def popularity_class(self) -> PopularityClass:
        return classify(self.request_count)


class ContentDatabase:
    """Metadata for every file the service has ever seen."""

    def __init__(self):
        self._rows: dict[str, FileMetadata] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, file_id: str) -> bool:
        return file_id in self._rows

    def row(self, file_id: str, size: float = 0.0) -> FileMetadata:
        """Fetch (creating if absent) the metadata row for a file."""
        row = self._rows.get(file_id)
        if row is None:
            row = FileMetadata(file_id=file_id, size=size)
            self._rows[file_id] = row
        return row

    def get(self, file_id: str) -> Optional[FileMetadata]:
        return self._rows.get(file_id)

    # -- event hooks used by the cloud system --------------------------------

    def record_request(self, file_id: str, size: float,
                       when: float) -> FileMetadata:
        # row() inlined: this hook runs once per replayed request.
        row = self._rows.get(file_id)
        if row is None:
            row = FileMetadata(file_id=file_id, size=size)
            self._rows[file_id] = row
        row.size = size
        row.request_count += 1
        row.last_request_time = when
        return row

    def record_attempt(self, file_id: str, success: bool) -> None:
        row = self.row(file_id)
        row.predownload_attempts += 1
        if not success:
            row.predownload_failures += 1

    def set_cached(self, file_id: str, cached: bool) -> None:
        self.row(file_id).cached = cached

    # -- the query surface ODR uses -------------------------------------------

    def popularity_of(self, file_id: str) -> int:
        """Weekly request count the service has observed (0 if unseen)."""
        row = self._rows.get(file_id)
        return row.request_count if row is not None else 0

    def popularity_class_of(self, file_id: str) -> PopularityClass:
        return classify(self.popularity_of(file_id))

    def is_cached(self, file_id: str) -> bool:
        row = self._rows.get(file_id)
        return bool(row is not None and row.cached)
