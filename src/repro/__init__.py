"""repro -- a full reproduction of "Offline Downloading in China: A
Comparative Study" (IMC 2015).

The package models the paper's entire measurement universe in Python:

* :mod:`repro.workload` -- a calibrated synthetic substitute for the
  proprietary Xuanfeng week-long trace;
* :mod:`repro.cloud` -- the cloud-based offline-downloading system
  (collaborative cache, pre-downloader fleet, per-ISP uploading servers);
* :mod:`repro.ap` -- the HiWiFi / MiWiFi / Newifi smart APs and the
  section 5 benchmark rig;
* :mod:`repro.core` -- ODR, the Offline Downloading Redirector, plus the
  baseline strategies and the section 6 replay evaluation;
* :mod:`repro.sim`, :mod:`repro.netsim`, :mod:`repro.transfer`,
  :mod:`repro.storage`, :mod:`repro.analysis` -- the substrates.

Quickstart::

    from repro import (WorkloadGenerator, WorkloadConfig, XuanfengCloud,
                       CloudConfig)

    workload = WorkloadGenerator(WorkloadConfig(scale=0.005)).generate()
    cloud = XuanfengCloud(CloudConfig(scale=0.005))
    result = cloud.run(workload)
    print(f"cache hit ratio: {result.cache_hit_ratio:.2%}")
"""

from repro.obs import MetricsRegistry, NOOP, span
from repro.workload import Workload, WorkloadConfig, WorkloadGenerator, \
    sample_benchmark_requests
from repro.cloud import CloudConfig, CloudRunResult, XuanfengCloud
from repro.ap import ApBenchmarkRig, SmartAP, HIWIFI_1S, MIWIFI, NEWIFI
from repro.core import (
    OdrMiddleware,
    OdrService,
    OdrStrategy,
    CloudOnlyStrategy,
    SmartApOnlyStrategy,
    AlwaysHybridStrategy,
    AmsStrategy,
    ReplayEvaluator,
)

__version__ = "1.0.0"

__all__ = [
    "Workload",
    "WorkloadConfig",
    "WorkloadGenerator",
    "sample_benchmark_requests",
    "XuanfengCloud",
    "CloudConfig",
    "CloudRunResult",
    "SmartAP",
    "ApBenchmarkRig",
    "HIWIFI_1S",
    "MIWIFI",
    "NEWIFI",
    "OdrMiddleware",
    "OdrService",
    "OdrStrategy",
    "CloudOnlyStrategy",
    "SmartApOnlyStrategy",
    "AlwaysHybridStrategy",
    "AmsStrategy",
    "ReplayEvaluator",
    "MetricsRegistry",
    "NOOP",
    "span",
    "__version__",
]
