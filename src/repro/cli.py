"""The ``repro`` command-line interface.

Subcommands mirror the paper's workflow::

    repro generate    synthesise a workload week and save its traces
    repro cloud       run the cloud system over a week (section 4)
    repro ap          replay the smart-AP benchmark (section 5)
    repro odr         ask the ODR middleware for one decision (section 6)
    repro experiments regenerate every paper comparison (EXPERIMENTS.md)
    repro figures     render the paper's figures as SVG

Every subcommand is also reachable as ``python -m repro <subcommand>``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.sim.clock import MINUTE, mbps, to_gbps


def _add_scale(parser: argparse.ArgumentParser,
               default: float = 0.01) -> None:
    parser.add_argument("--scale", type=float, default=default,
                        help="fraction of the real week to synthesise "
                             f"(default {default})")
    parser.add_argument("--seed", type=int, default=20150222)


def _add_jobs(parser: argparse.ArgumentParser,
              shards: bool = True) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="run through the sharded repro.scale "
                             "pipeline with N worker processes; results "
                             "are independent of N (use --jobs 1 for "
                             "the sharded path without parallelism)")
    if shards:
        from repro.scale.plan import DEFAULT_SHARDS
        parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS,
                            help="shard count of the partition (part of "
                                 "the result's identity; default "
                                 f"{DEFAULT_SHARDS})")


def _add_trace_format(parser: argparse.ArgumentParser,
                      write: bool = False) -> None:
    if write:
        parser.add_argument("--trace-format",
                            choices=("jsonl", "columnar"),
                            default="jsonl",
                            help="trace file format: jsonl (default; "
                                 "greppable, gzip-able) or columnar "
                                 "(memory-mapped .col files, much "
                                 "faster to replay)")
    else:
        parser.add_argument("--trace-format",
                            choices=("auto", "jsonl", "columnar"),
                            default="auto",
                            help="format of the --trace directory "
                                 "(default: auto-detect; columnar "
                                 ".col files win when present)")


def _add_recovery(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--run-dir", type=Path, default=None,
                        metavar="DIR",
                        help="make the run durable: checkpoint every "
                             "finished shard into DIR (manifest + "
                             "pickle + SHA-256) so a crashed or "
                             "interrupted run can be resumed")
    parser.add_argument("--resume", type=Path, default=None,
                        metavar="DIR",
                        help="resume the run directory DIR: verify its "
                             "manifest, reuse every valid checkpoint, "
                             "and recompute only missing/corrupt "
                             "shards (the merged result is "
                             "bit-identical to an uninterrupted run)")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-shard watchdog: a worker stuck "
                             "longer than this is killed and its "
                             "shard requeued")
    parser.add_argument("--max-shard-retries", type=int, default=None,
                        metavar="N",
                        help="requeue a lost shard at most N times "
                             "before the run aborts as "
                             "resumable-failed (default 2)")


def _recovery_config(args: argparse.Namespace):
    """Build a RecoveryConfig from --run-dir/--resume flags (or None)."""
    run_dir = getattr(args, "resume", None) or \
        getattr(args, "run_dir", None)
    if run_dir is None:
        if getattr(args, "shard_timeout", None) is not None or \
                getattr(args, "max_shard_retries", None) is not None:
            print("error: --shard-timeout/--max-shard-retries need "
                  "--run-dir or --resume", file=sys.stderr)
            raise SystemExit(2)
        return None
    from repro.recovery import RecoveryConfig
    from repro.recovery.durable import DEFAULT_MAX_RETRIES
    retries = args.max_shard_retries \
        if getattr(args, "max_shard_retries", None) is not None \
        else DEFAULT_MAX_RETRIES
    return RecoveryConfig(run_dir=Path(run_dir),
                          resume=args.resume is not None,
                          shard_timeout=args.shard_timeout,
                          max_shard_retries=retries)


def _add_profile(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", nargs="?", const=True, default=None,
                        type=Path, metavar="PSTATS",
                        help="profile the run with cProfile and dump "
                             "raw stats to PSTATS (default: a .pstats "
                             "file named after the run output; inspect "
                             "with `python -m pstats`)")


def _profile_destination(args: argparse.Namespace) -> Path:
    """Where ``--profile`` without an explicit path dumps its stats."""
    if args.profile is not True:
        return Path(args.profile)
    out = getattr(args, "out", None)
    if out is not None:          # e.g. `generate --out trace` -> trace.pstats
        return Path(str(out) + ".pstats")
    return Path(f"repro-{args.command}.pstats")


def _add_faults(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--faults", type=Path, default=None,
                        metavar="PLAN",
                        help="inject the fault plan (JSON; see "
                             "python -m repro.faults --write-plan) "
                             "into the run")
    parser.add_argument("--no-resilience", action="store_true",
                        help="with --faults: disable the retry/"
                             "failover/checkpoint policies (measure "
                             "raw fault impact)")


def _fault_setup(args: argparse.Namespace, registry):
    """Build (injector, policies) from ``--faults``/``--no-resilience``."""
    if getattr(args, "faults", None) is None:
        return None, None
    from repro.faults import (
        DEFAULT_POLICIES,
        FaultInjector,
        FaultPlan,
    )
    plan = FaultPlan.from_file(args.faults)
    policies = None if args.no_resilience else DEFAULT_POLICIES
    return FaultInjector(plan, metrics=registry), policies


def _add_metrics(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics-out", type=Path, default=None,
                        help="enable the observability subsystem and "
                             "write collected metrics here")
    parser.add_argument("--metrics-format",
                        choices=("jsonl", "prom", "table"), default=None,
                        help="metrics export format (default: jsonl "
                             "with --metrics-out, table to stdout "
                             "otherwise)")


def _metrics_registry(args: argparse.Namespace):
    """A live registry when metrics were requested, else ``NOOP``."""
    from repro.obs import MetricsRegistry, NOOP
    if args.metrics_out is None and args.metrics_format is None:
        return NOOP
    if args.metrics_out is not None:
        # Fail fast (and create parents) before paying for a long
        # simulation that could not write its metrics at the end.
        args.metrics_out.parent.mkdir(parents=True, exist_ok=True)
    return MetricsRegistry()


def _emit_metrics(registry, args: argparse.Namespace) -> None:
    if not registry.enabled:
        return
    import json

    from repro.obs import export
    fmt = args.metrics_format
    if fmt is None:
        fmt = "jsonl" if args.metrics_out is not None else "table"
    if fmt == "jsonl" and args.metrics_out is None:
        for row in registry.to_rows():
            print(json.dumps(row, sort_keys=True))
        return
    rendered = export(registry, fmt, args.metrics_out)
    if args.metrics_out is not None:
        print(rendered if fmt == "jsonl"
              else f"wrote {fmt} metrics to {args.metrics_out}")
    else:
        print(rendered)


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.workload import WorkloadConfig, WorkloadGenerator, \
        save_workload
    recovery = _recovery_config(args)
    if args.jobs is not None or recovery is not None:
        # --run-dir/--resume imply the sharded pipeline (checkpoints
        # are per shard); without --jobs it runs single-process.
        from repro.scale import ShardPlan, sharded_generate
        jobs = args.jobs if args.jobs is not None else 1
        plan = ShardPlan(scale=args.scale, seed=args.seed,
                         shards=args.shards)
        workload, info = sharded_generate(plan, jobs=jobs,
                                          recovery=recovery)
        print(f"sharded generate: {plan.shards} shards, "
              f"{jobs} jobs, {info.wall_seconds:.1f}s wall")
        if recovery is not None:
            from repro.perf.golden import digest, workload_payload
            print(f"reused shards:    {info.reused_shards}/{plan.shards}"
                  f" (retries: {info.shard_retries})")
            print(f"merged digest:    "
                  f"{digest(workload_payload(workload))}")
    else:
        config = WorkloadConfig(scale=args.scale, seed=args.seed)
        workload = WorkloadGenerator(config).generate()
    if args.trace_format == "columnar" and args.gzip:
        print("error: --gzip applies to jsonl traces only (columnar "
              "blocks must stay memory-mappable)", file=sys.stderr)
        return 2
    directory = save_workload(workload, args.out, compress=args.gzip,
                              trace_format=args.trace_format)
    print(f"wrote {len(workload.requests)} requests, "
          f"{len(workload.catalog)} files, {len(workload.users)} users "
          f"to {directory} ({args.trace_format})")
    return 0


def _load_or_generate(args: argparse.Namespace):
    from repro.workload import WorkloadConfig, WorkloadGenerator, \
        load_workload
    if getattr(args, "trace", None):
        return load_workload(
            args.trace,
            trace_format=getattr(args, "trace_format", "auto"))
    config = WorkloadConfig(scale=args.scale, seed=args.seed)
    return WorkloadGenerator(config).generate()


def cmd_cloud(args: argparse.Namespace) -> int:
    from repro.cloud import CloudConfig, XuanfengCloud
    from repro.obs import span
    registry = _metrics_registry(args)
    recovery = _recovery_config(args)
    if args.jobs is not None or recovery is not None:
        return _cmd_cloud_sharded(args, registry, recovery)
    workload = _load_or_generate(args)
    injector, policies = _fault_setup(args, registry)
    config = CloudConfig(scale=workload.config.scale,
                         collaborative_cache=not args.no_cache,
                         privileged_paths=not args.no_privileged_paths)
    with span(registry, "cloud_run", scale=workload.config.scale):
        result = XuanfengCloud(config, metrics=registry,
                               faults=injector,
                               policies=policies).run(workload)
    if injector is not None:
        board = injector.scoreboard()
        print(f"faults:           {board['injected']} injected, "
              f"{board['impacts']} impacts, {board['retries']} retries, "
              f"{board['failovers']} failovers, "
              f"{board['recoveries']} recoveries, "
              f"{board['aborts']} aborts")
    fetch = result.fetch_speed_cdf()
    pre = result.attempt_speed_cdf()
    print(f"tasks:            {len(result.tasks)}")
    print(f"cache hit ratio:  {result.cache_hit_ratio:.1%}")
    print(f"request failures: {result.request_failure_ratio:.1%}")
    print(f"pre-dl speed:     median {pre.median / 1e3:.0f} KBps, "
          f"mean {pre.mean / 1e3:.0f} KBps")
    print(f"fetch speed:      median {fetch.median / 1e3:.0f} KBps, "
          f"mean {fetch.mean / 1e3:.0f} KBps")
    print(f"impeded fetches:  {result.impeded_fetch_share:.1%}")
    print(f"rejected fetches: {result.rejection_ratio:.2%}")
    peak = result.bandwidth_series().max()
    print(f"peak burden:      "
          f"{to_gbps(peak) / workload.config.scale:.1f} Gbps "
          f"(rescaled)")
    _emit_metrics(registry, args)
    return 0


def _cmd_cloud_sharded(args: argparse.Namespace, registry,
                       recovery=None) -> int:
    """``repro cloud --jobs N``: the sharded generate+replay pipeline."""
    from repro.scale import ShardPlan, sharded_cloud_stats
    if getattr(args, "trace", None):
        print("error: --jobs regenerates shards itself; "
              "drop --trace", file=sys.stderr)
        return 2
    if args.no_privileged_paths or args.no_cache:
        print("error: ablations (--no-cache, --no-privileged-paths) "
              "need the event-driven engine; drop --jobs",
              file=sys.stderr)
        return 2
    fault_plan = None
    if getattr(args, "faults", None) is not None:
        from repro.faults import FaultPlan
        fault_plan = FaultPlan.from_file(args.faults)
    jobs = args.jobs if args.jobs is not None else 1
    plan = ShardPlan(scale=args.scale, seed=args.seed,
                     shards=args.shards)
    stats, info = sharded_cloud_stats(
        plan, jobs=jobs, metrics=registry, fault_plan=fault_plan,
        policies_on=not args.no_resilience, recovery=recovery)
    print(f"sharded replay:   {plan.shards} shards, {jobs} jobs, "
          f"{info.wall_seconds:.1f}s wall "
          f"({info.work_seconds:.1f}s work)")
    if recovery is not None:
        print(f"reused shards:    {info.reused_shards}/{plan.shards} "
              f"(retries: {info.shard_retries})")
        print(f"merged digest:    {stats.digest()}")
    if fault_plan is not None:
        print(f"faults:           {stats.fault_impacts} impacts, "
              f"{stats.fault_retries} retries, "
              f"{stats.fault_failovers} failovers, "
              f"{stats.fault_recoveries} recoveries, "
              f"{stats.fault_aborts} aborts")
    print(f"tasks:            {stats.tasks}")
    print(f"cache hit ratio:  {stats.cache_hit_ratio:.1%}")
    print(f"request failures: {stats.request_failure_ratio:.1%}")
    print(f"pre-dl speed:     median "
          f"{stats.pre_speed.quantile(0.5) / 1e3:.0f} KBps")
    print(f"fetch speed:      median "
          f"{stats.fetch_speed.quantile(0.5) / 1e3:.0f} KBps")
    print(f"impeded fetches:  {stats.impeded_fetch_share:.1%}")
    print(f"peak burden:      "
          f"{to_gbps(stats.peak_burden) / args.scale:.1f} Gbps "
          f"(rescaled; admission-free)")
    _emit_metrics(registry, args)
    return 0


def cmd_ap(args: argparse.Namespace) -> int:
    from repro.ap import ApBenchmarkRig
    from repro.obs import span
    from repro.workload import sample_benchmark_requests
    registry = _metrics_registry(args)
    recovery = _recovery_config(args)
    workload = _load_or_generate(args)
    injector, policies = _fault_setup(args, registry)
    sample = sample_benchmark_requests(workload, args.sample)
    if args.jobs is not None or recovery is not None:
        if injector is not None:
            print("error: --faults replays sequentially (per-AP fault "
                  "clocks); drop --jobs/--run-dir", file=sys.stderr)
            return 2
        from repro.scale import sharded_ap_replay
        jobs = args.jobs if args.jobs is not None else 1
        requests_trace = None
        if getattr(args, "trace", None):
            # A columnar trace lets every AP worker memory-map its own
            # slice instead of receiving pickled request objects.
            from repro.workload.traceio import REQUESTS_FILE, \
                _columnar_name
            columnar = Path(args.trace) / _columnar_name(REQUESTS_FILE)
            if columnar.exists():
                positions = {id(request): row for row, request
                             in enumerate(workload.requests)}
                requests_trace = (
                    columnar,
                    [positions[id(request)] for request in sample])
        with span(registry, "ap_replay", sample=len(sample)):
            report, info = sharded_ap_replay(
                workload.catalog, sample, jobs=jobs,
                metrics=registry, recovery=recovery,
                requests_trace=requests_trace)
        print(f"parallel replay:   {info.shards} AP workers, "
              f"{jobs} jobs, {info.wall_seconds:.1f}s wall")
        if recovery is not None:
            print(f"reused AP shards:  "
                  f"{info.reused_shards}/{info.shards} "
                  f"(retries: {info.shard_retries})")
    else:
        with span(registry, "ap_replay", sample=len(sample)):
            report = ApBenchmarkRig(
                workload.catalog, metrics=registry, faults=injector,
                policies=policies).replay(sample)
        if injector is not None:
            board = injector.scoreboard()
            print(f"faults:            {board['impacts']} impacts, "
                  f"{board['retries']} retries, "
                  f"{board['recoveries']} recoveries, "
                  f"{board['aborts']} aborts")
    speed = report.speed_cdf()
    delay = report.delay_cdf()
    print(f"replayed:          {len(report.results)} requests on "
          f"{len(report.ap_names())} APs")
    print(f"failure ratio:     {report.failure_ratio:.1%} "
          f"(unpopular: {report.unpopular_failure_ratio:.1%})")
    print(f"pre-dl speed:      median {speed.median / 1e3:.0f} KBps, "
          f"mean {speed.mean / 1e3:.0f} KBps")
    print(f"pre-dl delay:      median {delay.median / MINUTE:.0f} min, "
          f"mean {delay.mean / MINUTE:.0f} min")
    print("failure causes:")
    for cause, share in report.failure_cause_breakdown().items():
        print(f"  {cause:<26s}{share:6.1%}")
    _emit_metrics(registry, args)
    return 0


_AP_CHOICES = {"hiwifi": "HIWIFI_1S", "miwifi": "MIWIFI",
               "newifi": "NEWIFI"}
_DEVICE_CHOICES = {"sd": "SD_CARD_8GB", "usb-flash": "USB_FLASH_8GB",
                   "usb-hdd": "USB_HDD_5400", "sata": "SATA_HDD_1TB"}


def cmd_odr(args: argparse.Namespace) -> int:
    import repro.ap.models as ap_models
    import repro.storage.device as devices
    from repro.cloud.database import ContentDatabase
    from repro.core import OdrService, SmartApInfo, UserContext
    from repro.core.service import parse_link
    from repro.netsim.ip import IpAllocator
    from repro.netsim.isp import ISP
    from repro.storage.filesystem import Filesystem

    protocol, file_id = parse_link(args.link)
    database = ContentDatabase()
    if args.trace is not None:
        # Warm the database with a real week's demand so the decision
        # reflects observed popularity, not just --popularity.
        from repro.workload import load_workload
        workload = load_workload(args.trace,
                                 trace_format=args.trace_format)
        for request in workload.requests:
            database.record_request(request.file_id, request.file_size,
                                    request.request_time)
    for when in range(args.popularity):
        database.record_request(file_id, 1e8, float(when))
    database.set_cached(file_id, args.cached)

    smart_ap = None
    if args.ap:
        hardware = getattr(ap_models, _AP_CHOICES[args.ap])
        device = getattr(devices, _DEVICE_CHOICES[args.device]) \
            if args.device else hardware.default_device
        filesystem = Filesystem(args.filesystem) if args.filesystem \
            else hardware.default_filesystem
        smart_ap = SmartApInfo(hardware, device, filesystem)

    from repro.obs import span
    registry = _metrics_registry(args)
    isp = ISP(args.isp)
    context = UserContext(
        user_id="cli", ip_address=IpAllocator().allocate(isp),
        access_bandwidth=mbps(args.bandwidth)
        if args.bandwidth else None,
        smart_ap=smart_ap)
    with span(registry, "odr_decision", link=args.link):
        response = OdrService(database).handle_request(context, args.link)
    registry.counter("repro_odr_decisions_total",
                     action=response.decision.action.value).inc()
    print(response.explanation)
    _emit_metrics(registry, args)
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as runner_main
    argv = ["--scale", str(args.scale), "--seed", str(args.seed)]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.run_dir is not None:
        argv += ["--run-dir", str(args.run_dir)]
    if args.resume is not None:
        argv += ["--resume", str(args.resume)]
    if args.shard_timeout is not None:
        argv += ["--shard-timeout", str(args.shard_timeout)]
    if args.max_shard_retries is not None:
        argv += ["--max-shard-retries", str(args.max_shard_retries)]
    if args.output:
        argv += ["--output", str(args.output)]
    if args.metrics_out:
        argv += ["--metrics-out", str(args.metrics_out)]
    if args.metrics_format:
        argv += ["--metrics-format", args.metrics_format]
    return runner_main(argv)


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.figures import main as figures_main
    return figures_main(["--scale", str(args.scale),
                         "--outdir", str(args.outdir)])


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.__main__ import main as serve_main
    forwarded = ["--host", args.host, "--port", str(args.port),
                 "--engine", args.engine,
                 "--workers", str(args.workers),
                 "--max-inflight", str(args.max_inflight),
                 "--policy", args.policy,
                 "--grace", str(args.grace)]
    if args.no_batch:
        forwarded.append("--no-batch")
    if args.no_resilience:
        forwarded.append("--no-resilience")
    if args.supervise:
        forwarded.append("--supervise")
    if args.max_workers is not None:
        forwarded += ["--max-workers", str(args.max_workers)]
    if args.faults is not None:
        forwarded += ["--faults", str(args.faults)]
    if args.quiet:
        forwarded.append("--quiet")
    return serve_main(forwarded)


def cmd_backends(args: argparse.Namespace) -> int:
    from repro.backends.__main__ import main as backends_main
    forwarded = ["--scale", str(args.scale), "--seed", str(args.seed),
                 "--limit", str(args.limit),
                 "--shards", str(args.shards)]
    if args.jobs is not None:
        forwarded += ["--jobs", str(args.jobs)]
    for combo in args.combo or ():
        forwarded += ["--combo", combo]
    if args.deadline_hours is not None:
        forwarded += ["--deadline-hours", str(args.deadline_hours)]
    if args.faults:
        forwarded.append("--faults")
    if args.json:
        forwarded.append("--json")
    if args.out is not None:
        forwarded += ["--out", str(args.out)]
    if args.quiet:
        forwarded.append("--quiet")
    return backends_main(forwarded)


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.loadgen.__main__ import main as loadgen_main
    return loadgen_main(list(args.loadgen_args))


def _forward_loadgen(argv: list[str] | None) -> list[str] | None:
    """``repro loadgen ...`` forwards everything verbatim (argparse's
    REMAINDER refuses leading optionals, so route before parsing)."""
    argv = sys.argv[1:] if argv is None else list(argv)
    return argv[1:] if argv[:1] == ["loadgen"] else None


def cmd_runs_gc(args: argparse.Namespace) -> int:
    from repro.recovery.gc import collect, discover_runs, plan_gc
    runs = discover_runs(args.root)
    if not runs:
        print(f"runs gc: no run directories under {args.root}")
        return 0
    kept, doomed = plan_gc(runs, keep_last=args.keep_last,
                           stale_hours=args.stale_hours)
    for run in kept:
        print(f"  keep   {run.path}  [{run.status}]")
    verb = "delete" if args.delete else "would delete"
    for run in doomed:
        print(f"  {verb} {run.path}  [{run.status}] "
              f"({run.bytes / 1e6:.1f} MB)")
    reclaimed = collect(doomed, delete=args.delete)
    if doomed:
        print(f"runs gc: {verb} {len(doomed)} run(s), "
              f"{reclaimed / 1e6:.1f} MB"
              + ("" if args.delete
                 else " (dry run; pass --delete to reclaim)"))
    else:
        print("runs gc: nothing to collect")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Offline Downloading in China: A "
                    "Comparative Study' (IMC 2015)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="synthesise and save a workload week")
    _add_scale(generate)
    _add_jobs(generate)
    generate.add_argument("--out", type=Path, default=Path("trace"))
    generate.add_argument("--gzip", action="store_true",
                          help="write gzipped trace files (*.jsonl.gz)")
    _add_trace_format(generate, write=True)
    _add_recovery(generate)
    _add_profile(generate)
    generate.set_defaults(func=cmd_generate)

    cloud = subparsers.add_parser(
        "cloud", help="run the cloud system over a week")
    _add_scale(cloud)
    _add_jobs(cloud)
    cloud.add_argument("--trace", type=Path, default=None,
                       help="load a saved workload instead of "
                            "generating one")
    _add_trace_format(cloud)
    cloud.add_argument("--no-cache", action="store_true",
                       help="disable collaborative caching (ablation)")
    cloud.add_argument("--no-privileged-paths", action="store_true",
                       help="disable ISP-aware path selection (ablation)")
    _add_recovery(cloud)
    _add_faults(cloud)
    _add_metrics(cloud)
    _add_profile(cloud)
    cloud.set_defaults(func=cmd_cloud)

    ap = subparsers.add_parser(
        "ap", help="replay the smart-AP benchmark")
    _add_scale(ap)
    _add_jobs(ap, shards=False)
    ap.add_argument("--trace", type=Path, default=None)
    _add_trace_format(ap)
    ap.add_argument("--sample", type=int, default=1000)
    _add_recovery(ap)
    _add_faults(ap)
    _add_metrics(ap)
    _add_profile(ap)
    ap.set_defaults(func=cmd_ap)

    odr = subparsers.add_parser(
        "odr", help="ask ODR for one redirection decision")
    odr.add_argument("link", help="HTTP/FTP/magnet/ed2k link")
    odr.add_argument("--popularity", type=int, default=0,
                     help="observed weekly request count of the file")
    odr.add_argument("--trace", type=Path, default=None,
                     help="warm the content database from a saved "
                          "workload trace before deciding")
    _add_trace_format(odr)
    odr.add_argument("--cached", action="store_true",
                     help="the file is in the cloud cache")
    odr.add_argument("--bandwidth", type=float, default=None,
                     help="access bandwidth in Mbps")
    odr.add_argument("--isp", default="unicom",
                     choices=["unicom", "telecom", "mobile", "cernet",
                              "other"])
    odr.add_argument("--ap", choices=sorted(_AP_CHOICES), default=None)
    odr.add_argument("--device", choices=sorted(_DEVICE_CHOICES),
                     default=None)
    odr.add_argument("--filesystem", choices=["fat", "ntfs", "ext4"],
                     default=None)
    _add_metrics(odr)
    _add_profile(odr)
    odr.set_defaults(func=cmd_odr)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate every paper comparison")
    _add_scale(experiments, default=0.02)
    _add_jobs(experiments, shards=False)
    experiments.add_argument("--output", type=Path, default=None)
    _add_recovery(experiments)
    _add_metrics(experiments)
    experiments.set_defaults(func=cmd_experiments)

    figures = subparsers.add_parser(
        "figures", help="render the paper's figures as SVG")
    _add_scale(figures, default=0.02)
    figures.add_argument("--outdir", type=Path,
                         default=Path("figures"))
    figures.set_defaults(func=cmd_figures)

    serve = subparsers.add_parser(
        "serve", help="run the ODR web service (like odr.thucloud.com)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8034)
    serve.add_argument("--engine", choices=["async", "thread"],
                       default="async",
                       help="serving engine (default %(default)s)")
    serve.add_argument("--workers", type=int, default=1,
                       help="async engine only: SO_REUSEPORT worker "
                            "processes")
    serve.add_argument("--max-inflight", type=int, default=128,
                       help="admission-control cap on concurrent "
                            "requests (503 + Retry-After past it)")
    serve.add_argument("--policy", default="odr",
                       help="default routing policy (a registry "
                            "strategy name; override per request "
                            "with ?policy=...)")
    serve.add_argument("--no-batch", action="store_true",
                       help="disable same-tick /decide coalescing")
    serve.add_argument("--supervise", action="store_true",
                       help="parent supervisor keeps the worker pool "
                            "at capacity (health probes, backoff "
                            "restarts); needs --workers >= 2")
    serve.add_argument("--max-workers", type=int, default=None,
                       help="with --supervise: elastic ceiling the "
                            "pool may grow to under shed pressure")
    serve.add_argument("--no-resilience", action="store_true",
                       help="disable the backend circuit breaker "
                            "(503 + Retry-After load shedding)")
    serve.add_argument("--faults", type=Path, default=None,
                       help="fault plan injected into the serving tier")
    serve.add_argument("--grace", type=float, default=10.0)
    serve.add_argument("--quiet", action="store_true")
    serve.set_defaults(func=cmd_serve)

    backends = subparsers.add_parser(
        "backends", help="compare (backend set, policy) combinations "
                         "on one deterministic trace")
    _add_scale(backends)
    backends.add_argument("--limit", type=int, default=400,
                          help="trace rows to replay "
                               "(default %(default)s)")
    backends.add_argument("--shards", type=int, default=4,
                          help="content shards; any value yields the "
                               "same scorecard (default %(default)s)")
    backends.add_argument("--jobs", type=int, default=None,
                          help="worker processes (results are "
                               "identical at any job count)")
    backends.add_argument("--combo", action="append", metavar="NAME",
                          help="run only combos whose name contains "
                               "NAME (repeatable)")
    backends.add_argument("--deadline-hours", type=float, default=None,
                          help="delay-aware policy deadline in hours "
                               "(default 8)")
    backends.add_argument("--faults", action="store_true",
                          help="route under the default chaos plan")
    backends.add_argument("--json", action="store_true",
                          help="print the JSON scorecard")
    backends.add_argument("--out", type=Path, default=None,
                          help="also write the JSON scorecard to PATH")
    backends.add_argument("--quiet", action="store_true",
                          help="print only the scorecard digest")
    backends.set_defaults(func=cmd_backends)

    loadgen = subparsers.add_parser(
        "loadgen", help="replay the trace as live HTTP load "
                        "(see python -m repro.loadgen --help)")
    loadgen.add_argument("loadgen_args", nargs=argparse.REMAINDER,
                         help="arguments forwarded to "
                              "python -m repro.loadgen")
    loadgen.set_defaults(func=cmd_loadgen)

    runs = subparsers.add_parser(
        "runs", help="manage durable run directories")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    gc = runs_sub.add_parser(
        "gc", help="collect complete and stale run directories "
                   "(dry run unless --delete)")
    gc.add_argument("--root", type=Path, default=Path("runs"),
                    help="directory holding run dirs "
                         "(default %(default)s)")
    gc.add_argument("--keep-last", type=int, default=3,
                    help="retain the N newest eligible runs "
                         "(default %(default)s)")
    gc.add_argument("--stale-hours", type=float, default=24.0,
                    help="non-complete runs younger than this are "
                         "resumable and never collected "
                         "(default %(default)s)")
    gc.add_argument("--delete", action="store_true",
                    help="actually delete (default is a dry run)")
    gc.set_defaults(func=cmd_runs_gc)

    return parser


def _dispatch(args: argparse.Namespace) -> int:
    """Run a subcommand, mapping recovery outcomes to exit codes.

    An interrupted durable run exits 130 (like a plain Ctrl-C) and a
    lost-shard abort exits 3 -- both after printing how to ``--resume``
    the checkpointed run directory; run-dir misuse exits 2.
    """
    from repro.recovery import RunDirError, RunInterrupted, \
        ShardLostError
    try:
        return args.func(args)
    except RunInterrupted as error:
        print(f"interrupted: {error}", file=sys.stderr)
        if error.run_dir is not None:
            print(f"resume with: --resume {error.run_dir}",
                  file=sys.stderr)
        return 130
    except ShardLostError as error:
        print(f"error: {error}", file=sys.stderr)
        if error.run_dir is not None:
            print("completed shards are checkpointed; resume with: "
                  f"--resume {error.run_dir}", file=sys.stderr)
        return 3
    except RunDirError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    loadgen_argv = _forward_loadgen(argv)
    if loadgen_argv is not None:
        from repro.loadgen.__main__ import main as loadgen_main
        return loadgen_main(loadgen_argv)
    args = build_parser().parse_args(argv)
    if getattr(args, "profile", None) is None:
        return _dispatch(args)
    import cProfile
    destination = _profile_destination(args)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = _dispatch(args)
    finally:
        profiler.disable()
        destination.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(destination)
        print(f"profile written to {destination} "
              f"(inspect with `python -m pstats {destination}`)",
              file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
