"""Distribution comparison utilities.

The paper's Figures 13/14 argue by *overlaying* CDFs ("just a bit
lower", "a bit longer"); these helpers make such claims quantitative:
the two-sample Kolmogorov-Smirnov distance, quantile-ratio profiles,
and a compact verdict object used by tests and benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cdf import CDF


def ks_distance(first: CDF, second: CDF) -> float:
    """Two-sample Kolmogorov-Smirnov statistic: sup |F1(x) - F2(x)|."""
    grid = np.union1d(first.values, second.values)
    f1 = np.searchsorted(first.values, grid, side="right") / len(first)
    f2 = np.searchsorted(second.values, grid, side="right") / \
        len(second)
    return float(np.max(np.abs(f1 - f2)))


def quantile_ratios(first: CDF, second: CDF,
                    quantiles=(0.1, 0.25, 0.5, 0.75, 0.9)
                    ) -> dict[float, float]:
    """first's quantile divided by second's, per requested quantile.

    Ratios near 1 across the board mean the distributions share their
    shape (the Fig. 13 claim); a ratio dipping only at the top reveals
    tail truncation (the AP write-path ceiling).
    """
    ratios = {}
    for q in quantiles:
        denominator = second.quantile(q)
        ratios[q] = first.quantile(q) / denominator \
            if denominator > 0 else float("inf")
    return ratios


@dataclass(frozen=True)
class SimilarityVerdict:
    """A compact summary of how two distributions relate."""

    ks: float
    median_ratio: float
    mean_ratio: float
    max_ratio: float

    @property
    def similar_bodies(self) -> bool:
        """Medians within ~2x and KS below 0.35: the same order of
        magnitude with overlapping CDFs -- what the paper means by the
        AP curves sitting "just a bit" off the cloud's."""
        return self.ks < 0.35 and 0.55 < self.median_ratio < 1.8

    @property
    def truncated_tail(self) -> bool:
        """The first distribution's maximum falls well short of the
        second's -- the Fig. 13 write-path signature."""
        return self.max_ratio < 0.75


def compare(first: CDF, second: CDF) -> SimilarityVerdict:
    """Summarise ``first`` against ``second`` (ratios are first/second)."""
    return SimilarityVerdict(
        ks=ks_distance(first, second),
        median_ratio=first.median / max(second.median, 1e-12),
        mean_ratio=first.mean / max(second.mean, 1e-12),
        max_ratio=first.max / max(second.max, 1e-12))
