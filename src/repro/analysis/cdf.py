"""Empirical CDFs, the lingua franca of the paper's figures.

Figures 5, 8, 9, 13, 14, and 17 are all CDF plots; :class:`CDF` holds the
sorted sample and answers the questions those figures encode: quantiles,
the probability below a threshold (e.g. the share of fetches under
125 KBps), and evenly spaced (x, y) points for rendering or export.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CDF:
    """An empirical distribution over a 1-D sample."""

    values: np.ndarray  # sorted ascending

    def __post_init__(self):
        if self.values.ndim != 1:
            raise ValueError("CDF expects a 1-D sample")
        if len(self.values) == 0:
            raise ValueError("CDF of an empty sample is undefined")

    def __len__(self) -> int:
        return len(self.values)

    @property
    def min(self) -> float:
        return float(self.values[0])

    @property
    def max(self) -> float:
        return float(self.values[-1])

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        return float(np.quantile(self.values, q))

    def probability_below(self, threshold: float) -> float:
        """P(X < threshold) -- e.g. the impeded-fetch share at 125 KBps."""
        return float(np.searchsorted(self.values, threshold,
                                     side="left") / len(self.values))

    def probability_at_most(self, threshold: float) -> float:
        """P(X <= threshold)."""
        return float(np.searchsorted(self.values, threshold,
                                     side="right") / len(self.values))

    def points(self, count: int = 100) -> list[tuple[float, float]]:
        """``count`` evenly spaced (value, cumulative probability) points."""
        if count < 2:
            raise ValueError("need at least two points")
        qs = np.linspace(0.0, 1.0, count)
        return [(float(np.quantile(self.values, q)), float(q)) for q in qs]

    def describe(self, scale: float = 1.0, unit: str = "") -> str:
        """Min/median/mean/max line in the style of the paper's captions."""
        return (f"Min: {self.min / scale:.4g}{unit}, "
                f"Median: {self.median / scale:.4g}{unit}, "
                f"Average: {self.mean / scale:.4g}{unit}, "
                f"Max: {self.max / scale:.4g}{unit}")


def empirical_cdf(sample) -> CDF:
    """Build a :class:`CDF` from any iterable of numbers."""
    values = np.sort(np.asarray(list(sample), dtype=float))
    return CDF(values)
