"""Time-series binning for bandwidth-burden plots (Figure 11).

Flows are intervals ``(start, end, rate)``; binning integrates each
flow's rate over its overlap with every bin, yielding the time-average
committed bandwidth per bin -- the paper's 5-minute-interval upload
burden series.
"""

from __future__ import annotations

import numpy as np


def bin_rate_series(flows, bin_width: float,
                    horizon: float) -> np.ndarray:
    """Average aggregate rate per bin over ``[0, horizon)``.

    ``flows`` is an iterable of ``(start, end, rate)`` triples in
    seconds / B/s.  Returns an array of length ``ceil(horizon/bin_width)``
    in B/s.
    """
    if bin_width <= 0 or horizon <= 0:
        raise ValueError("bin_width and horizon must be positive")
    n_bins = int(np.ceil(horizon / bin_width))
    totals = np.zeros(n_bins)
    for start, end, rate in flows:
        if end <= start or rate <= 0:
            continue
        start = max(float(start), 0.0)
        end = min(float(end), horizon)
        if end <= start:
            continue
        first = int(start / bin_width)
        last = min(int((end - 1e-12) / bin_width), n_bins - 1)
        for index in range(first, last + 1):
            lo = max(start, index * bin_width)
            hi = min(end, (index + 1) * bin_width)
            totals[index] += rate * max(0.0, hi - lo)
    return totals / bin_width


def peak_of_series(series: np.ndarray) -> tuple[int, float]:
    """(bin index, value) of the series maximum."""
    series = np.asarray(series, dtype=float)
    if len(series) == 0:
        raise ValueError("empty series has no peak")
    index = int(np.argmax(series))
    return index, float(series[index])
