"""Measurement-analysis toolkit used by experiments and benches."""

from repro.analysis.cdf import CDF, empirical_cdf
from repro.analysis.fitting import (
    FitResult,
    average_relative_error,
    fit_se,
    fit_zipf,
)
from repro.analysis.stats import SummaryStats, summarize
from repro.analysis.timeseries import bin_rate_series, peak_of_series
from repro.analysis.tables import TextTable
from repro.analysis.compare import (
    SimilarityVerdict,
    compare,
    ks_distance,
    quantile_ratios,
)
from repro.analysis.svg import SvgFigure

__all__ = [
    "CDF",
    "empirical_cdf",
    "FitResult",
    "fit_zipf",
    "fit_se",
    "average_relative_error",
    "SummaryStats",
    "summarize",
    "bin_rate_series",
    "peak_of_series",
    "TextTable",
    "ks_distance",
    "quantile_ratios",
    "compare",
    "SimilarityVerdict",
    "SvgFigure",
]
