"""Summary statistics helpers shared by experiments and reports."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """The min/median/mean/max quartet the paper quotes per figure."""

    count: int
    minimum: float
    median: float
    mean: float
    maximum: float
    p25: float
    p75: float
    p90: float
    std: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "min": self.minimum,
            "median": self.median,
            "mean": self.mean,
            "max": self.maximum,
            "p25": self.p25,
            "p75": self.p75,
            "p90": self.p90,
            "std": self.std,
        }


def summarize(sample) -> SummaryStats:
    """Compute :class:`SummaryStats` over an iterable of numbers."""
    values = np.asarray(list(sample), dtype=float)
    if len(values) == 0:
        raise ValueError("cannot summarise an empty sample")
    return SummaryStats(
        count=len(values),
        minimum=float(values.min()),
        median=float(np.median(values)),
        mean=float(values.mean()),
        maximum=float(values.max()),
        p25=float(np.quantile(values, 0.25)),
        p75=float(np.quantile(values, 0.75)),
        p90=float(np.quantile(values, 0.90)),
        std=float(values.std()),
    )


def share_below(sample, threshold: float) -> float:
    """Fraction of the sample strictly below ``threshold``."""
    values = np.asarray(list(sample), dtype=float)
    if len(values) == 0:
        raise ValueError("cannot compute a share over an empty sample")
    return float((values < threshold).mean())
