"""A dependency-free SVG chart renderer for the paper's figures.

matplotlib is deliberately not a dependency; the handful of plot styles
the paper uses -- CDF line charts, log-log scatter+fit plots, and the
Figure 11 time series -- are rendered directly as SVG.  The output is
plain XML text, viewable in any browser and diffable in git.

The API is intentionally small: build a :class:`SvgFigure`, add line or
scatter series against linear or log axes, and render.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

#: A colour cycle that survives greyscale printing (paper-ish).
PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#8c564b",
           "#e377c2")


def _fmt(value: float) -> str:
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _tick_label(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e9:
        return f"{value / 1e9:g}G"
    if magnitude >= 1e6:
        return f"{value / 1e6:g}M"
    if magnitude >= 1e3:
        return f"{value / 1e3:g}k"
    if magnitude < 0.01:
        return f"{value:.0e}"
    return f"{value:g}"


@dataclass
class Series:
    """One plotted series."""

    xs: Sequence[float]
    ys: Sequence[float]
    label: str
    color: str
    kind: str = "line"          # "line" | "scatter"
    dash: Optional[str] = None


class Axis:
    """A linear or log axis mapping data to pixel coordinates."""

    def __init__(self, lo: float, hi: float, pixels: tuple[float, float],
                 log: bool = False):
        if log and (lo <= 0 or hi <= 0):
            raise ValueError("log axes need positive bounds")
        if hi <= lo:
            hi = lo + 1.0
        self.lo, self.hi = lo, hi
        self.pixels = pixels
        self.log = log

    def project(self, value: float) -> float:
        if self.log:
            value = max(value, self.lo)
            fraction = (math.log10(value) - math.log10(self.lo)) / \
                (math.log10(self.hi) - math.log10(self.lo))
        else:
            fraction = (value - self.lo) / (self.hi - self.lo)
        start, end = self.pixels
        return start + fraction * (end - start)

    def ticks(self, count: int = 5) -> list[float]:
        if self.log:
            lo_exp = math.floor(math.log10(self.lo))
            hi_exp = math.ceil(math.log10(self.hi))
            return [10.0 ** e for e in range(lo_exp, hi_exp + 1)]
        step = (self.hi - self.lo) / (count - 1)
        return [self.lo + i * step for i in range(count)]


class SvgFigure:
    """Builder for one chart."""

    WIDTH, HEIGHT = 640, 420
    MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 70, 20, 40, 55

    def __init__(self, title: str, xlabel: str, ylabel: str,
                 xlog: bool = False, ylog: bool = False):
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.xlog = xlog
        self.ylog = ylog
        self.series: list[Series] = []
        self._hlines: list[tuple[float, str, str]] = []

    # -- data ---------------------------------------------------------------

    def add_line(self, xs, ys, label: str,
                 color: Optional[str] = None,
                 dash: Optional[str] = None) -> None:
        self._add(xs, ys, label, color, "line", dash)

    def add_scatter(self, xs, ys, label: str,
                    color: Optional[str] = None) -> None:
        self._add(xs, ys, label, color, "scatter", None)

    def add_bars(self, xs, ys, label: str,
                 color: Optional[str] = None) -> None:
        """Grouped bars: series added with ``add_bars`` at the same x
        positions are rendered side by side (Figure 16 style)."""
        if self.xlog or self.ylog:
            raise ValueError("bar series need linear axes")
        self._add(xs, ys, label, color, "bars", None)

    def add_hline(self, y: float, label: str,
                  color: str = "#444444") -> None:
        self._hlines.append((y, label, color))

    def _add(self, xs, ys, label, color, kind, dash) -> None:
        xs, ys = list(xs), list(ys)
        if len(xs) != len(ys):
            raise ValueError("xs and ys must align")
        if not xs:
            raise ValueError("series needs at least one point")
        color = color or PALETTE[len(self.series) % len(PALETTE)]
        self.series.append(Series(xs, ys, label, color, kind, dash))

    # -- rendering ------------------------------------------------------------

    def _bounds(self) -> tuple[float, float, float, float]:
        xs = [x for s in self.series for x in s.xs]
        ys = [y for s in self.series for y in s.ys]
        ys.extend(y for y, _label, _color in self._hlines)
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if self.xlog:
            x_lo = max(x_lo, min(x for x in xs if x > 0))
        if self.ylog:
            y_lo = max(y_lo, min(y for y in ys if y > 0))
        if not self.ylog:
            y_lo = min(y_lo, 0.0)
            y_hi *= 1.05
        return x_lo, x_hi, y_lo, y_hi

    def render(self) -> str:
        if not self.series:
            raise ValueError("figure has no series")
        x_lo, x_hi, y_lo, y_hi = self._bounds()
        x_axis = Axis(x_lo, x_hi,
                      (self.MARGIN_L, self.WIDTH - self.MARGIN_R),
                      log=self.xlog)
        y_axis = Axis(y_lo, y_hi,
                      (self.HEIGHT - self.MARGIN_B, self.MARGIN_T),
                      log=self.ylog)

        parts: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.WIDTH}" height="{self.HEIGHT}" '
            f'viewBox="0 0 {self.WIDTH} {self.HEIGHT}" '
            f'font-family="sans-serif" font-size="12">',
            f'<rect width="{self.WIDTH}" height="{self.HEIGHT}" '
            f'fill="white"/>',
            f'<text x="{self.WIDTH / 2}" y="22" text-anchor="middle" '
            f'font-size="15" font-weight="bold">'
            f'{_escape(self.title)}</text>',
        ]
        parts.extend(self._render_grid(x_axis, y_axis))
        parts.extend(self._render_series(x_axis, y_axis))
        parts.extend(self._render_hlines(x_axis, y_axis))
        parts.extend(self._render_legend())
        parts.append("</svg>")
        return "\n".join(parts)

    def _render_grid(self, x_axis: Axis, y_axis: Axis) -> list[str]:
        parts = []
        plot_bottom = self.HEIGHT - self.MARGIN_B
        for tick in x_axis.ticks():
            px = x_axis.project(tick)
            parts.append(f'<line x1="{_fmt(px)}" y1="{self.MARGIN_T}" '
                         f'x2="{_fmt(px)}" y2="{plot_bottom}" '
                         f'stroke="#dddddd"/>')
            parts.append(f'<text x="{_fmt(px)}" y="{plot_bottom + 18}" '
                         f'text-anchor="middle">{_tick_label(tick)}'
                         f'</text>')
        for tick in y_axis.ticks():
            py = y_axis.project(tick)
            parts.append(f'<line x1="{self.MARGIN_L}" y1="{_fmt(py)}" '
                         f'x2="{self.WIDTH - self.MARGIN_R}" '
                         f'y2="{_fmt(py)}" stroke="#dddddd"/>')
            parts.append(f'<text x="{self.MARGIN_L - 8}" '
                         f'y="{_fmt(py + 4)}" text-anchor="end">'
                         f'{_tick_label(tick)}</text>')
        parts.append(
            f'<text x="{self.WIDTH / 2}" y="{self.HEIGHT - 12}" '
            f'text-anchor="middle">{_escape(self.xlabel)}</text>')
        parts.append(
            f'<text x="18" y="{self.HEIGHT / 2}" text-anchor="middle" '
            f'transform="rotate(-90 18 {self.HEIGHT / 2})">'
            f'{_escape(self.ylabel)}</text>')
        return parts

    def _render_series(self, x_axis: Axis, y_axis: Axis) -> list[str]:
        parts = []
        bar_series = [s for s in self.series if s.kind == "bars"]
        for series in self.series:
            points = [(x_axis.project(x), y_axis.project(y))
                      for x, y in zip(series.xs, series.ys)]
            if series.kind == "bars":
                parts.extend(self._render_bars(series, bar_series,
                                               points, y_axis))
            elif series.kind == "scatter":
                for px, py in points:
                    parts.append(f'<circle cx="{_fmt(px)}" '
                                 f'cy="{_fmt(py)}" r="2.5" '
                                 f'fill="{series.color}" '
                                 f'fill-opacity="0.6"/>')
            else:
                path = " ".join(
                    f"{'M' if i == 0 else 'L'}{_fmt(px)},{_fmt(py)}"
                    for i, (px, py) in enumerate(points))
                dash = f' stroke-dasharray="{series.dash}"' \
                    if series.dash else ""
                parts.append(f'<path d="{path}" fill="none" '
                             f'stroke="{series.color}" '
                             f'stroke-width="2"{dash}/>')
        return parts

    def _render_bars(self, series: Series, bar_series: list[Series],
                     points: list[tuple[float, float]],
                     y_axis: Axis) -> list[str]:
        group_size = max(len(bar_series), 1)
        group_index = bar_series.index(series)
        # Bar width from the tightest x spacing (or a default slice).
        xs = sorted({px for px, _py in points})
        spacing = min((b - a for a, b in zip(xs, xs[1:])),
                      default=80.0)
        bar_width = max(4.0, 0.7 * spacing / group_size)
        baseline = y_axis.project(max(y_axis.lo, 0.0))
        parts = []
        for px, py in points:
            left = px - 0.35 * spacing + group_index * bar_width
            height = abs(baseline - py)
            top = min(py, baseline)
            parts.append(f'<rect x="{_fmt(left)}" y="{_fmt(top)}" '
                         f'width="{_fmt(bar_width)}" '
                         f'height="{_fmt(height)}" '
                         f'fill="{series.color}" '
                         f'fill-opacity="0.85"/>')
        return parts

    def _render_hlines(self, x_axis: Axis, y_axis: Axis) -> list[str]:
        parts = []
        for y, label, color in self._hlines:
            py = y_axis.project(y)
            parts.append(f'<line x1="{self.MARGIN_L}" y1="{_fmt(py)}" '
                         f'x2="{self.WIDTH - self.MARGIN_R}" '
                         f'y2="{_fmt(py)}" stroke="{color}" '
                         f'stroke-width="1.5" '
                         f'stroke-dasharray="6,4"/>')
            parts.append(f'<text x="{self.WIDTH - self.MARGIN_R - 4}" '
                         f'y="{_fmt(py - 5)}" text-anchor="end" '
                         f'fill="{color}">{_escape(label)}</text>')
        return parts

    def _render_legend(self) -> list[str]:
        parts = []
        x = self.MARGIN_L + 12
        y = self.MARGIN_T + 8
        for series in self.series:
            parts.append(f'<rect x="{x}" y="{y}" width="18" height="4" '
                         f'fill="{series.color}"/>')
            parts.append(f'<text x="{x + 24}" y="{y + 6}">'
                         f'{_escape(series.label)}</text>')
            y += 18
        return parts


def _escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;") \
        .replace(">", "&gt;")
