"""Popularity-distribution fitting: Zipf vs stretched exponential.

Reproduces the paper's Figures 6 and 7.  With ``x`` the popularity rank
and ``y`` the weekly request count:

* Zipf:  ``log(y) = -a1 * log(x) + b1``  (a line in log-log space);
* SE:    ``y^c   = -a2 * log(x) + b2``  (a line in log(x) vs y^c space,
  the stretched-exponential rank form of Guo et al., PODC'08).

Both are least-squares line fits in their respective transformed spaces,
and fit quality is the *average relative error* in the untransformed
popularity domain, exactly the metric the paper quotes (15.3% for Zipf,
13.7% for SE).  The SE exponent ``c`` is chosen by scanning a small grid
(the paper fixes c = 0.01).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FitResult:
    """A fitted rank-popularity model and its quality."""

    model: str
    a: float
    b: float
    c: float                      # SE exponent; 0 for Zipf
    average_relative_error: float

    def predict(self, ranks: np.ndarray) -> np.ndarray:
        """Model-predicted popularity at the given ranks."""
        ranks = np.asarray(ranks, dtype=float)
        if self.model == "zipf":
            return np.exp(-self.a * np.log(ranks) + self.b)
        transformed = -self.a * np.log(ranks) + self.b
        return np.clip(transformed, 1e-12, None) ** (1.0 / self.c)


def average_relative_error(actual: np.ndarray,
                           predicted: np.ndarray) -> float:
    """Mean of |predicted - actual| / actual, the paper's fit metric."""
    actual = np.asarray(actual, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if actual.shape != predicted.shape:
        raise ValueError("shape mismatch between actual and predicted")
    if np.any(actual <= 0):
        raise ValueError("actual popularities must be positive")
    return float(np.mean(np.abs(predicted - actual) / actual))


def _validate(ranks: np.ndarray, popularity: np.ndarray) -> tuple[
        np.ndarray, np.ndarray]:
    ranks = np.asarray(ranks, dtype=float)
    popularity = np.asarray(popularity, dtype=float)
    if ranks.shape != popularity.shape or ranks.ndim != 1:
        raise ValueError("ranks and popularity must be 1-D and aligned")
    if len(ranks) < 3:
        raise ValueError("need at least three points to fit")
    if np.any(ranks <= 0) or np.any(popularity <= 0):
        raise ValueError("ranks and popularity must be positive")
    return ranks, popularity


def fit_zipf(ranks: np.ndarray, popularity: np.ndarray) -> FitResult:
    """Least-squares Zipf fit in log-log space."""
    ranks, popularity = _validate(ranks, popularity)
    log_x, log_y = np.log(ranks), np.log(popularity)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    result = FitResult(model="zipf", a=-float(slope), b=float(intercept),
                       c=0.0, average_relative_error=0.0)
    error = average_relative_error(popularity, result.predict(ranks))
    return FitResult(model="zipf", a=result.a, b=result.b, c=0.0,
                     average_relative_error=error)


def fit_se(ranks: np.ndarray, popularity: np.ndarray,
           c: float | None = None) -> FitResult:
    """Stretched-exponential fit; scans ``c`` over a grid unless given."""
    ranks, popularity = _validate(ranks, popularity)
    candidates = [c] if c is not None else \
        [0.005, 0.0075, 0.01, 0.015, 0.02, 0.03, 0.05]
    best: FitResult | None = None
    for exponent in candidates:
        if exponent <= 0:
            raise ValueError("SE exponent c must be positive")
        transformed = popularity ** exponent
        slope, intercept = np.polyfit(np.log(ranks), transformed, 1)
        candidate = FitResult(model="se", a=-float(slope),
                              b=float(intercept), c=float(exponent),
                              average_relative_error=0.0)
        error = average_relative_error(popularity,
                                       candidate.predict(ranks))
        candidate = FitResult(model="se", a=candidate.a, b=candidate.b,
                              c=candidate.c,
                              average_relative_error=error)
        if best is None or candidate.average_relative_error < \
                best.average_relative_error:
            best = candidate
    assert best is not None
    return best
