"""Plain-text table rendering for bench output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Any, Sequence


class TextTable:
    """A minimal monospace table builder.

    Benches print these so their output reads like the paper's tables;
    cells are stringified with ``format(value, spec)`` when a format spec
    is attached to the column.
    """

    def __init__(self, columns: Sequence[str],
                 formats: Sequence[str] | None = None):
        if not columns:
            raise ValueError("table needs at least one column")
        if formats is not None and len(formats) != len(columns):
            raise ValueError("formats must align with columns")
        self.columns = list(columns)
        self.formats = list(formats) if formats is not None else \
            [""] * len(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}")
        rendered = []
        for cell, spec in zip(cells, self.formats):
            if isinstance(cell, str) or not spec:
                rendered.append(str(cell))
            else:
                rendered.append(format(cell, spec))
        self.rows.append(rendered)

    def render(self) -> str:
        widths = [len(name) for name in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [
            "  ".join(name.ljust(width)
                      for name, width in zip(self.columns, widths)),
            "  ".join("-" * width for width in widths),
        ]
        for row in self.rows:
            lines.append("  ".join(cell.rjust(width)
                                   for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
