"""File-transfer protocols and their traffic-overhead models.

Protocol mix in the Xuanfeng workload (paper section 3): BitTorrent 68%,
eMule 19%, HTTP/FTP 13%.  Traffic overhead (section 4.1):

* HTTP/FTP downloads cost 7-10% more traffic than the file size (packet
  and protocol headers);
* P2P downloads cost 50-150% more because of the tit-for-tat policy (a
  downloading peer must simultaneously upload), with the Xuanfeng-wide
  aggregate landing at 196% of total file size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class Protocol(enum.Enum):
    """A file-transfer protocol appearing in the workload trace."""

    HTTP = "http"
    FTP = "ftp"
    BITTORRENT = "bittorrent"
    EMULE = "emule"

    @property
    def is_p2p(self) -> bool:
        """True for swarm-based protocols (BitTorrent, eMule)."""
        return self in (Protocol.BITTORRENT, Protocol.EMULE)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class OverheadRange:
    """Uniform multiplicative traffic overhead: traffic = size * factor."""

    low: float
    high: float

    def __post_init__(self):
        if not 1.0 <= self.low <= self.high:
            raise ValueError(f"invalid overhead range [{self.low}, "
                             f"{self.high}]")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))


class ProtocolModel:
    """Traffic-cost model per protocol.

    The P2P range [1.5, 2.5] averages 2.0, reproducing the paper's
    measured 196% aggregate pre-downloading traffic; the client-server
    range [1.07, 1.10] reproduces the 7-10% header overhead.
    """

    def __init__(self,
                 client_server: OverheadRange = OverheadRange(1.07, 1.10),
                 p2p: OverheadRange = OverheadRange(1.50, 2.50)):
        self.client_server = client_server
        self.p2p = p2p

    def overhead_range(self, protocol: Protocol) -> OverheadRange:
        return self.p2p if protocol.is_p2p else self.client_server

    def sample_traffic(self, protocol: Protocol, size: float,
                       rng: np.random.Generator,
                       completed_fraction: float = 1.0) -> float:
        """Traffic consumed downloading ``completed_fraction`` of ``size``.

        Partial (failed) downloads pay overhead on the bytes actually
        moved, not on the whole file.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        if not 0.0 <= completed_fraction <= 1.0:
            raise ValueError("completed_fraction must be in [0, 1]")
        factor = self.overhead_range(protocol).sample(rng)
        return size * completed_fraction * factor


_DEFAULT_MODEL: ProtocolModel | None = None


def default_protocol_model() -> ProtocolModel:
    """Shared default protocol model."""
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        _DEFAULT_MODEL = ProtocolModel()
    return _DEFAULT_MODEL
