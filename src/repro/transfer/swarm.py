"""P2P swarm dynamics.

The decisive property of a swarm is whether a downloader can find usable
seeds.  We model the instantaneous seed population of a file's swarm as
Poisson with mean proportional to the file's weekly demand -- popular
files have thriving swarms, unpopular files' swarms are often dead, which
is exactly the paper's Bottleneck 3 (86% of smart-AP failures were
"insufficient seeds in a P2P data swarm", section 5.2).

Downloader vantage matters: a cloud pre-downloader with a public address
and fat pipes reaches essentially every advertised seed, while a home AP
behind NAT on a consumer line reaches only a fraction (``reach``).  This
reachability gap is what makes the smart-AP failure ratio for unpopular
files (42%) so much worse than the cloud's per-attempt ratio, on top of
the cloud's collaborative cache.

The swarm also exposes the *bandwidth multiplier* from Li et al. (IWQoS
2012), used by the Figure 16 ODR evaluation: seeding a popular swarm with
cloud bandwidth :math:`S_i` yields aggregate distribution bandwidth
:math:`D_i` with :math:`D_i/S_i > 1`, so redirecting highly popular P2P
files to their swarms saves cloud upload bandwidth outright.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.clock import kbps


@dataclass(frozen=True)
class SwarmModel:
    """Calibration constants for swarm synthesis.

    ``seeds_per_weekly_request``: mean instantaneous seeds contributed per
    weekly request of the file (captures fetch-at-most-once churn: users
    seed briefly after downloading).

    ``per_seed_rate_median`` / ``per_seed_rate_exponent`` /
    ``rate_sigma``: per-downloader throughput grows sublinearly with the
    seed count (new seeds overlap in upload capacity) with lognormal
    jitter for peer heterogeneity.
    """

    seeds_per_weekly_request: float = 0.8
    per_seed_rate_median: float = kbps(24.0)
    #: Throughput grows only weakly with seed count: extra seeds mostly
    #: duplicate each other's upload capacity, and measured AP replay
    #: speeds (median 27 KBps over a popularity-weighted sample, paper
    #: Fig. 13) show per-downloader speed is nearly popularity-blind --
    #: popularity decides *availability*, not speed.
    per_seed_rate_exponent: float = 0.10
    rate_sigma: float = 1.15
    leechers_per_weekly_request: float = 0.35

    def mean_seeds(self, weekly_demand: float) -> float:
        return self.seeds_per_weekly_request * max(weekly_demand, 0.0)


class Swarm:
    """The swarm for one file, parameterised by the file's weekly demand."""

    def __init__(self, file_id: str, weekly_demand: float,
                 model: SwarmModel | None = None):
        if weekly_demand < 0:
            raise ValueError("weekly_demand must be non-negative")
        self.file_id = file_id
        self.weekly_demand = weekly_demand
        self.model = model or SwarmModel()

    # -- population --------------------------------------------------------

    def sample_seed_count(self, rng: np.random.Generator) -> int:
        """Instantaneous advertised seed population at one attempt."""
        return int(rng.poisson(self.model.mean_seeds(self.weekly_demand)))

    def sample_leecher_count(self, rng: np.random.Generator) -> int:
        mean = self.model.leechers_per_weekly_request * self.weekly_demand
        return int(rng.poisson(mean))

    def reachable_seeds(self, seed_count: int, reach: float,
                        rng: np.random.Generator) -> int:
        """Seeds a downloader with connectivity ``reach`` can actually use.

        ``reach`` is the per-seed connection success probability:
        ~1.0 for a cloud pre-downloader, well below 1 for a NAT-ed home
        AP (port-mapping failures, peer-exchange limits, churn).
        """
        if not 0.0 <= reach <= 1.0:
            raise ValueError(f"reach must be in [0, 1], got {reach}")
        if seed_count <= 0:
            return 0
        return int(rng.binomial(seed_count, reach))

    def availability(self, reach: float) -> float:
        """Analytic P(at least one reachable seed) for a given vantage.

        Thinning a Poisson(m) seed population by ``reach`` gives
        Poisson(m*reach), so availability is ``1 - exp(-m*reach)``.
        Exposed for calibration tests and for ODR's popularity heuristics.
        """
        mean = self.model.mean_seeds(self.weekly_demand) * reach
        return 1.0 - float(np.exp(-mean))

    # -- throughput ---------------------------------------------------------

    def sample_rate(self, reachable_seeds: int,
                    rng: np.random.Generator) -> float:
        """Per-downloader throughput in B/s given usable seeds.

        Zero seeds means a stalled download (the stagnation-timeout rule
        in :mod:`repro.transfer.session` then turns it into a failure).
        """
        if reachable_seeds <= 0:
            return 0.0
        model = self.model
        scale = reachable_seeds ** model.per_seed_rate_exponent
        jitter = float(np.exp(rng.normal(0.0, model.rate_sigma)))
        return model.per_seed_rate_median * scale * jitter

    # -- bandwidth multiplier (Li et al., IWQoS'12) --------------------------

    def bandwidth_multiplier(self, seeded_rate: float) -> float:
        """Aggregate-distribution gain of seeding this swarm at
        ``seeded_rate`` B/s of cloud bandwidth.

        A swarm with ``l`` leechers exchanging pieces achieves aggregate
        bandwidth roughly ``seeded_rate * (1 + eta * l)`` for a sharing
        efficiency ``eta`` well below 1 (tit-for-tat reciprocation is
        imperfect); the multiplier therefore grows with swarm size, which
        is why offloading *highly popular* files to their swarms is the
        bandwidth-saving move (paper section 4.2).
        """
        if seeded_rate <= 0:
            raise ValueError("seeded_rate must be positive")
        eta = 0.25
        leechers = self.model.leechers_per_weekly_request * \
            self.weekly_demand
        return 1.0 + eta * leechers
