"""Dynamic swarm population model (fluid, Qiu-Srikant style).

The static :class:`repro.transfer.swarm.SwarmModel` abstracts a swarm as
an instantaneous Poisson seed population.  This module provides the
underlying *dynamic* model that justifies it: leechers arrive at the
file's demand rate, download at the swarm's service capacity, convert to
seeds on completion, and seeds linger for a mean residence time before
departing.  In steady state Little's law gives

    seeds  =  arrival_rate * seed_residence_time,

which is exactly the static model's ``seeds_per_weekly_request``
coupling: with a ~1.4-day mean residence, a file requested ``k`` times a
week sustains ``0.2 * k`` seeds... the shipped default of 0.8 seeds per
weekly request corresponds to users seeding ~5.6 days (about what a
default-configured client left running achieves).

The module also reproduces the two transient regimes the paper's
findings rest on:

* **flash crowd** -- a burst of arrivals (e.g. ODR redirecting users
  into a swarm) temporarily starves per-leecher capacity, then the
  completing leechers become seeds and aggregate capacity *multiplies*
  (the bandwidth-multiplier effect);
* **death spiral** -- when arrivals stop, seeds drain exponentially and
  the swarm goes dark: why unpopular files' swarms are usually dead by
  the time an AP tries them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.clock import DAY, WEEK, kbps


@dataclass(frozen=True)
class SwarmDynamicsConfig:
    """Fluid-model parameters."""

    seed_upload_rate: float = kbps(50.0)     # per seed, B/s
    leecher_upload_rate: float = kbps(30.0)  # tit-for-tat contribution
    leecher_download_cap: float = kbps(400.0)
    file_size: float = 390e6                 # the trace's mean file
    seed_residence_time: float = 5.6 * DAY   # mean post-completion seeding
    #: Fraction of arrivals that abort before completing.
    abandonment: float = 0.1

    def __post_init__(self):
        if min(self.seed_upload_rate, self.leecher_upload_rate,
               self.leecher_download_cap, self.file_size,
               self.seed_residence_time) <= 0:
            raise ValueError("all rates/sizes must be positive")
        if not 0.0 <= self.abandonment < 1.0:
            raise ValueError("abandonment must be in [0, 1)")


@dataclass
class SwarmState:
    """Fluid populations at one instant."""

    time: float
    leechers: float
    seeds: float

    @property
    def total_peers(self) -> float:
        return self.leechers + self.seeds


class SwarmDynamics:
    """Forward-integrates the fluid swarm ODEs.

    d(leechers)/dt = arrival_rate - completion_rate - abandonment_rate
    d(seeds)/dt    = completion_rate - seeds / residence_time

    with ``completion_rate = aggregate_bandwidth / file_size`` and
    aggregate bandwidth the min of what seeds+leechers can upload and
    what leechers can absorb.
    """

    def __init__(self, config: SwarmDynamicsConfig = SwarmDynamicsConfig(),
                 leechers: float = 0.0, seeds: float = 0.0):
        if leechers < 0 or seeds < 0:
            raise ValueError("populations must be non-negative")
        self.config = config
        self.state = SwarmState(time=0.0, leechers=leechers, seeds=seeds)
        self.history: list[SwarmState] = [self.state]

    # -- instantaneous quantities ------------------------------------------------

    def aggregate_bandwidth(self) -> float:
        """Total download bandwidth the swarm sustains right now."""
        config = self.config
        state = self.state
        supply = state.seeds * config.seed_upload_rate + \
            state.leechers * config.leecher_upload_rate
        demand = state.leechers * config.leecher_download_cap
        return min(supply, demand)

    def per_leecher_rate(self) -> float:
        if self.state.leechers <= 1e-9:
            return 0.0
        return self.aggregate_bandwidth() / self.state.leechers

    def bandwidth_multiplier(self, seeded_rate: float) -> float:
        """D/S of Li et al.: aggregate distribution bandwidth per unit
        of externally injected seeding bandwidth."""
        if seeded_rate <= 0:
            raise ValueError("seeded_rate must be positive")
        return (self.aggregate_bandwidth() + seeded_rate) / seeded_rate

    # -- integration ----------------------------------------------------------------

    def step(self, arrival_rate: float, dt: float) -> SwarmState:
        """Advance the fluid model by ``dt`` seconds."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        if arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        config = self.config
        state = self.state
        # Flows as *amounts* over the step, clamped so no more peers
        # complete or abandon than actually exist -- otherwise coarse
        # steps would mint seeds out of thin air.
        arrivals = arrival_rate * dt
        available = state.leechers + arrivals
        completions = min(
            self.aggregate_bandwidth() / config.file_size * dt,
            available)
        min_download_time = config.file_size / \
            config.leecher_download_cap
        abandons = min(
            state.leechers * config.abandonment * dt /
            max(min_download_time, dt),
            available - completions)
        # Exponential seed departure is exact for any dt.
        departures = state.seeds * \
            (1.0 - float(np.exp(-dt / config.seed_residence_time)))
        leechers = available - completions - abandons
        seeds = state.seeds + completions - departures
        self.state = SwarmState(time=state.time + dt,
                                leechers=max(0.0, leechers),
                                seeds=max(0.0, seeds))
        self.history.append(self.state)
        return self.state

    def run(self, arrival_rate: float, duration: float,
            dt: float = 600.0) -> SwarmState:
        """Integrate at constant arrivals for ``duration`` seconds."""
        steps = max(1, int(duration / dt))
        for _ in range(steps):
            self.step(arrival_rate, dt)
        return self.state

    # -- steady state ------------------------------------------------------------------

    def steady_state_seeds(self, weekly_demand: float) -> float:
        """Little's-law prediction: seeds = rate * residence."""
        arrival_rate = weekly_demand * (1.0 - self.config.abandonment) \
            / WEEK
        return arrival_rate * self.config.seed_residence_time

    @staticmethod
    def equivalent_seeds_per_weekly_request(
            config: SwarmDynamicsConfig) -> float:
        """The static model's coupling constant implied by this config."""
        return (1.0 - config.abandonment) * \
            config.seed_residence_time / WEEK
