"""LEDBAT: Low Extra Delay Background Transport (IETF RFC 6817).

The paper's section 6.1 suggests ODR "can learn from LEDBAT to further
mitigate the cloud-side upload bandwidth burden": background transfers
(swarm seeding, cloud-to-AP staging) should scavenge spare capacity and
yield the moment foreground traffic needs the link.

This module implements the RFC's congestion controller faithfully --
one-way-delay samples against a tracked base delay, a 100 ms queueing
target, proportional gain, multiplicative decrease on loss -- plus a
small fluid bottleneck-link model (:class:`BottleneckLink`) to drive it,
so the scavenging behaviour is demonstrable end to end.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

#: RFC 6817 constants.
TARGET_DELAY = 0.100          # seconds of queueing delay LEDBAT aims for
GAIN = 1.0                    # cwnd gain per RTT at full off-target
ALLOWED_INCREASE = 1          # max cwnd growth per RTT, in MSS
MIN_CWND = 2                  # MSS
BASE_HISTORY_MINUTES = 10     # base-delay history window
MSS = 1460.0                  # bytes


@dataclass
class LedbatController:
    """The RFC 6817 sender-side congestion controller.

    Drive it with :meth:`on_delay_sample` for every acknowledged packet
    (carrying the measured one-way delay) and :meth:`on_loss` for loss
    events; read :attr:`cwnd_bytes` / :meth:`sending_rate` between
    events.
    """

    mss: float = MSS
    target: float = TARGET_DELAY
    gain: float = GAIN
    #: Congestion window in MSS units.
    cwnd: float = float(MIN_CWND)
    #: Current smoothed round-trip estimate, for rate conversion.
    rtt_estimate: float = 0.2

    _base_history: deque = field(default_factory=deque)
    _current_minute: int = -1
    _current_minute_min: float = float("inf")

    # -- base-delay tracking (RFC 6817 section 3.4.2) -----------------------

    def _update_base_delay(self, delay: float, now: float) -> None:
        minute = int(now // 60.0)
        if minute != self._current_minute:
            if self._current_minute >= 0 and \
                    self._current_minute_min < float("inf"):
                self._base_history.append(self._current_minute_min)
                while len(self._base_history) > BASE_HISTORY_MINUTES:
                    self._base_history.popleft()
            self._current_minute = minute
            self._current_minute_min = delay
        else:
            self._current_minute_min = min(self._current_minute_min,
                                           delay)

    @property
    def base_delay(self) -> float:
        """The minimum observed one-way delay over the history window."""
        candidates = list(self._base_history)
        if self._current_minute_min < float("inf"):
            candidates.append(self._current_minute_min)
        return min(candidates) if candidates else 0.0

    # -- controller events ----------------------------------------------------

    def queuing_delay(self, delay: float) -> float:
        """Estimated standing queue given a fresh delay sample."""
        return max(0.0, delay - self.base_delay)

    def on_delay_sample(self, delay: float, now: float,
                        bytes_acked: float | None = None) -> None:
        """Process one acknowledged packet's one-way-delay sample.

        Implements the RFC's window update:
        ``cwnd += GAIN * off_target * bytes_acked * MSS / cwnd_bytes``
        with ``off_target = (TARGET - queuing_delay) / TARGET`` clamped
        to [-1, 1], and growth capped at ALLOWED_INCREASE per RTT.
        """
        if delay < 0:
            raise ValueError("delay samples must be non-negative")
        self._update_base_delay(delay, now)
        off_target = (self.target - self.queuing_delay(delay)) / \
            self.target
        off_target = max(-1.0, min(1.0, off_target))
        acked = bytes_acked if bytes_acked is not None else self.mss
        delta = self.gain * off_target * acked / self.cwnd_bytes
        max_growth = ALLOWED_INCREASE * acked / self.cwnd_bytes
        self.cwnd += min(delta, max_growth)
        self.cwnd = max(float(MIN_CWND), self.cwnd)

    def on_loss(self) -> None:
        """Halve the window on loss, as a TCP-friendly backstop."""
        self.cwnd = max(float(MIN_CWND), self.cwnd / 2.0)

    # -- rate view --------------------------------------------------------------

    @property
    def cwnd_bytes(self) -> float:
        return self.cwnd * self.mss

    def sending_rate(self) -> float:
        """Achievable rate in B/s at the current window and RTT."""
        return self.cwnd_bytes / max(self.rtt_estimate, 1e-3)


@dataclass
class BottleneckLink:
    """A fluid FIFO bottleneck shared by foreground and LEDBAT traffic.

    Foreground load is given as a rate; the LEDBAT flow contributes its
    controller-driven rate.  Queueing delay follows the fluid
    approximation: the queue drains at ``capacity`` and grows at the
    total offered load.
    """

    capacity: float                 # B/s
    propagation_delay: float = 0.05   # one-way, seconds
    queue_bytes: float = 0.0
    max_queue_bytes: float = 3e6

    def one_way_delay(self) -> float:
        return self.propagation_delay + self.queue_bytes / self.capacity

    def advance(self, foreground_rate: float, ledbat_rate: float,
                dt: float) -> bool:
        """Advance the fluid model by ``dt``; returns True on overflow
        (which the LEDBAT flow should treat as loss)."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        offered = foreground_rate + ledbat_rate
        self.queue_bytes += (offered - self.capacity) * dt
        self.queue_bytes = max(0.0, self.queue_bytes)
        if self.queue_bytes > self.max_queue_bytes:
            self.queue_bytes = self.max_queue_bytes
            return True
        return False


@dataclass
class ScavengeResult:
    """Outcome of a LEDBAT scavenging simulation."""

    ledbat_bytes: float
    foreground_bytes: float
    mean_queueing_delay: float
    peak_queueing_delay: float
    ledbat_rate_series: list[float]
    foreground_share_when_busy: float


def simulate_scavenging(link: BottleneckLink,
                        foreground_profile: list[float],
                        step: float = 0.1,
                        controller: Optional[LedbatController] = None
                        ) -> ScavengeResult:
    """Run a LEDBAT flow against a time-varying foreground load.

    ``foreground_profile`` gives the foreground rate (B/s) per simulation
    step.  Returns aggregate behaviour: how much the background flow
    moved, and how little queueing delay it added -- the two properties
    that make LEDBAT suitable for cloud seeding traffic.
    """
    controller = controller or LedbatController(
        rtt_estimate=2 * link.propagation_delay)
    ledbat_bytes = 0.0
    foreground_bytes = 0.0
    delays: list[float] = []
    rates: list[float] = []
    busy_foreground = 0.0
    busy_total = 0.0
    now = 0.0
    for foreground_rate in foreground_profile:
        # The flow offers its full window-derived rate; probing past the
        # capacity is exactly how LEDBAT finds its delay target.
        rate = controller.sending_rate()
        lost = link.advance(foreground_rate, rate, step)
        delay = link.one_way_delay()
        if lost:
            controller.on_loss()
        else:
            # One aggregated sample per step carrying the step's acked
            # bytes, so window growth scales as the RFC's per-ack rule
            # would over the same interval.
            controller.on_delay_sample(delay, now,
                                       bytes_acked=rate * step)
        controller.rtt_estimate = 2 * delay
        ledbat_bytes += rate * step
        foreground_bytes += foreground_rate * step
        delays.append(delay - link.propagation_delay)
        rates.append(rate)
        if foreground_rate > 0.5 * link.capacity:
            busy_total += 1.0
            busy_foreground += min(1.0, foreground_rate /
                                   (foreground_rate + rate))
        now += step
    return ScavengeResult(
        ledbat_bytes=ledbat_bytes,
        foreground_bytes=foreground_bytes,
        mean_queueing_delay=sum(delays) / len(delays) if delays else 0.0,
        peak_queueing_delay=max(delays) if delays else 0.0,
        ledbat_rate_series=rates,
        foreground_share_when_busy=(busy_foreground / busy_total
                                    if busy_total else 1.0))
