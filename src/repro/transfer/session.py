"""Download sessions and the stagnation-timeout failure rule.

Xuanfeng "raises a pre-downloading failure for a requested file when the
corresponding pre-downloading progress stagnates for an hour" (section
4.1), and the observed maximum pre-downloading delay (10071 minutes) shows
sessions are bounded by roughly the measurement week.  Smart APs apply
the same client behaviour (wget/aria2 with give-up rules).

:class:`DownloadSession` turns a source probe (:class:`AttemptDraw`) plus
the downloader's own rate caps into a concrete outcome: how long it took,
the average and peak rates, bytes obtained, traffic burned (overhead
included), and the failure cause if it stalled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.obs.registry import AnyRegistry, NOOP
from repro.sim.clock import DAY, HOUR
from repro.sim.engine import Timeout
from repro.transfer.protocols import Protocol, ProtocolModel, \
    default_protocol_model
from repro.transfer.source import AttemptDraw, ContentSource, \
    DownloadVantage

#: The cloud's give-up rule: progress stagnant for one hour => failure.
STAGNATION_TIMEOUT = 1.0 * HOUR
#: Hard bound on any single session (the trace's max delay is ~7 days).
MAX_SESSION_DURATION = 7.0 * DAY


@dataclass(frozen=True)
class SessionLimits:
    """Caps the downloader imposes on top of what the source offers."""

    rate_caps: tuple[float, ...] = ()
    stagnation_timeout: float = STAGNATION_TIMEOUT
    max_duration: float = MAX_SESSION_DURATION

    def effective_cap(self) -> float:
        positive = [cap for cap in self.rate_caps if cap > 0]
        return min(positive) if positive else float("inf")


@dataclass
class DownloadOutcome:
    """What one download attempt produced (a pre-download trace row)."""

    success: bool
    duration: float
    bytes_obtained: float
    file_size: float
    average_rate: float
    peak_rate: float
    traffic: float
    failure_cause: Optional[str] = None

    @property
    def completed_fraction(self) -> float:
        if self.file_size <= 0:
            return 1.0
        return self.bytes_obtained / self.file_size


class DownloadSession:
    """One attempt to pull ``size`` bytes from ``source``.

    The session model has three regimes:

    * the source is unavailable at probe time -> the client stalls and
      gives up after the stagnation timeout, with ~zero bytes;
    * the source dies mid-transfer (seed churn, dropped server
      connection) -> partial bytes, then the stagnation timeout;
    * the transfer completes, at a rate capped by the downloader's own
      limits, unless the projected duration exceeds the session bound
      (treated as a stagnation give-up on extremely slow sources).
    """

    def __init__(self, source: ContentSource, size: float,
                 vantage: DownloadVantage,
                 limits: SessionLimits = SessionLimits(),
                 protocol_model: Optional[ProtocolModel] = None,
                 mid_failure_probability: Optional[float] = None,
                 metrics: AnyRegistry = NOOP):
        if size < 0:
            raise ValueError("size must be non-negative")
        self.source = source
        self.size = float(size)
        self.vantage = vantage
        self.limits = limits
        self.protocol_model = protocol_model or default_protocol_model()
        self._mid_failure_override = mid_failure_probability
        self.metrics = metrics

    # -- core model ---------------------------------------------------------

    def simulate(self, rng: np.random.Generator) -> DownloadOutcome:
        """Draw this session's complete outcome."""
        metrics = self.metrics
        metrics.counter("repro_transfer_sessions_total").inc()
        draw = self.source.draw_attempt(rng, self.vantage)
        if draw.seed_count is not None:
            metrics.histogram("repro_transfer_swarm_seeds").observe(
                draw.seed_count)
        if not draw.available:
            return self._stalled_outcome(rng, draw)

        rate = min(draw.rate, self.limits.effective_cap())
        if rate <= 0:
            return self._stalled_outcome(rng, draw)
        full_duration = self.size / rate if rate > 0 else float("inf")

        if full_duration > self.limits.max_duration:
            # Too slow to ever finish inside the service's patience.
            obtained = rate * self.limits.max_duration * rng.uniform(0.6, 1.0)
            return self._failure_outcome(
                rng, duration=self.limits.max_duration,
                bytes_obtained=min(obtained, self.size * 0.95),
                rate=rate, cause=self._slow_cause())

        if rng.random() < self._mid_failure_probability(draw):
            progress = rng.uniform(0.05, 0.9)
            stall_at = full_duration * progress
            duration = stall_at + self.limits.stagnation_timeout
            return self._failure_outcome(
                rng, duration=duration,
                bytes_obtained=self.size * progress, rate=rate,
                cause=self._slow_cause())

        peak = min(rate * rng.uniform(1.15, 2.2),
                   self.limits.effective_cap())
        traffic = self.protocol_model.sample_traffic(
            self.source.protocol, self.size, rng)
        metrics.counter("repro_transfer_bytes_obtained_total").inc(
            self.size)
        return DownloadOutcome(
            success=True, duration=full_duration,
            bytes_obtained=self.size, file_size=self.size,
            average_rate=rate, peak_rate=max(peak, rate), traffic=traffic)

    def run(self, rng: np.random.Generator):
        """Generator form for use as a simulation process.

        Yields a single :class:`Timeout` covering the session duration and
        returns the :class:`DownloadOutcome`.
        """
        outcome = self.simulate(rng)
        yield Timeout(outcome.duration)
        return outcome

    # -- helpers -------------------------------------------------------------

    def _mid_failure_probability(self, draw: AttemptDraw) -> float:
        if self._mid_failure_override is not None:
            return self._mid_failure_override
        return draw.mid_failure_probability

    def _slow_cause(self) -> str:
        from repro.transfer.source import CAUSE_INSUFFICIENT_SEEDS, \
            CAUSE_POOR_SERVER
        return CAUSE_INSUFFICIENT_SEEDS if self.source.protocol.is_p2p \
            else CAUSE_POOR_SERVER

    def _stalled_outcome(self, rng: np.random.Generator,
                         draw: AttemptDraw) -> DownloadOutcome:
        # A stalled client trickles a negligible number of bytes
        # (handshakes, metadata) before the give-up timer fires.
        duration = self.limits.stagnation_timeout * rng.uniform(1.0, 1.25)
        trickle = min(self.size, rng.uniform(0.0, 256e3))
        return self._failure_outcome(rng, duration=duration,
                                     bytes_obtained=trickle,
                                     rate=trickle / duration,
                                     cause=draw.failure_cause)

    def _failure_outcome(self, rng: np.random.Generator, duration: float,
                         bytes_obtained: float, rate: float,
                         cause: Optional[str]) -> DownloadOutcome:
        # Every failure regime ends with the stagnation give-up timer
        # firing (stall at probe, mid-transfer death, too-slow-to-ever-
        # finish), so one counter covers the rule end to end.
        self.metrics.counter(
            "repro_transfer_stagnation_timeouts_total").inc()
        if bytes_obtained > 0:
            self.metrics.counter(
                "repro_transfer_bytes_obtained_total").inc(bytes_obtained)
        fraction = bytes_obtained / self.size if self.size > 0 else 0.0
        traffic = self.protocol_model.sample_traffic(
            self.source.protocol, self.size, rng,
            completed_fraction=min(fraction, 1.0))
        average = bytes_obtained / duration if duration > 0 else 0.0
        return DownloadOutcome(
            success=False, duration=duration,
            bytes_obtained=bytes_obtained, file_size=self.size,
            average_rate=average, peak_rate=max(rate, average),
            traffic=traffic, failure_cause=cause)
