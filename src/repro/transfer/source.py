"""Original data sources: P2P swarms and HTTP/FTP origin servers.

A :class:`ContentSource` answers one question per download attempt: *is
the content obtainable right now, and at what sustainable rate?*  The
answer (:class:`AttemptDraw`) feeds the download-session machinery, which
applies the downloader's own caps (access link, storage write path) and
the stagnation-timeout failure rule.

Failure causes mirror the paper's section 5.2 post-mortem of smart-AP
failures: 86% insufficient seeds, 10% poor HTTP/FTP connections (the
server "failed to maintain a persistent/resumable download"), 4% system
bugs (the bug part belongs to the AP model, not to sources).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sim.clock import kbps, mbps
from repro.transfer.protocols import Protocol
from repro.transfer.swarm import Swarm, SwarmModel

#: Failure-cause labels recorded in traces (stable strings, not enums, so
#: they serialise naturally into JSONL trace files).
CAUSE_INSUFFICIENT_SEEDS = "insufficient_seeds"
CAUSE_POOR_SERVER = "poor_server_connection"
CAUSE_SYSTEM_BUG = "system_bug"


@dataclass(frozen=True)
class DownloadVantage:
    """Where a download attempt runs from.

    ``seed_reach`` is the per-seed connection success probability for P2P
    (public, well-peered cloud pre-downloaders reach nearly everything; a
    NAT-ed home AP much less), and ``server_resume_bonus`` scales down the
    chance of losing an HTTP/FTP download (the cloud retries across
    vantage machines, a lone AP cannot).
    """

    label: str
    seed_reach: float
    server_resume_bonus: float = 1.0
    #: Scales the chance of dying mid-transfer: a multi-homed cloud VM
    #: re-peers and resumes far better than a lone client behind NAT.
    churn_resilience: float = 1.0


#: A Xuanfeng pre-downloader VM: public IP, datacenter peering.
CLOUD_VANTAGE = DownloadVantage("cloud", seed_reach=0.85,
                                server_resume_bonus=0.55,
                                churn_resilience=0.50)
#: A smart AP (or a user PC) on a residential line behind NAT.
HOME_VANTAGE = DownloadVantage("home", seed_reach=0.47,
                               server_resume_bonus=1.0,
                               churn_resilience=1.0)


@dataclass
class AttemptDraw:
    """Outcome of probing a source once at the start of an attempt.

    ``mid_failure_probability`` is the chance the source dies partway
    through the transfer (all reachable seeds churn out, or the server
    drops a non-resumable connection); the session model consumes it.
    """

    available: bool
    rate: float
    failure_cause: Optional[str] = None
    mid_failure_probability: float = 0.0
    #: Seeds the swarm reported at probe time (P2P sources only); surfaced
    #: so instrumented sessions can export swarm-health distributions.
    seed_count: Optional[int] = None

    def __post_init__(self):
        if self.available and self.rate <= 0:
            raise ValueError("available draw must carry a positive rate")
        if not self.available and self.failure_cause is None:
            raise ValueError("unavailable draw must carry a failure cause")
        if not 0.0 <= self.mid_failure_probability <= 1.0:
            raise ValueError("mid_failure_probability must be in [0, 1]")


class ContentSource:
    """Abstract source of one file's bytes."""

    protocol: Protocol

    def draw_attempt(self, rng: np.random.Generator,
                     vantage: DownloadVantage) -> AttemptDraw:
        raise NotImplementedError


class P2PSwarmSource(ContentSource):
    """A BitTorrent or eMule swarm as the data source."""

    def __init__(self, swarm: Swarm, protocol: Protocol = Protocol.BITTORRENT):
        if not protocol.is_p2p:
            raise ValueError(f"{protocol} is not a P2P protocol")
        self.swarm = swarm
        self.protocol = protocol

    def draw_attempt(self, rng: np.random.Generator,
                     vantage: DownloadVantage) -> AttemptDraw:
        seeds = self.swarm.sample_seed_count(rng)
        reachable = self.swarm.reachable_seeds(seeds, vantage.seed_reach, rng)
        if reachable == 0:
            return AttemptDraw(available=False, rate=0.0,
                               failure_cause=CAUSE_INSUFFICIENT_SEEDS,
                               seed_count=seeds)
        # Thin swarms also die mid-download: losing the last reachable
        # seed strands the transfer short of completion.
        churn = 0.30 * float(np.exp(-(reachable - 1) / 2.5))
        return AttemptDraw(
            available=True,
            rate=self.swarm.sample_rate(reachable, rng),
            mid_failure_probability=churn * vantage.churn_resilience,
            seed_count=seeds)


class HttpFtpSource(ContentSource):
    """An HTTP or FTP origin server as the data source.

    ``drop_probability`` is the chance the server fails to sustain a
    persistent/resumable download for a whole attempt; the cloud's
    ``server_resume_bonus`` (retrying from several machines) scales it
    down.  Rates are lognormal: origin servers are stabler than swarms
    but far from uniform.
    """

    def __init__(self, protocol: Protocol = Protocol.HTTP,
                 drop_probability: float = 0.12,
                 rate_median: float = kbps(110.0),
                 rate_sigma: float = 0.95,
                 rate_cap: float = mbps(40.0)):
        if protocol.is_p2p:
            raise ValueError(f"{protocol} is not a client-server protocol")
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be a probability")
        self.protocol = protocol
        self.drop_probability = drop_probability
        self.rate_median = rate_median
        self.rate_sigma = rate_sigma
        self.rate_cap = rate_cap

    def draw_attempt(self, rng: np.random.Generator,
                     vantage: DownloadVantage) -> AttemptDraw:
        effective_drop = self.drop_probability * vantage.server_resume_bonus
        if rng.random() < effective_drop:
            return AttemptDraw(available=False, rate=0.0,
                               failure_cause=CAUSE_POOR_SERVER)
        rate = self.rate_median * float(np.exp(rng.normal(
            0.0, self.rate_sigma)))
        return AttemptDraw(
            available=True, rate=min(rate, self.rate_cap),
            mid_failure_probability=0.25 * effective_drop)


@dataclass
class SourceModel:
    """Factory that builds the source object for a catalogued file.

    The popularity coupling is the heart of the reproduction: P2P sources
    inherit the file's weekly demand through the swarm model, and origin
    servers hosting popular content are modestly more reliable (popular
    content sits on better-run servers and mirrors).
    """

    swarm_model: SwarmModel = field(default_factory=SwarmModel)
    http_drop_base: float = 0.22
    http_drop_popularity_scale: float = 35.0
    http_drop_floor: float = 0.05
    http_rate_median: float = kbps(110.0)
    http_rate_sigma: float = 0.95

    def server_drop_probability(self, weekly_demand: float) -> float:
        """Drop probability decaying with demand towards a floor."""
        decay = float(np.exp(-weekly_demand / self.http_drop_popularity_scale))
        return self.http_drop_floor + \
            (self.http_drop_base - self.http_drop_floor) * decay

    def build(self, file_id: str, protocol: Protocol,
              weekly_demand: float) -> ContentSource:
        if protocol.is_p2p:
            swarm = Swarm(file_id, weekly_demand, model=self.swarm_model)
            return P2PSwarmSource(swarm, protocol=protocol)
        return HttpFtpSource(
            protocol=protocol,
            drop_probability=self.server_drop_probability(weekly_demand),
            rate_median=self.http_rate_median,
            rate_sigma=self.http_rate_sigma)
