"""File-transfer substrate: protocols, data sources, download sessions.

The paper's four bottlenecks all originate here or interact with this
layer: P2P swarms with too few seeds stall pre-downloads (Bottleneck 3),
tit-for-tat overhead doubles P2P traffic, HTTP/FTP servers drop
non-resumable connections, and the download-session stagnation rule turns
stalls into the failures the traces record.
"""

from repro.transfer.protocols import (
    Protocol,
    ProtocolModel,
    default_protocol_model,
)
from repro.transfer.swarm import Swarm, SwarmModel
from repro.transfer.source import (
    ContentSource,
    HttpFtpSource,
    P2PSwarmSource,
    SourceModel,
    AttemptDraw,
)
from repro.transfer.session import (
    DownloadOutcome,
    DownloadSession,
    SessionLimits,
    STAGNATION_TIMEOUT,
)
from repro.transfer.ledbat import (
    BottleneckLink,
    LedbatController,
    simulate_scavenging,
)

__all__ = [
    "Protocol",
    "ProtocolModel",
    "default_protocol_model",
    "Swarm",
    "SwarmModel",
    "ContentSource",
    "P2PSwarmSource",
    "HttpFtpSource",
    "SourceModel",
    "AttemptDraw",
    "DownloadSession",
    "DownloadOutcome",
    "SessionLimits",
    "STAGNATION_TIMEOUT",
    "LedbatController",
    "BottleneckLink",
    "simulate_scavenging",
]
