"""Smart AP (access point) based offline downloading.

Models the three devices the paper benchmarks -- HiWiFi 1S, MiWiFi, and
Newifi -- as OpenWrt boxes that pre-download with wget/aria2 onto an
attached storage device, then serve the file over the LAN.  Bottlenecks 3
(seed scarcity kills unpopular-file pre-downloads) and 4 (the storage
write path throttles throughput) both materialise here.
"""

from repro.ap.models import (
    ApHardware,
    HIWIFI_1S,
    MIWIFI,
    NEWIFI,
    BENCHMARKED_APS,
)
from repro.ap.openwrt import DownloadClient, OpenWrtSystem
from repro.ap.smartap import SmartAP, ApPreDownloadResult
from repro.ap.benchrig import ApBenchmarkRig, ApBenchmarkReport

__all__ = [
    "ApHardware",
    "HIWIFI_1S",
    "MIWIFI",
    "NEWIFI",
    "BENCHMARKED_APS",
    "OpenWrtSystem",
    "DownloadClient",
    "SmartAP",
    "ApPreDownloadResult",
    "ApBenchmarkRig",
    "ApBenchmarkReport",
]
