"""The section 5.1 benchmark rig: replaying sampled requests on smart APs.

Methodology reproduced from the paper: 1000 real requests from Unicom
users (each carrying its recorded access bandwidth) are split across the
three APs, each sitting on its own 20 Mbps Unicom ADSL line; requests
replay sequentially (request i+1 starts after i completes or fails); the
AP's pre-download speed is throttled to the recorded user bandwidth to
approximate the original network conditions; completed files are removed
from the small storage devices; performance data aggregates to a storage
server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.analysis.cdf import CDF, empirical_cdf
from repro.ap.models import ApHardware, BENCHMARKED_APS
from repro.ap.smartap import ApPreDownloadResult, SmartAP
from repro.faults.injector import FaultInjector
from repro.faults.policies import ResiliencePolicies
from repro.faults.resilience import ap_chaos_predownload
from repro.netsim.link import TESTBED_ADSL, adsl_goodput
from repro.obs.registry import AnyRegistry, NOOP
from repro.sim.randomness import RngFactory
from repro.transfer.source import SourceModel
from repro.workload.catalog import FileCatalog
from repro.workload.popularity import PopularityClass
from repro.workload.records import PreDownloadRecord, RequestRecord


@dataclass
class ApBenchmarkReport:
    """Aggregated results of one replay campaign."""

    results: list[ApPreDownloadResult]

    def __post_init__(self):
        if not self.results:
            raise ValueError("report needs at least one result")

    # -- failure statistics ------------------------------------------------------

    @property
    def failure_ratio(self) -> float:
        failures = sum(1 for r in self.results if not r.record.success)
        return failures / len(self.results)

    def failure_ratio_of_class(self, klass: PopularityClass) -> float:
        relevant = [r for r in self.results
                    if r.file.popularity_class is klass]
        if not relevant:
            return 0.0
        failures = sum(1 for r in relevant if not r.record.success)
        return failures / len(relevant)

    @property
    def unpopular_failure_ratio(self) -> float:
        return self.failure_ratio_of_class(PopularityClass.UNPOPULAR)

    def failure_cause_breakdown(self) -> dict[str, float]:
        """Shares of failures by cause (paper: 86% seeds / 10% server /
        4% bugs)."""
        failures = [r for r in self.results if not r.record.success]
        if not failures:
            return {}
        counts: dict[str, int] = {}
        for result in failures:
            cause = result.record.failure_cause or "unknown"
            counts[cause] = counts.get(cause, 0) + 1
        return {cause: count / len(failures)
                for cause, count in counts.items()}

    # -- speed / delay distributions -----------------------------------------------

    def speed_cdf(self) -> CDF:
        """Pre-download speeds, failures included at their trickle rates."""
        return empirical_cdf([r.record.average_speed
                              for r in self.results])

    def delay_cdf(self) -> CDF:
        return empirical_cdf([r.record.delay for r in self.results])

    def max_speed(self) -> float:
        return self.speed_cdf().max

    def mean_iowait(self) -> float:
        successes = [r for r in self.results if r.record.success]
        if not successes:
            return 0.0
        return float(np.mean([r.iowait_ratio for r in successes]))

    def peak_iowait(self) -> float:
        """iowait at the fastest replayed task -- the Table 2 quantity."""
        return max((r.iowait_ratio for r in self.results), default=0.0)

    # -- slicing ---------------------------------------------------------------------

    def for_ap(self, ap_name: str) -> "ApBenchmarkReport":
        subset = [r for r in self.results if r.ap_name == ap_name]
        return ApBenchmarkReport(subset)

    def ap_names(self) -> list[str]:
        seen: list[str] = []
        for result in self.results:
            if result.ap_name not in seen:
                seen.append(result.ap_name)
        return seen


class ApBenchmarkRig:
    """Drives replay campaigns across a set of smart APs."""

    def __init__(self, catalog: FileCatalog,
                 aps: Optional[Sequence[SmartAP]] = None,
                 source_model: Optional[SourceModel] = None,
                 uplink_bandwidth: float = adsl_goodput(TESTBED_ADSL),
                 seed: int = 20150301,
                 metrics: AnyRegistry = NOOP,
                 faults: Optional[FaultInjector] = None,
                 policies: Optional[ResiliencePolicies] = None):
        self.catalog = catalog
        # Fault injection is opt-in; ``faults=None`` replays exactly as
        # before.  AP fault windows run on each AP's own cumulative
        # replay clock.
        self.faults = faults
        self.policies = policies
        source_model = source_model or SourceModel()
        self.aps = list(aps) if aps is not None else [
            SmartAP(hardware, source_model=source_model)
            for hardware in BENCHMARKED_APS]
        self.uplink_bandwidth = uplink_bandwidth
        self._rng_factory = RngFactory(seed)
        self.metrics = metrics
        self._m_replays = metrics.counter("repro_ap_replays_total")
        self._m_iowait = metrics.histogram("repro_ap_iowait_ratio")
        self._m_write_rate = metrics.histogram(
            "repro_ap_write_throughput_bytes_per_second")

    def replay(self, requests: Sequence[RequestRecord],
               throttle_to_user: bool = True) -> ApBenchmarkReport:
        """Replay the sampled workload, split round-robin across the APs.

        Each AP processes its share sequentially; the simulated clock of
        one AP is the cumulative duration of its own replays, as in the
        real three-week campaign.
        """
        if not requests:
            raise ValueError("nothing to replay")
        results: list[ApPreDownloadResult] = []
        clocks = {ap.hardware.name: 0.0 for ap in self.aps}
        for index, request in enumerate(requests):
            ap = self.aps[index % len(self.aps)]
            rng = self._rng_factory.stream(f"replay-{ap.hardware.name}")
            record = self.catalog[request.file_id]
            throttle = request.access_bandwidth if throttle_to_user \
                else None
            start = clocks[ap.hardware.name]
            if self.faults is None:
                outcome, iowait = ap.pre_download(
                    record, rng, access_bandwidth=throttle,
                    uplink_bandwidth=self.uplink_bandwidth)
            else:
                outcome, iowait = ap_chaos_predownload(
                    ap, record, rng, start=start,
                    access_bandwidth=throttle,
                    uplink_bandwidth=self.uplink_bandwidth,
                    injector=self.faults, policies=self.policies,
                    task_label=f"{ap.hardware.name}:{request.task_id}")
            finish = start + outcome.duration
            clocks[ap.hardware.name] = finish
            self._m_replays.inc()
            if outcome.success:
                self._m_iowait.observe(iowait)
                self._m_write_rate.observe(outcome.average_rate)
            else:
                self.metrics.counter(
                    "repro_ap_failures_total",
                    cause=outcome.failure_cause or "unknown").inc()
            if outcome.success:
                # Small devices are wiped between tasks (section 5.1).
                ap.store(outcome.bytes_obtained)
                ap.remove(outcome.bytes_obtained)
            results.append(ApPreDownloadResult(
                ap_name=ap.hardware.name,
                record=PreDownloadRecord(
                    task_id=request.task_id, file_id=record.file_id,
                    start_time=start, finish_time=finish,
                    acquired_bytes=outcome.bytes_obtained,
                    traffic_bytes=outcome.traffic, cache_hit=False,
                    average_speed=outcome.average_rate,
                    peak_speed=outcome.peak_rate,
                    success=outcome.success,
                    failure_cause=outcome.failure_cause),
                file=record, iowait_ratio=iowait))
        return ApBenchmarkReport(results)

    def replay_top_popular(self, requests: Sequence[RequestRecord],
                           ap: SmartAP, top: int = 10,
                           repeats: int = 3) -> ApBenchmarkReport:
        """The Table 2 protocol: replay the most popular sampled requests
        with *no* user-bandwidth throttle, so the write path (and the
        20 Mbps line) is what binds."""
        ranked = sorted(
            requests,
            key=lambda request:
                self.catalog[request.file_id].weekly_demand,
            reverse=True)
        subset = list(ranked[:top]) * repeats
        rig = ApBenchmarkRig(self.catalog, aps=[ap],
                             uplink_bandwidth=self.uplink_bandwidth,
                             seed=self._rng_factory.master_seed + 1,
                             metrics=self.metrics)
        return rig.replay(subset, throttle_to_user=False)
