"""Smart-AP hardware presets (the paper's Table 1).

==========  ==================  ======  ==============================  =====================
Smart AP    CPU                 RAM     Storage interface(s)            WiFi
==========  ==================  ======  ==============================  =====================
HiWiFi 1S   MT7620A @ 580 MHz   128 MB  SD card slot                    802.11 b/g/n @ 2.4 GHz
MiWiFi      Broadcom4709 @1GHz  256 MB  USB 2.0 + internal 1 TB SATA    802.11 b/g/n/ac dual
Newifi      MT7620A @ 580 MHz   128 MB  USB 2.0                         802.11 b/g/n/ac dual
==========  ==================  ======  ==============================  =====================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.storage.device import (
    SATA_HDD_1TB,
    SD_CARD_8GB,
    StorageDevice,
    USB_FLASH_8GB,
)
from repro.storage.filesystem import Filesystem


class StorageInterface(enum.Enum):
    """Physical storage attachment points on an AP."""

    SD = "sd"
    USB2 = "usb2"
    SATA = "sata"


class WifiBand(enum.Enum):
    """Radio bands the AP serves."""

    GHZ_2_4 = "2.4GHz"
    GHZ_5_0 = "5.0GHz"


@dataclass(frozen=True)
class ApHardware:
    """Static hardware description of one smart-AP model."""

    name: str
    cpu_model: str
    cpu_mhz: float
    ram_mb: int
    storage_interfaces: tuple[StorageInterface, ...]
    wifi_protocols: str
    wifi_bands: tuple[WifiBand, ...]
    price_usd: float
    #: The storage device each AP shipped with / was benchmarked with
    #: (section 5.1), and the filesystem it ran.
    default_device: StorageDevice = SD_CARD_8GB
    default_filesystem: Filesystem = Filesystem.FAT
    #: Lowest WiFi LAN fetch throughput observed (B/s); the paper reports
    #: 8-12 MBps, always above the cloud's 6.1 MBps fetch maximum.
    lan_fetch_rate_low: float = 8e6
    lan_fetch_rate_high: float = 12e6

    def __post_init__(self):
        if self.cpu_mhz <= 0 or self.ram_mb <= 0:
            raise ValueError("hardware figures must be positive")
        if not self.default_device.supports(self.default_filesystem):
            raise ValueError(
                f"{self.name}: default device cannot run "
                f"{self.default_filesystem}")


HIWIFI_1S = ApHardware(
    name="HiWiFi (1S)",
    cpu_model="MT7620A", cpu_mhz=580.0, ram_mb=128,
    storage_interfaces=(StorageInterface.SD,),
    wifi_protocols="IEEE 802.11 b/g/n",
    wifi_bands=(WifiBand.GHZ_2_4,),
    price_usd=20.0,
    default_device=SD_CARD_8GB,
    default_filesystem=Filesystem.FAT,
)

MIWIFI = ApHardware(
    name="MiWiFi",
    cpu_model="Broadcom4709", cpu_mhz=1000.0, ram_mb=256,
    storage_interfaces=(StorageInterface.USB2, StorageInterface.SATA),
    wifi_protocols="IEEE 802.11 b/g/n/ac",
    wifi_bands=(WifiBand.GHZ_2_4, WifiBand.GHZ_5_0),
    price_usd=100.0,
    default_device=SATA_HDD_1TB,
    default_filesystem=Filesystem.EXT4,
)

NEWIFI = ApHardware(
    name="Newifi",
    cpu_model="MT7620A", cpu_mhz=580.0, ram_mb=128,
    storage_interfaces=(StorageInterface.USB2,),
    wifi_protocols="IEEE 802.11 b/g/n/ac",
    wifi_bands=(WifiBand.GHZ_2_4, WifiBand.GHZ_5_0),
    price_usd=20.0,
    default_device=USB_FLASH_8GB,
    default_filesystem=Filesystem.NTFS,
)

#: The three devices of the section 5 benchmark, in the paper's order.
BENCHMARKED_APS: tuple[ApHardware, ...] = (HIWIFI_1S, MIWIFI, NEWIFI)
