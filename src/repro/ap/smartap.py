"""The smart-AP device model: pre-download through the storage write path.

An AP's pre-download speed is bounded by three things in series: what the
data source offers (swarm/server), the home access link, and the storage
write path (the Table 2 pipeline).  The AP downloads from the *home
vantage*: behind NAT on a residential line, it reaches far fewer swarm
seeds than a cloud pre-downloader -- the mechanistic core of Bottleneck 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ap.models import ApHardware
from repro.ap.openwrt import OpenWrtSystem
from repro.sim.resources import FairSharePool
from repro.storage.device import StorageDevice
from repro.storage.filesystem import Filesystem
from repro.storage.writepath import WritePath
from repro.transfer.session import DownloadOutcome, DownloadSession, \
    SessionLimits
from repro.transfer.source import CAUSE_SYSTEM_BUG, ContentSource, \
    HOME_VANTAGE, SourceModel
from repro.workload.records import CatalogFile, PreDownloadRecord


@dataclass
class ApPreDownloadResult:
    """One replayed request on one AP."""

    ap_name: str
    record: PreDownloadRecord
    file: CatalogFile
    iowait_ratio: float


class SmartAP:
    """One smart AP with a storage device, a filesystem, and an uplink."""

    def __init__(self, hardware: ApHardware,
                 device: Optional[StorageDevice] = None,
                 filesystem: Optional[Filesystem] = None,
                 system: Optional[OpenWrtSystem] = None,
                 source_model: Optional[SourceModel] = None):
        self.hardware = hardware
        self.device = device or hardware.default_device
        self.filesystem = filesystem or hardware.default_filesystem
        self.system = system or OpenWrtSystem()
        self.source_model = source_model or SourceModel()
        self.write_path = WritePath(self.device, self.filesystem,
                                    hardware.cpu_mhz)
        self._sources: dict[str, ContentSource] = {}
        self._stored_bytes = 0.0

    # -- storage management ------------------------------------------------------

    @property
    def free_bytes(self) -> float:
        return self.device.capacity - self._stored_bytes

    def store(self, size: float) -> None:
        if size > self.free_bytes:
            raise ValueError(
                f"{self.hardware.name}: {size:.0f} B exceeds free space")
        self._stored_bytes += size

    def remove(self, size: float) -> None:
        self._stored_bytes = max(0.0, self._stored_bytes - size)

    # -- pre-download -------------------------------------------------------------

    def source_for(self, record: CatalogFile) -> ContentSource:
        source = self._sources.get(record.file_id)
        if source is None:
            source = self.source_model.build(
                record.file_id, record.protocol, record.weekly_demand)
            self._sources[record.file_id] = source
        return source

    def max_pre_download_rate(self,
                              network_rate: Optional[float] = None) -> float:
        """The write-path ceiling, optionally clipped by a network rate."""
        ceiling = self.write_path.max_throughput
        if network_rate is not None:
            ceiling = min(ceiling, network_rate)
        return ceiling

    def pre_download(self, record: CatalogFile,
                     rng: np.random.Generator,
                     access_bandwidth: Optional[float] = None,
                     uplink_bandwidth: Optional[float] = None,
                     size_override: Optional[float] = None,
                     extra_rate_caps: tuple[float, ...] = ()
                     ) -> tuple[DownloadOutcome, float]:
        """Run one pre-download; returns (outcome, iowait ratio).

        ``access_bandwidth`` is the replayed user's recorded line rate
        (the benchmark throttles to it, section 5.1); ``uplink_bandwidth``
        is the physical testbed line (20 Mbps ADSL).  The write path caps
        the rate on top of both, and the achieved rate determines the
        measured iowait.

        ``size_override`` replaces the transfer size (checkpoint-resume
        restarts fetch only the uncommitted remainder) and
        ``extra_rate_caps`` adds further rate ceilings (fault injection:
        degraded flash or a lossy uplink); the defaults leave the
        fault-free behaviour -- including the RNG draw sequence --
        untouched.
        """
        # A firmware bug kills the task outright, regardless of source.
        if self.system.draw_bug_failure(rng):
            duration = rng.uniform(30.0, 1800.0)
            outcome = DownloadOutcome(
                success=False, duration=duration, bytes_obtained=0.0,
                file_size=record.size, average_rate=0.0, peak_rate=0.0,
                traffic=0.0, failure_cause=CAUSE_SYSTEM_BUG)
            return outcome, 0.0

        # Exercise the client-selection path (raises if the AP image had
        # no client for the protocol -- all three ship wget + aria2).
        self.system.client_for(record.protocol)

        caps = [self.write_path.max_throughput]
        if access_bandwidth is not None:
            caps.append(access_bandwidth)
        if uplink_bandwidth is not None:
            caps.append(uplink_bandwidth)
        caps.extend(extra_rate_caps)
        size = record.size if size_override is None else size_override
        session = DownloadSession(self.source_for(record), size,
                                  HOME_VANTAGE,
                                  limits=SessionLimits(
                                      rate_caps=tuple(caps)))
        outcome = session.simulate(rng)
        iowait = self.write_path.iowait_ratio(outcome.average_rate)
        return outcome, iowait

    # -- LAN fetching ----------------------------------------------------------------

    def lan_fetch_rate(self, rng: np.random.Generator,
                       wired: bool = False) -> float:
        """Speed at which a user device pulls a finished file off the AP.

        Wired/dump fetches run at the device's sequential read rate; WiFi
        fetches land in the hardware's measured 8-12 MBps band.  Either
        way this exceeds the cloud's maximum fetch speed, which is why
        the paper treats the AP fetch phase as a non-issue.
        """
        if wired:
            return self.device.max_read_rate
        return float(rng.uniform(self.hardware.lan_fetch_rate_low,
                                 self.hardware.lan_fetch_rate_high))

    def concurrent_lan_fetch_rates(self, demands: list[float],
                                   rng: np.random.Generator
                                   ) -> list[float]:
        """Per-device rates when several devices fetch at once.

        The one case where the AP fetch phase *is* an issue (section
        5.2): concurrent fetchers share the WiFi airtime max-min fairly,
        additionally capped by the storage device's sequential read
        rate.  Returns one rate per demanding device, in input order.
        """
        if not demands:
            return []
        airtime = self.lan_fetch_rate(rng)
        capacity = min(airtime, self.device.max_read_rate)
        pool = FairSharePool(capacity, name=f"{self.hardware.name}-lan")
        flows = [pool.add_flow(demand) for demand in demands]
        return [pool.share_of(flow) for flow in flows]
