"""The APs' software stack: OpenWrt with Opkg-installed download clients.

All three benchmarked APs run OpenWrt and drive downloads with
Opkg-installable clients -- ``wget`` for HTTP/FTP and ``aria2`` for
BitTorrent/eMule (paper section 2.2).  This module models the software
side: which client handles which protocol, and the residual firmware
flakiness the paper measured (6 of 1000 replayed requests, 0.6%, failed
to "system bugs" in the AP stacks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.transfer.protocols import Protocol

#: Share of requests lost to AP firmware/application bugs (section 5.2:
#: 6 of 1000 replays, across all three devices).
DEFAULT_BUG_FAILURE_RATE = 0.006


@dataclass(frozen=True)
class DownloadClient:
    """One Opkg-installed download tool and what it speaks."""

    package: str
    protocols: tuple[Protocol, ...]

    def supports(self, protocol: Protocol) -> bool:
        return protocol in self.protocols


WGET = DownloadClient(package="wget",
                      protocols=(Protocol.HTTP, Protocol.FTP))
ARIA2 = DownloadClient(package="aria2",
                       protocols=(Protocol.BITTORRENT, Protocol.EMULE))

#: Diagnostic tooling the benchmark methodology section lists; kept as a
#: manifest so the rig can report what a real replay would install.
DIAGNOSTIC_PACKAGES = ("bash", "tcpdump", "top", "iostat", "scp")


@dataclass
class OpenWrtSystem:
    """The OpenWrt userland of one AP."""

    clients: tuple[DownloadClient, ...] = (WGET, ARIA2)
    diagnostic_packages: tuple[str, ...] = DIAGNOSTIC_PACKAGES
    bug_failure_rate: float = DEFAULT_BUG_FAILURE_RATE

    def __post_init__(self):
        if not 0.0 <= self.bug_failure_rate < 1.0:
            raise ValueError("bug_failure_rate must be a probability")

    def client_for(self, protocol: Protocol) -> DownloadClient:
        """The installed client handling ``protocol``."""
        for client in self.clients:
            if client.supports(protocol):
                return client
        raise LookupError(f"no installed client speaks {protocol}")

    def draw_bug_failure(self, rng: np.random.Generator) -> bool:
        """Does this request die to a firmware/application bug?"""
        return bool(rng.random() < self.bug_failure_rate)

    def installed_packages(self) -> tuple[str, ...]:
        return tuple(client.package for client in self.clients) + \
            self.diagnostic_packages
