"""The benchmark runner behind ``python -m repro.perf``.

For each canonical stage (:data:`repro.perf.stages.STAGES`) the harness

1. builds the stage's inputs untimed,
2. times the frozen pre-optimisation baseline (where one exists) and
   the live optimised path, best-of-``repeats`` wall-clock each,
3. profiles one optimised run with :mod:`cProfile` and keeps the top-N
   cumulative-time lines,

and writes the whole thing to ``BENCH_perf.json`` -- the artefact the
regression guard (``benchmarks/test_bench_perf_guard.py``) and CI read.

Timing discipline: thunks are warmed once before timing (so import
costs, lru_caches and allocator warm-up are excluded), the GC is
disabled around each timed run, and best-of-N is reported (the usual
choice for wall-clock microbenchmarks: the minimum is the least noisy
estimator of the achievable time).
"""

from __future__ import annotations

import cProfile
import gc
import io
import json
import platform
import pstats
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Optional

from repro.perf.stages import STAGES, Stage, StagePlan

#: Default best-of-N repeats (full vs smoke runs).
FULL_REPEATS = 3
SMOKE_REPEATS = 1

#: cProfile lines kept per stage.
PROFILE_TOP = 12


@dataclass
class StageResult:
    """Measured numbers for one stage at one scale."""

    name: str
    title: str
    scale: float
    repeats: int
    optimized_seconds: float
    baseline_seconds: Optional[float] = None
    note: str = ""
    profile_top: list[str] = field(default_factory=list)

    @property
    def speedup(self) -> Optional[float]:
        """Baseline/optimized wall-clock ratio (>1 means faster now)."""
        if self.baseline_seconds is None or self.optimized_seconds <= 0:
            return None
        return self.baseline_seconds / self.optimized_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "title": self.title,
            "scale": self.scale,
            "repeats": self.repeats,
            "baseline_seconds": self.baseline_seconds,
            "optimized_seconds": self.optimized_seconds,
            "speedup": self.speedup,
            "note": self.note,
            "profile_top": self.profile_top,
        }


@dataclass
class BenchReport:
    """One harness invocation's worth of stage results."""

    smoke: bool
    stages: list[StageResult] = field(default_factory=list)

    def stage(self, name: str) -> StageResult:
        for result in self.stages:
            if result.name == name:
                return result
        raise KeyError(name)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro.perf/bench-report/v1",
            "mode": "smoke" if self.smoke else "full",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "stages": [result.to_dict() for result in self.stages],
        }

    def render(self) -> str:
        """Human-readable table for terminal output."""
        lines = [
            f"repro.perf ({'smoke' if self.smoke else 'full'} mode, "
            f"python {platform.python_version()})",
            f"{'stage':<18} {'scale':>6} {'baseline':>9} "
            f"{'optimized':>9} {'speedup':>8}",
        ]
        for result in self.stages:
            baseline = (f"{result.baseline_seconds:8.3f}s"
                        if result.baseline_seconds is not None else
                        f"{'-':>9}")
            speedup = (f"{result.speedup:7.2f}x"
                       if result.speedup is not None else f"{'-':>8}")
            lines.append(
                f"{result.name:<18} {result.scale:>6g} {baseline} "
                f"{result.optimized_seconds:8.3f}s {speedup}")
        return "\n".join(lines)


def _time_once(thunk: Callable[[], object]) -> float:
    """Wall-clock seconds for one run, with the GC parked outside it."""
    timer = time.perf_counter
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = timer()
        thunk()
        return timer() - start
    finally:
        if gc_was_enabled:
            gc.enable()


def _time_best_of(thunk: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for one thunk.

    The first (untimed) call warms caches; the GC stays off during the
    timed window so collection pauses land between runs, not inside.
    """
    thunk()
    return min(_time_once(thunk) for _ in range(repeats))


def _time_pair_best_of(baseline: Callable[[], object],
                       optimized: Callable[[], object],
                       repeats: int) -> tuple[float, float]:
    """Best-of-``repeats`` for two thunks, repetitions interleaved.

    Timing baseline and optimized back-to-back inside each repetition
    (rather than all of one, then all of the other) means slow drifts
    in machine speed -- thermal throttling, a neighbour tenant waking
    up -- hit both sides of the reported ratio alike instead of landing
    wholly on whichever thunk ran later.
    """
    baseline()
    optimized()
    best_baseline = float("inf")
    best_optimized = float("inf")
    for _ in range(repeats):
        best_baseline = min(best_baseline, _time_once(baseline))
        best_optimized = min(best_optimized, _time_once(optimized))
    return best_baseline, best_optimized


def _repo_root() -> Path:
    """The checkout root, derived from this module's location.

    ``src/repro/perf/harness.py`` -> three parents up.  Used to strip
    machine-specific absolute prefixes from profile lines so the
    committed ``BENCH_perf.json`` is reproducible across checkouts.
    """
    return Path(__file__).resolve().parents[3]


def _relativize(line: str) -> str:
    """Rewrite absolute repo paths in a pstats line to repo-relative."""
    root = str(_repo_root())
    if root in line:
        line = line.replace(root + "/", "").replace(root, ".")
    return line


def _profile_top(thunk: Callable[[], object], top: int) -> list[str]:
    """Top-``top`` cumulative-time lines of one profiled run.

    File paths are rewritten repo-relative (``src/repro/...``) so the
    lines that land in ``BENCH_perf.json`` carry no absolute paths.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        thunk()
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    lines = buffer.getvalue().splitlines()
    # Drop the pstats preamble; keep from the column header on.
    for index, line in enumerate(lines):
        if line.lstrip().startswith("ncalls"):
            lines = lines[index:]
            break
    return [_relativize(line.rstrip())
            for line in lines if line.strip()][:top + 1]


def _run_stage(stage: Stage, smoke: bool, repeats: int,
               profile_top: int) -> StageResult:
    scale = stage.scale_for(smoke)
    with tempfile.TemporaryDirectory(prefix=f"perf-{stage.name}-") as tmp:
        plan: StagePlan = stage.build(scale, Path(tmp))
        baseline_seconds = None
        if plan.baseline is not None:
            baseline_seconds, optimized_seconds = _time_pair_best_of(
                plan.baseline, plan.optimized, repeats)
        else:
            optimized_seconds = _time_best_of(plan.optimized, repeats)
        top = (_profile_top(plan.optimized, profile_top)
               if profile_top > 0 else [])
    return StageResult(name=stage.name, title=stage.title, scale=scale,
                       repeats=repeats, optimized_seconds=optimized_seconds,
                       baseline_seconds=baseline_seconds, note=plan.note,
                       profile_top=top)


def run_benchmarks(smoke: bool = False, repeats: Optional[int] = None,
                   profile_top: int = PROFILE_TOP,
                   stage_names: Optional[Iterable[str]] = None,
                   progress: bool = False) -> BenchReport:
    """Run the selected stages and return their measurements.

    ``stage_names`` defaults to every canonical stage in pipeline
    order; unknown names raise ``KeyError`` up front rather than after
    minutes of benchmarking.
    """
    if repeats is None:
        repeats = SMOKE_REPEATS if smoke else FULL_REPEATS
    if stage_names is None:
        selected = list(STAGES.values())
    else:
        selected = [STAGES[name] for name in stage_names]
    report = BenchReport(smoke=smoke)
    for stage in selected:
        if progress:
            print(f"[repro.perf] {stage.name} "
                  f"(scale={stage.scale_for(smoke):g}) ...",
                  file=sys.stderr, flush=True)
        report.stages.append(
            _run_stage(stage, smoke, repeats, profile_top))
    return report


def write_report(report: BenchReport, path: str | Path) -> Path:
    """Atomically write the report as indented JSON; returns the path."""
    from repro.recovery.atomic import atomic_write_text
    return atomic_write_text(
        Path(path), json.dumps(report.to_dict(), indent=2) + "\n")
