"""CLI entry point: ``python -m repro.perf [--smoke] [--out PATH]``.

Runs the canonical stage benchmarks (baseline vs optimised where a
frozen baseline exists), prints the summary table, and writes the full
report -- including per-stage cProfile top-N -- to ``BENCH_perf.json``.
"""

from __future__ import annotations

import argparse
import sys

from repro.perf.harness import (
    PROFILE_TOP,
    run_benchmarks,
    write_report,
)
from repro.perf.stages import STAGES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Time the canonical pipeline stages against the "
                    "frozen pre-optimisation baselines.")
    parser.add_argument("--smoke", action="store_true",
                        help="small scales / single repeat (CI mode)")
    parser.add_argument("--out", default="BENCH_perf.json",
                        help="report path (default: %(default)s)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N repeats (default: 3, 1 in smoke)")
    parser.add_argument("--profile-top", type=int, default=PROFILE_TOP,
                        help="cProfile lines kept per stage; 0 disables "
                             "profiling (default: %(default)s)")
    parser.add_argument("--stage", action="append", choices=sorted(STAGES),
                        help="run only this stage (repeatable)")
    args = parser.parse_args(argv)

    report = run_benchmarks(smoke=args.smoke, repeats=args.repeats,
                            profile_top=args.profile_top,
                            stage_names=args.stage, progress=True)
    print(report.render())
    path = write_report(report, args.out)
    print(f"report written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
