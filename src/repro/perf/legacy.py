"""Frozen pre-optimisation reference implementations (PR 3 baseline).

Verbatim copies of the hot-path code as it stood *before* the
profile-guided optimisation pass: the scalar per-record samplers, the
CIDR-parsing-per-allocation address allocator, the lambda-heap engine
with O(n) waiter removal, the uncached topology, and the line-at-a-time
trace writers.

They serve two purposes:

* the ``repro.perf`` harness times them as the **baseline** of every
  before/after comparison in ``BENCH_perf.json``;
* the golden tests run them against the same pinned digests as the
  optimised code, proving the two implementations are bit-identical --
  the determinism contract of the optimisation pass.

Do not "fix" or modernise this module; its value is that it does not
change.
"""

from __future__ import annotations

import heapq
import itertools
import json
from dataclasses import asdict, fields
from pathlib import Path
from typing import Any, Callable, Generator, Iterable, Optional, Type

import numpy as np

from repro.netsim.ip import IpResolver  # noqa: F401  (re-export parity)
from repro.netsim.isp import ISP, IspRegistry, default_registry
from repro.netsim.link import AccessBandwidthModel
from repro.netsim.topology import ChinaTopology, PathQuality
from repro.sim.clock import DAY
from repro.sim.engine import Interrupt, SimulationError, Timeout
from repro.sim.randomness import RngFactory
from repro.storage.dedup import content_id
from repro.transfer.protocols import Protocol
from repro.workload.arrivals import ArrivalProcess
from repro.workload.catalog import PROTOCOL_MIX, FileCatalog, QuotaDeck
from repro.workload.filetypes import FileType, FileTypeModel
from repro.workload.generator import (
    PICK_RETRIES,
    Workload,
    WorkloadConfig,
)
from repro.workload.popularity import (
    HIGHLY_POPULAR_ABOVE,
    UNPOPULAR_BELOW,
    PopularityClass,
    PopularityModel,
)
from repro.workload.records import (
    CatalogFile,
    RequestRecord,
    User,
    _TraceRecord,
)
from repro.workload.sizes import FileSizeModel

# ---------------------------------------------------------------------------
# Scalar samplers (pre-optimisation: per-call table rebuilds + rng.choice)
# ---------------------------------------------------------------------------


def legacy_sample_class(model: PopularityModel,
                        rng: np.random.Generator) -> PopularityClass:
    draw = rng.random()
    if draw < model.unpopular_file_share:
        return PopularityClass.UNPOPULAR
    if draw < model.unpopular_file_share + model.popular_file_share:
        return PopularityClass.POPULAR
    return PopularityClass.HIGHLY_POPULAR


def legacy_sample_weekly_demand(model: PopularityModel,
                                rng: np.random.Generator) -> int:
    klass = legacy_sample_class(model, rng)
    if klass is PopularityClass.UNPOPULAR:
        p = model.unpopular_geom_p
        weights = np.array([(1 - p) ** (k - 1)
                            for k in range(1, UNPOPULAR_BELOW)])
        k = rng.choice(np.arange(1, UNPOPULAR_BELOW),
                       p=weights / weights.sum())
        return int(k)
    if klass is PopularityClass.POPULAR:
        lo, hi = UNPOPULAR_BELOW, HIGHLY_POPULAR_ABOVE
        support = np.arange(lo, hi + 1)
        weights = support.astype(float) ** (-model.popular_exponent)
        return int(rng.choice(support, p=weights / weights.sum()))
    lo = HIGHLY_POPULAR_ABOVE + 1
    while True:
        draw = model.highly_popular_median * float(
            np.exp(rng.normal(0.0, model.highly_popular_sigma)))
        if lo <= draw <= model.max_weekly_demand:
            return int(np.floor(draw))


def legacy_size_sample(model: FileSizeModel,
                       rng: np.random.Generator) -> tuple[float, bool]:
    if rng.random() < model.small_share:
        log_size = rng.uniform(np.log(model.min_size),
                               np.log(model.small_threshold))
        return float(np.exp(log_size)), True
    while True:
        size = model.large_median * float(
            np.exp(rng.normal(0.0, model.large_sigma)))
        if model.small_threshold <= size <= model.max_size:
            return size, False


def legacy_type_sample(model: FileTypeModel, is_small: bool,
                       rng: np.random.Generator) -> FileType:
    mix = model.small_mix if is_small else model.large_mix
    types = list(mix.keys())
    weights = np.array([mix[t] for t in types])
    index = rng.choice(len(types), p=weights / weights.sum())
    return types[int(index)]


def legacy_sample_isp(registry: IspRegistry, rng) -> ISP:
    order = registry.isps()
    shares = [registry.profile(isp).population_share for isp in order]
    index = rng.choice(len(order), p=shares)
    return order[int(index)]


def legacy_sample_downstream(model: AccessBandwidthModel,
                             rng: np.random.Generator) -> float:
    from repro.sim.clock import mbps
    if rng.random() < model.low_tail_fraction:
        low, high = np.log(mbps(0.064)), np.log(mbps(1.0))
        return float(np.exp(rng.uniform(low, high)))
    draw = model.body_median * np.exp(rng.normal(0.0, model.body_sigma))
    return float(min(draw, model.max_downstream))


def legacy_sample_times(process: ArrivalProcess, count: int,
                        rng: np.random.Generator) -> np.ndarray:
    """Pre-optimisation arrival sampling: the CDF grid is rebuilt per call."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return np.empty(0)
    grid = np.arange(0.0, process.horizon + process.grid_step,
                     process.grid_step)
    midpoints = (grid[:-1] + grid[1:]) / 2.0
    weights = process.intensity(midpoints)
    cdf = np.concatenate([[0.0], np.cumsum(weights)])
    cdf /= cdf[-1]
    uniform = rng.random(count)
    times = np.interp(uniform, cdf, grid)
    return np.sort(times)


class LegacyIpAllocator:
    """Pre-optimisation allocator: CIDR strings parsed on every call."""

    def __init__(self, registry: Optional[IspRegistry] = None):
        self._registry = registry or default_registry()
        self._cursors: dict[ISP, tuple[int, int]] = {}
        for isp in self._registry.isps():
            self._cursors[isp] = (0, 1)

    def allocate(self, isp: ISP) -> str:
        import ipaddress
        profile = self._registry.profile(isp)
        networks = [ipaddress.ip_network(cidr) for cidr in profile.cidrs]
        block_index, offset = self._cursors[isp]
        while block_index < len(networks):
            network = networks[block_index]
            if offset < network.num_addresses - 1:
                address = network.network_address + offset
                self._cursors[isp] = (block_index, offset + 1)
                return str(address)
            block_index, offset = block_index + 1, 1
        raise RuntimeError(f"address space of {isp} exhausted")


# ---------------------------------------------------------------------------
# Workload synthesis (pre-optimisation scalar pipeline)
# ---------------------------------------------------------------------------


def legacy_pick_distinct_index(count: int, seen: set[int],
                               rng: np.random.Generator,
                               retries: int = PICK_RETRIES) -> int:
    for _attempt in range(retries):
        index = int(rng.integers(count))
        if index not in seen:
            seen.add(index)
            return index
    return int(rng.integers(count))


def legacy_catalog_generate(catalog: FileCatalog, count: int,
                            rng: np.random.Generator) -> list[CatalogFile]:
    if count < 0:
        raise ValueError("count must be non-negative")
    protocol_deck = QuotaDeck(
        tuple(protocol for protocol, _share in PROTOCOL_MIX),
        tuple(share for _protocol, share in PROTOCOL_MIX))
    type_decks = {
        True: QuotaDeck(tuple(catalog.type_model.small_mix),
                        tuple(catalog.type_model.small_mix.values())),
        False: QuotaDeck(tuple(catalog.type_model.large_mix),
                         tuple(catalog.type_model.large_mix.values())),
    }
    created: list[CatalogFile] = []
    start = len(catalog.files)
    for index in range(start, start + count):
        size, is_small = legacy_size_sample(catalog.size_model, rng)
        protocol = protocol_deck.draw(rng)
        file_id = content_id(f"file-{index}")
        record = CatalogFile(
            file_id=file_id,
            size=size,
            file_type=type_decks[is_small].draw(rng),
            protocol=protocol,
            weekly_demand=legacy_sample_weekly_demand(
                catalog.popularity_model, rng),
            source_url=f"{protocol.value}://origin/{file_id}",
        )
        catalog.files[file_id] = record
        created.append(record)
    return created


def legacy_users_generate(count: int, rng: np.random.Generator,
                          registry: Optional[IspRegistry] = None,
                          bandwidth_model: Optional[
                              AccessBandwidthModel] = None,
                          report_probability: float = 0.7,
                          start: int = 0) -> list[User]:
    registry = registry or default_registry()
    bandwidth_model = bandwidth_model or AccessBandwidthModel()
    allocator = LegacyIpAllocator(registry)
    users: list[User] = []
    for index in range(start, start + count):
        isp = legacy_sample_isp(registry, rng)
        users.append(User(
            user_id=f"u{index:08d}",
            ip_address=allocator.allocate(isp),
            isp=isp,
            access_bandwidth=legacy_sample_downstream(bandwidth_model,
                                                      rng),
            reports_bandwidth=bool(rng.random() < report_probability),
        ))
    return users


def legacy_build_requests(catalog: FileCatalog, users: list[User],
                          arrivals: ArrivalProcess,
                          rng_factory: RngFactory,
                          task_prefix: str = "t") -> list[RequestRecord]:
    assign_rng = rng_factory.stream("request-assignment")
    time_rng = rng_factory.stream("request-times")

    slots: list[CatalogFile] = []
    for record in catalog:
        slots.extend([record] * record.weekly_demand)
    assign_rng.shuffle(slots)  # type: ignore[arg-type]
    times = legacy_sample_times(arrivals, len(slots), time_rng)

    used_users: dict[str, set[int]] = {}
    requests: list[RequestRecord] = []
    for index, (record, when) in enumerate(zip(slots, times)):
        seen = used_users.setdefault(record.file_id, set())
        user = users[legacy_pick_distinct_index(len(users), seen,
                                                assign_rng)]
        requests.append(RequestRecord(
            task_id=f"{task_prefix}{index:08d}",
            user_id=user.user_id,
            ip_address=user.ip_address,
            access_bandwidth=user.reported_bandwidth,
            request_time=float(when),
            file_id=record.file_id,
            file_type=record.file_type,
            file_size=record.size,
            source_url=record.source_url,
            protocol=record.protocol,
        ))
    return requests


def legacy_generate(config: WorkloadConfig) -> Workload:
    """The complete pre-optimisation ``WorkloadGenerator.generate``."""
    from repro.workload.users import UserPopulation
    rng_factory = RngFactory(config.seed)
    catalog = FileCatalog()
    legacy_catalog_generate(catalog, config.file_count,
                            rng_factory.stream("catalog"))
    population = UserPopulation()
    population.users = legacy_users_generate(
        config.user_count, rng_factory.stream("users"),
        registry=population.registry,
        bandwidth_model=population.bandwidth_model,
        report_probability=population.report_probability)
    arrivals = ArrivalProcess(horizon=config.horizon)
    requests = legacy_build_requests(catalog, population.users, arrivals,
                                     rng_factory)
    return Workload(config=config, catalog=catalog,
                    users=population.users, requests=requests)


# ---------------------------------------------------------------------------
# Topology (pre-optimisation: shortest path recomputed per query)
# ---------------------------------------------------------------------------


class LegacyTopology(ChinaTopology):
    """Recomputes the networkx shortest path on every quality query."""

    def hop_count(self, src: ISP, dst: ISP) -> int:
        import networkx as nx
        if src == dst:
            return 0
        return nx.shortest_path_length(self._graph, src, dst)

    def path_quality(self, src: ISP, dst: ISP) -> PathQuality:
        from repro.netsim.topology import (
            _CROSS_LATENCY_MS,
            _INTRA_LATENCY_MS,
        )
        hops = self.hop_count(src, dst)
        if hops == 0:
            return PathQuality(cap_median=self._intra_cap_median,
                               cap_sigma=self._intra_cap_sigma,
                               latency_ms=_INTRA_LATENCY_MS, hops=0)
        cap = self._cross_cap_median / (2.0 ** (hops - 1))
        latency = _INTRA_LATENCY_MS + hops * _CROSS_LATENCY_MS
        return PathQuality(cap_median=cap,
                           cap_sigma=self._cross_cap_sigma,
                           latency_ms=latency, hops=hops)


# ---------------------------------------------------------------------------
# Trace IO (pre-optimisation: asdict + one write per record)
# ---------------------------------------------------------------------------


def legacy_to_dict(record: _TraceRecord) -> dict[str, Any]:
    raw = asdict(record)
    for key, value in raw.items():
        if isinstance(value, (Protocol, FileType, ISP, PopularityClass)):
            raw[key] = value.value
    return raw


def legacy_from_dict(cls: Type[_TraceRecord],
                     raw: dict[str, Any]) -> _TraceRecord:
    converted = dict(raw)
    for spec in fields(cls):
        if spec.name not in converted:
            continue
        value = converted[spec.name]
        if value is None:
            continue
        if spec.type in ("Protocol", Protocol):
            converted[spec.name] = Protocol(value)
        elif spec.type in ("FileType", FileType):
            converted[spec.name] = FileType(value)
        elif spec.type in ("ISP", ISP, "Optional[ISP]"):
            converted[spec.name] = ISP(value)
    return cls(**converted)


def legacy_write_jsonl(path: str | Path,
                       records: Iterable[_TraceRecord]) -> int:
    from repro.workload.traceio import _open_text
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with _open_text(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(legacy_to_dict(record)) + "\n")
            count += 1
    return count


def legacy_read_jsonl(path: str | Path,
                      record_type: Type[_TraceRecord]) -> list:
    from repro.workload.traceio import _open_text
    path = Path(path)
    records: list = []
    with _open_text(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(legacy_from_dict(record_type,
                                                json.loads(line)))
    return records


# ---------------------------------------------------------------------------
# Engine (pre-optimisation: lambda heap entries, list-based waiters)
# ---------------------------------------------------------------------------


class LegacyEvent:
    """Verbatim pre-optimisation :class:`repro.sim.engine.Event`."""

    __slots__ = ("_sim", "_triggered", "_value", "_waiters", "name")

    def __init__(self, sim: "LegacySimulator", name: str = ""):
        self._sim = sim
        self._triggered = False
        self._value: Any = None
        self._waiters: list[LegacyProcess] = []
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(
                f"value of event {self.name!r} read before trigger "
                f"at t={self._sim.now:g}")
        return self._value

    def trigger(self, value: Any = None) -> None:
        if self._triggered:
            raise SimulationError(
                f"event {self.name!r} triggered twice "
                f"at t={self._sim.now:g}")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._sim._schedule_resume(process, value)

    def _add_waiter(self, process: "LegacyProcess") -> None:
        if self._triggered:
            self._sim._schedule_resume(process, self._value)
        else:
            self._waiters.append(process)

    def _remove_waiter(self, process: "LegacyProcess") -> None:
        try:
            self._waiters.remove(process)
        except ValueError:
            pass


class LegacyProcess:
    """Verbatim pre-optimisation :class:`repro.sim.engine.Process`."""

    __slots__ = ("_sim", "_generator", "_done", "_result", "_error",
                 "_waiters", "_waiting_on", "_resume_token", "name")

    def __init__(self, sim: "LegacySimulator",
                 generator: Generator[Any, Any, Any], name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                "Process requires a generator; did you forget to call "
                "the process function?")
        self._sim = sim
        self._generator = generator
        self._done = False
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._waiters: list[LegacyProcess] = []
        self._waiting_on: Any = None
        self._resume_token = 0
        self.name = name or getattr(generator, "__name__", "process")

    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self) -> Any:
        if not self._done:
            raise SimulationError(
                f"result of process {self.name!r} read while still "
                f"running at t={self._sim.now:g}")
        if self._error is not None:
            raise self._error
        return self._result

    def interrupt(self, cause: Any = None) -> None:
        if self._done:
            return
        obs = self._sim._obs
        if obs is not None:
            obs.interrupts.inc()
        self._sim._schedule_throw(self, Interrupt(cause))

    def _step(self, value: Any = None,
              error: Optional[BaseException] = None,
              token: Optional[int] = None) -> None:
        if self._done:
            return
        if token is not None and token != self._resume_token:
            return
        self._resume_token += 1
        self._detach_wait()
        try:
            if error is not None:
                target = self._generator.throw(error)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as exc:
            self._finish(error=exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Timeout):
            self._waiting_on = None
            self._sim.call_in(target.delay, self._step, target.value,
                              None, self._resume_token)
        elif isinstance(target, LegacyProcess):
            if target._done:
                if target._error is not None:
                    self._sim._schedule_throw(self, target._error)
                else:
                    self._sim._schedule_resume(self, target._result)
            else:
                target._waiters.append(self)
                self._waiting_on = target
        elif isinstance(target, LegacyEvent):
            target._add_waiter(self)
            self._waiting_on = target
        else:
            self._finish(error=SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r} "
                f"at t={self._sim.now:g}"))

    def _detach_wait(self) -> None:
        waiting = self._waiting_on
        self._waiting_on = None
        if isinstance(waiting, LegacyEvent):
            waiting._remove_waiter(self)
        elif isinstance(waiting, LegacyProcess):
            try:
                waiting._waiters.remove(self)
            except ValueError:
                pass

    def _finish(self, result: Any = None,
                error: Optional[BaseException] = None) -> None:
        self._done = True
        self._result = result
        self._error = error
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if error is not None:
                self._sim._schedule_throw(waiter, error)
            else:
                self._sim._schedule_resume(waiter, result)
        if error is not None and not waiters:
            self._sim._record_orphan_error(self, error)


class LegacySimulator:
    """Verbatim pre-optimisation :class:`repro.sim.engine.Simulator`."""

    def __init__(self, metrics=None):
        from repro.sim.engine import _SimObs
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._orphan_errors: list[tuple[str, BaseException]] = []
        self._obs = None
        if metrics is not None and metrics.enabled:
            metrics.set_clock(lambda: self._now)
            self._obs = _SimObs(metrics)

    @property
    def now(self) -> float:
        return self._now

    def call_at(self, when: float, func: Callable[..., None],
                *args: Any) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self._now}")
        if self._obs is not None:
            self._obs.scheduled.inc()
        heapq.heappush(
            self._heap,
            (when, next(self._sequence), lambda: func(*args)))

    def call_in(self, delay: float, func: Callable[..., None],
                *args: Any) -> None:
        self.call_at(self._now + delay, func, *args)

    def process(self, generator, name: str = "") -> LegacyProcess:
        process = LegacyProcess(self, generator, name=name)
        if self._obs is not None:
            self._obs.processes.inc()
        self.call_in(0.0, process._step, None)
        return process

    def event(self, name: str = "") -> LegacyEvent:
        return LegacyEvent(self, name=name)

    def _schedule_resume(self, process: LegacyProcess,
                         value: Any) -> None:
        if self._obs is not None:
            self._obs.resumes.inc()
        self.call_in(0.0, process._step, value)

    def _schedule_throw(self, process: LegacyProcess,
                        error: BaseException) -> None:
        self.call_in(0.0, lambda: process._step(None, error))

    def _record_orphan_error(self, process: LegacyProcess,
                             error: BaseException) -> None:
        self._orphan_errors.append((process.name, error))

    def run(self, until: Optional[float] = None) -> float:
        obs = self._obs
        while self._heap:
            when, _seq, callback = self._heap[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._heap)
            self._now = when
            if obs is not None:
                obs.fired.inc()
                obs.heap_depth.set(len(self._heap) + 1)
            callback()
            if self._orphan_errors:
                name, error = self._orphan_errors[0]
                raise SimulationError(
                    f"unhandled error in process {name!r} "
                    f"at t={self._now:g}") from error
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_all(self, batch) -> list[Any]:
        processes = [self.process(gen) for gen in batch]
        self.run()
        return [p.result for p in processes]


#: Sanity guard: the diurnal phase constant the legacy arrival sampler
#: shares with the live one (kept so a drive-by edit of either is
#: caught by the golden arrival digest, not silently absorbed).
_LEGACY_DAY = DAY
