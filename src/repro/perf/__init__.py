"""``repro.perf`` — the regression-benchmark harness.

PR 3's profile-guided optimisation pass made the three hot layers
(workload sampling, the event engine, trace IO) substantially faster
while keeping outputs bit-identical.  This package is the proof and the
guard-rail:

* :mod:`repro.perf.golden` — canonical digests of every optimised
  surface, pinned in ``tests/data/golden_digests.json``; the golden
  tests fail if any optimisation ever changes an output byte.
* :mod:`repro.perf.legacy` — the frozen pre-optimisation
  implementations (scalar samplers, lambda-heap engine, line-at-a-time
  trace IO), kept both as the baseline the harness times against and as
  an executable specification of the determinism contract.
* :mod:`repro.perf.stages` / :mod:`repro.perf.harness` — the
  ``python -m repro.perf`` benchmark harness: times the canonical
  stages (generate / cloud replay / AP replay / ODR replay / trace
  round-trip) before and after, captures cProfile top-N per stage, and
  writes ``BENCH_perf.json``.
"""

from repro.perf.harness import (
    BenchReport,
    StageResult,
    run_benchmarks,
    write_report,
)
from repro.perf.stages import STAGES, Stage

__all__ = [
    "BenchReport",
    "STAGES",
    "Stage",
    "StageResult",
    "run_benchmarks",
    "write_report",
]
