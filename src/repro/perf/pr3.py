"""Frozen PR 3-era reference implementations (the pre-batching baseline).

Verbatim copies of the hot-path code as it stood *after* the PR 3
profile-guided pass but *before* the PR 8 replay-core rebuild: the
tuple-heap engine that re-enters the heap for every same-instant event,
and the uploading-server admission that re-sorts its candidate groups
(allocating preference closures) on every fetch.

Like :mod:`repro.perf.legacy`, these serve two purposes:

* the ``repro.perf`` harness times them as the mid-tier baseline of the
  ``engine_dispatch`` and ``cloud_fast_tasks`` stages, isolating what
  the PR 8 layers bought *on top of* PR 3;
* the golden tests can replay the same scripted scenarios through them,
  proving the batched dispatch is bit-identical.

Do not "fix" or modernise this module; its value is that it does not
change.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

import numpy as np

from repro.cloud.config import CloudConfig
from repro.cloud.fetch import FetchSpeedModel
from repro.netsim.isp import ISP, MAJOR_ISPS
from repro.netsim.topology import ChinaTopology, PathQuality
from repro.obs.registry import AnyRegistry, NOOP
from repro.sim.clock import kbps, to_gbps
from repro.sim.engine import Interrupt, SimulationError, Timeout, _SimObs
from repro.sim.resources import (
    CapacityExceeded,
    Reservation,
    ReservationPool,
    UsageSample,
)

# ---------------------------------------------------------------------------
# Engine (PR 3: tuple heap, but every same-instant event re-enters it)
# ---------------------------------------------------------------------------


class Pr3Event:
    """Verbatim PR 3 :class:`repro.sim.engine.Event`."""

    __slots__ = ("_sim", "_triggered", "_value", "_waiters", "name")

    def __init__(self, sim: "Pr3Simulator", name: str = ""):
        self._sim = sim
        self._triggered = False
        self._value: Any = None
        self._waiters: dict[int, Pr3Process] = {}
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(
                f"value of event {self.name!r} read before trigger "
                f"at t={self._sim.now:g}")
        return self._value

    def trigger(self, value: Any = None) -> None:
        if self._triggered:
            raise SimulationError(
                f"event {self.name!r} triggered twice "
                f"at t={self._sim.now:g}")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, {}
        schedule_resume = self._sim._schedule_resume
        for process in waiters.values():
            schedule_resume(process, value)

    def _add_waiter(self, process: "Pr3Process") -> None:
        if self._triggered:
            self._sim._schedule_resume(process, self._value)
        else:
            self._waiters[id(process)] = process

    def _remove_waiter(self, process: "Pr3Process") -> None:
        self._waiters.pop(id(process), None)


class Pr3Process:
    """Verbatim PR 3 :class:`repro.sim.engine.Process`."""

    __slots__ = ("_sim", "_generator", "_done", "_result", "_error",
                 "_waiters", "_waiting_on", "_resume_token", "name")

    def __init__(self, sim: "Pr3Simulator",
                 generator: Generator[Any, Any, Any], name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                "Process requires a generator; did you forget to call the "
                "process function?")
        self._sim = sim
        self._generator = generator
        self._done = False
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._waiters: dict[int, Pr3Process] = {}
        self._waiting_on: Any = None
        self._resume_token = 0
        self.name = name or getattr(generator, "__name__", "process")

    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self) -> Any:
        if not self._done:
            raise SimulationError(
                f"result of process {self.name!r} read while still "
                f"running at t={self._sim.now:g}")
        if self._error is not None:
            raise self._error
        return self._result

    def interrupt(self, cause: Any = None) -> None:
        if self._done:
            return
        obs = self._sim._obs
        if obs is not None:
            obs.interrupts.inc()
        self._sim._schedule_throw(self, Interrupt(cause))

    def _step(self, value: Any = None,
              error: Optional[BaseException] = None,
              token: Optional[int] = None) -> None:
        if self._done:
            return
        if token is not None and token != self._resume_token:
            return
        self._resume_token += 1
        self._detach_wait()
        try:
            if error is not None:
                target = self._generator.throw(error)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as exc:
            self._finish(error=exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Timeout):
            self._waiting_on = None
            self._sim.call_in(target.delay, self._step, target.value,
                              None, self._resume_token)
        elif isinstance(target, Pr3Process):
            if target._done:
                if target._error is not None:
                    self._sim._schedule_throw(self, target._error)
                else:
                    self._sim._schedule_resume(self, target._result)
            else:
                target._waiters[id(self)] = self
                self._waiting_on = target
        elif isinstance(target, Pr3Event):
            target._add_waiter(self)
            self._waiting_on = target
        else:
            self._finish(error=SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r} "
                f"at t={self._sim.now:g}"))

    def _detach_wait(self) -> None:
        waiting = self._waiting_on
        if waiting is None:
            return
        self._waiting_on = None
        if isinstance(waiting, Pr3Event):
            waiting._waiters.pop(id(self), None)
        elif isinstance(waiting, Pr3Process):
            waiting._waiters.pop(id(self), None)

    def _finish(self, result: Any = None,
                error: Optional[BaseException] = None) -> None:
        self._done = True
        self._result = result
        self._error = error
        waiters, self._waiters = self._waiters, {}
        for waiter in waiters.values():
            if error is not None:
                self._sim._schedule_throw(waiter, error)
            else:
                self._sim._schedule_resume(waiter, result)
        if error is not None and not waiters:
            self._sim._record_orphan_error(self, error)


class Pr3Simulator:
    """Verbatim PR 3 :class:`repro.sim.engine.Simulator`.

    Every event -- including the ~50% of a cloud replay scheduled for
    the *current* instant (process starts, resumes, throws) -- pays a
    full ``heappush``/``heappop`` against the whole pending-event heap.
    """

    def __init__(self, metrics: Optional["AnyRegistry"] = None):
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._sequence = 0
        self._orphan_errors: list[tuple[str, BaseException]] = []
        self._obs: Optional[_SimObs] = None
        if metrics is not None and metrics.enabled:
            metrics.set_clock(lambda: self._now)
            self._obs = _SimObs(metrics)

    @property
    def now(self) -> float:
        return self._now

    def call_at(self, when: float, func: Callable[..., None],
                *args: Any) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self._now}")
        if self._obs is not None:
            self._obs.scheduled.inc()
        seq = self._sequence
        self._sequence = seq + 1
        heappush(self._heap, (when, seq, func, args))

    def call_in(self, delay: float, func: Callable[..., None],
                *args: Any) -> None:
        self.call_at(self._now + delay, func, *args)

    def process(self, generator, name: str = "") -> Pr3Process:
        process = Pr3Process(self, generator, name=name)
        if self._obs is not None:
            self._obs.processes.inc()
        self.call_in(0.0, process._step, None)
        return process

    def event(self, name: str = "") -> Pr3Event:
        return Pr3Event(self, name=name)

    def _schedule_resume(self, process: Pr3Process, value: Any) -> None:
        if self._obs is not None:
            self._obs.resumes.inc()
        self.call_in(0.0, process._step, value, None,
                     process._resume_token)

    def _schedule_throw(self, process: Pr3Process,
                        error: BaseException) -> None:
        self.call_in(0.0, process._step, None, error,
                     process._resume_token)

    def _record_orphan_error(self, process: Pr3Process,
                             error: BaseException) -> None:
        self._orphan_errors.append((process.name, error))

    def run(self, until: Optional[float] = None) -> float:
        obs = self._obs
        heap = self._heap
        orphans = self._orphan_errors
        pop = heappop
        while heap:
            if until is not None and heap[0][0] > until:
                break
            when, _seq, func, args = pop(heap)
            self._now = when
            if obs is not None:
                obs.fired.inc()
                obs.heap_depth.set(len(heap) + 1)
            func(*args)
            if orphans:
                name, error = orphans[0]
                raise SimulationError(
                    f"unhandled error in process {name!r} "
                    f"at t={self._now:g}") from error
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_all(self, batch: Iterable[Generator[Any, Any, Any]]) -> list[Any]:
        processes = [self.process(gen) for gen in batch]
        self.run()
        return [p.result for p in processes]


# ---------------------------------------------------------------------------
# Bandwidth reservations (PR 3: sample-object history, reserve-or-raise)
# ---------------------------------------------------------------------------


class Pr3ReservationPool(ReservationPool):
    """Verbatim PR 3 :class:`repro.sim.resources.ReservationPool`.

    The step-function history is a list of :class:`UsageSample` objects
    (one allocation per admission/release) and ``try_reserve`` funnels
    through the raising ``reserve`` -- the exception round-trip PR 8
    open-coded away.
    """

    def __init__(self, capacity: Optional[float], name: str = "pool"):
        super().__init__(capacity, name)
        self._history: list[UsageSample] = [UsageSample(0.0, 0.0)]

    def reserve(self, rate: float, now: float,
                label: str = "") -> Reservation:
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        if not self.can_admit(rate):
            self.rejections += 1
            raise CapacityExceeded(self, rate)
        self.committed += rate
        self.admissions += 1
        self.peak_committed = max(self.peak_committed, self.committed)
        self._record(now)
        return Reservation(self, rate, label=label)

    def try_reserve(self, rate: float, now: float,
                    label: str = "") -> Optional[Reservation]:
        try:
            return self.reserve(rate, now, label=label)
        except CapacityExceeded:
            return None

    def _release(self, reservation: Reservation, now: float) -> None:
        self.committed -= reservation.rate
        if self.committed < -1e-6:
            raise RuntimeError(f"pool {self.name!r} over-released")
        self.committed = max(self.committed, 0.0)
        self._record(now)

    def _record(self, now: float) -> None:
        last = self._history[-1]
        if last.time == now:
            last.committed = self.committed
        else:
            self._history.append(UsageSample(now, self.committed))

    def usage_history(self) -> list[UsageSample]:
        return list(self._history)

    def binned_usage(self, bin_width: float, horizon: float) -> list[float]:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        n_bins = max(1, int(round(horizon / bin_width)))
        totals = [0.0] * n_bins
        samples = self._history
        for index, sample in enumerate(samples):
            start = sample.time
            end = samples[index + 1].time if index + 1 < len(samples) \
                else horizon
            start, end = max(start, 0.0), min(end, horizon)
            if end <= start or sample.committed == 0.0:
                continue
            first_bin = int(start / bin_width)
            last_bin = min(int((end - 1e-12) / bin_width), n_bins - 1)
            for b in range(first_bin, last_bin + 1):
                lo = max(start, b * bin_width)
                hi = min(end, (b + 1) * bin_width)
                totals[b] += sample.committed * max(0.0, hi - lo)
        return [total / bin_width for total in totals]


# ---------------------------------------------------------------------------
# Fetch-speed model (PR 3: nested sampling methods, rng.uniform)
# ---------------------------------------------------------------------------


class Pr3FetchSpeedModel(FetchSpeedModel):
    """Verbatim PR 3 :class:`repro.cloud.fetch.FetchSpeedModel`.

    ``sample_speed`` goes through the ``sample_server_rate`` method call
    and a broadcasting ``rng.uniform`` -- draw-for-draw (and therefore
    bit-for-bit) identical to the live inlined version.
    """

    def sample_server_rate(self, rng) -> float:
        rate = self.server_rate_median * float(
            np.exp(rng.normal(0.0, self.server_rate_sigma)))
        return min(rate, self.server_rate_cap)

    def sample_speed(self, user_bandwidth: float, quality: PathQuality,
                     rng) -> float:
        if user_bandwidth <= 0:
            raise ValueError("user_bandwidth must be positive")
        speed = min(self.sample_server_rate(rng),
                    quality.sample_cap(rng),
                    user_bandwidth)
        if rng.random() < self.unknown_degradation_probability:
            speed *= rng.uniform(self.unknown_degradation_low,
                                 self.unknown_degradation_high)
        return speed


# ---------------------------------------------------------------------------
# Upload admission (PR 3: per-fetch candidate sort + preference closures)
# ---------------------------------------------------------------------------

MIN_USEFUL_RATE = kbps(16.0)


@dataclass(frozen=True)
class Pr3PathChoice:
    """Verbatim PR 3 :class:`repro.cloud.upload.PathChoice`."""

    server_isp: ISP
    privileged: bool
    quality: PathQuality


class Pr3UploadingServers:
    """Verbatim PR 3 :class:`repro.cloud.upload.UploadingServers`.

    ``candidate_groups`` rebuilds and sorts the alternative list (with a
    fresh ``preference`` closure querying the topology per candidate)
    on every admission.
    """

    def __init__(self, config: CloudConfig,
                 topology: Optional[ChinaTopology] = None,
                 metrics: AnyRegistry = NOOP):
        self.config = config
        self.topology = topology or ChinaTopology()
        self.pools: dict[ISP, ReservationPool] = {
            isp: Pr3ReservationPool(config.upload_capacity_of(isp),
                                    name=f"upload-{isp.value}")
            for isp in MAJOR_ISPS
        }
        self.rejected_fetches = 0
        self.total_fetches = 0
        self._m_fetches = metrics.counter("repro_cloud_fetches_total")
        self._m_rejects = metrics.counter(
            "repro_cloud_admission_rejects_total")
        self._m_crossings = metrics.counter(
            "repro_cloud_isp_barrier_crossings_total")
        self._m_upload = {
            isp: metrics.gauge("repro_cloud_upload_gbps", isp=isp.value)
            for isp in MAJOR_ISPS}

    def candidate_groups(self, user_isp: ISP) -> list[ISP]:
        if not self.config.privileged_paths:
            by_headroom = sorted(
                MAJOR_ISPS,
                key=lambda isp: -self.pools[isp].available)
            return by_headroom[:2]

        def preference(server_isp: ISP) -> tuple[float, float]:
            quality = self.topology.path_quality(server_isp, user_isp)
            return quality.latency_ms, -self.pools[server_isp].available
        alternatives = sorted((isp for isp in MAJOR_ISPS
                               if isp is not user_isp), key=preference)
        if user_isp in self.pools:
            return [user_isp, alternatives[0]]
        return alternatives[:2]

    def select_and_reserve(
            self, user_isp: ISP, now: float,
            rate_for_path: Callable[[PathQuality], float],
            exclude: frozenset[str] = frozenset(),
            rate_scale: Optional[Callable[[ISP], float]] = None,
    ) -> Optional[tuple[Pr3PathChoice, Reservation, float]]:
        self.total_fetches += 1
        self._m_fetches.inc()
        for server_isp in self.candidate_groups(user_isp):
            if server_isp.value in exclude:
                continue
            pool = self.pools[server_isp]
            assert pool.capacity is not None
            limit = self.config.admission_utilization_limit \
                if server_isp == user_isp \
                else self.config.overflow_utilization_limit
            if pool.committed >= pool.capacity * limit or \
                    pool.available < MIN_USEFUL_RATE:
                continue
            quality = self.topology.path_quality(server_isp, user_isp)
            rate = min(rate_for_path(quality), self.config.max_fetch_rate)
            if rate_scale is not None:
                rate *= rate_scale(server_isp)
            if rate <= 0:
                continue
            reservation = pool.try_reserve(rate, now, label=user_isp.value)
            if reservation is not None:
                choice = Pr3PathChoice(server_isp=server_isp,
                                       privileged=(server_isp == user_isp),
                                       quality=quality)
                if not choice.privileged:
                    self._m_crossings.inc()
                self._m_upload[server_isp].set(to_gbps(pool.committed))
                return choice, reservation, rate
        self.rejected_fetches += 1
        self._m_rejects.inc()
        return None

    @property
    def rejection_ratio(self) -> float:
        if self.total_fetches == 0:
            return 0.0
        return self.rejected_fetches / self.total_fetches

    def total_committed(self) -> float:
        return sum(pool.committed for pool in self.pools.values())

    def binned_total_usage(self, bin_width: float,
                           horizon: float) -> list[float]:
        per_pool = [pool.binned_usage(bin_width, horizon)
                    for pool in self.pools.values()]
        return [sum(values) for values in zip(*per_pool)]
