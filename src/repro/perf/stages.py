"""Canonical benchmark stages: what ``python -m repro.perf`` times.

Each :class:`Stage` builds a pair of zero-argument thunks for one
pipeline stage of the reproduction:

* ``optimized`` drives the live code path;
* ``baseline`` (where one exists) drives the frozen pre-optimisation
  implementation from :mod:`repro.perf.legacy`, fed the *same inputs*,
  so the measured ratio isolates exactly the PR 3 hot-path work.

Baselines exist for the three optimised layers -- workload generation
(scalar samplers vs vectorised tables), cloud replay (lambda-heap
engine + uncached topology vs the fast-path engine), and trace IO
(line-at-a-time vs chunked).  The AP and ODR replay stages have no
frozen counterpart: their inner loops are closed-form transfer
arithmetic that PR 3 touched only via shared records/samplers, so they
are timed without a ratio purely as regression tripwires.

Inputs are built *outside* the timed thunks (workloads, request
samples, cloud databases), so each thunk measures one stage, not its
setup.  Every stage pins the seeds it uses; the golden-digest tests
(``tests/test_perf_golden.py``) separately prove baseline and
optimized thunks produce bit-identical outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

#: Seed shared by every stage (the repo-wide workload seed).
STAGE_SEED = 20150222

#: Requests replayed through the AP rig / ODR evaluator per run.
AP_SAMPLE = 400
ODR_SAMPLE = 400


@dataclass(frozen=True)
class StagePlan:
    """The built thunks for one stage at one scale."""

    optimized: Callable[[], object]
    baseline: Optional[Callable[[], object]] = None
    #: Human note explaining a missing baseline.
    note: str = ""


@dataclass(frozen=True)
class Stage:
    """One named benchmark stage.

    ``build(scale, scratch)`` constructs the stage inputs (untimed) and
    returns the timed thunks; ``scratch`` is a per-stage temporary
    directory for stages that touch the filesystem.
    """

    name: str
    title: str
    full_scale: float
    smoke_scale: float
    build: Callable[[float, Path], StagePlan] = field(repr=False)

    def scale_for(self, smoke: bool) -> float:
        return self.smoke_scale if smoke else self.full_scale


# -- stage builders ---------------------------------------------------------


def _make_workload(scale: float):
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator

    config = WorkloadConfig(scale=scale, seed=STAGE_SEED)
    return WorkloadGenerator(config).generate()


def _build_generate(scale: float, scratch: Path) -> StagePlan:
    from repro.perf.legacy import legacy_generate
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator

    config = WorkloadConfig(scale=scale, seed=STAGE_SEED)
    return StagePlan(
        optimized=lambda: WorkloadGenerator(config).generate(),
        baseline=lambda: legacy_generate(config),
    )


def _build_cloud(scale: float, scratch: Path) -> StagePlan:
    import repro.cloud.system as cloud_system

    from repro.cloud import CloudConfig, XuanfengCloud
    from repro.perf.legacy import LegacySimulator, LegacyTopology

    workload = _make_workload(scale)
    config = CloudConfig(scale=scale)

    def optimized():
        return XuanfengCloud(config).run(workload)

    def baseline():
        # The cloud builds its engine via the module-global ``Simulator``
        # name and creates every event through ``sim.event()``, so
        # swapping the global is enough to run the whole replay on the
        # frozen engine; the legacy topology restores the uncached
        # networkx path queries.
        original = cloud_system.Simulator
        cloud_system.Simulator = LegacySimulator
        try:
            return XuanfengCloud(config,
                                 topology=LegacyTopology()).run(workload)
        finally:
            cloud_system.Simulator = original

    return StagePlan(optimized=optimized, baseline=baseline)


def _build_ap(scale: float, scratch: Path) -> StagePlan:
    from repro.ap import ApBenchmarkRig
    from repro.workload import sample_benchmark_requests

    workload = _make_workload(scale)
    sample = sample_benchmark_requests(workload, AP_SAMPLE)
    catalog = workload.catalog
    return StagePlan(
        optimized=lambda: ApBenchmarkRig(catalog).replay(sample),
        note="no frozen baseline: the AP rig's inner loop is transfer "
             "arithmetic PR 3 did not rewrite; timed as a tripwire only",
    )


def _build_odr(scale: float, scratch: Path) -> StagePlan:
    from repro.cloud import CloudConfig, XuanfengCloud
    from repro.core import OdrMiddleware, OdrStrategy, ReplayEvaluator
    from repro.workload import sample_benchmark_requests

    workload = _make_workload(scale)
    cloud = XuanfengCloud(CloudConfig(scale=scale))
    cloud.run(workload)
    sample = sample_benchmark_requests(workload, ODR_SAMPLE)
    catalog = workload.catalog
    database = cloud.database

    def optimized():
        strategy = OdrStrategy(OdrMiddleware(database))
        return ReplayEvaluator(catalog, database).replay(sample, strategy)

    return StagePlan(
        optimized=optimized,
        note="no frozen baseline: ODR replay is closed-form session "
             "arithmetic over a pre-built database; timed as a tripwire "
             "only",
    )


def _build_trace(scale: float, scratch: Path) -> StagePlan:
    from repro.perf.legacy import legacy_read_jsonl, legacy_write_jsonl
    from repro.workload.records import RequestRecord
    from repro.workload.traceio import read_jsonl, write_jsonl

    # The request trace dominates a saved workload (one row per request
    # vs one per file/user), so the round-trip times that file alone.
    requests = _make_workload(scale).requests
    live_path = scratch / "requests.live.jsonl"
    legacy_path = scratch / "requests.legacy.jsonl"

    def optimized():
        write_jsonl(live_path, requests)
        return read_jsonl(live_path, RequestRecord)

    def baseline():
        legacy_write_jsonl(legacy_path, requests)
        return legacy_read_jsonl(legacy_path, RequestRecord)

    return StagePlan(optimized=optimized, baseline=baseline)


#: The canonical stage list, in pipeline order.  Full scales are sized
#: so the whole harness runs in a couple of minutes on a laptop; smoke
#: scales keep CI under ~30 s while still exercising every code path.
STAGES: dict[str, Stage] = {
    stage.name: stage for stage in (
        Stage(name="workload_generate",
              title="workload generation (catalog + users + requests)",
              full_scale=0.02, smoke_scale=0.002, build=_build_generate),
        Stage(name="cloud_replay",
              title="cloud replay (Xuanfeng pre-download week)",
              full_scale=0.005, smoke_scale=0.002, build=_build_cloud),
        Stage(name="ap_replay",
              title=f"AP replay ({AP_SAMPLE}-request smart-AP benchmark)",
              full_scale=0.005, smoke_scale=0.002, build=_build_ap),
        Stage(name="odr_replay",
              title=f"ODR replay ({ODR_SAMPLE}-request end-to-end "
                    "evaluation)",
              full_scale=0.005, smoke_scale=0.002, build=_build_odr),
        Stage(name="trace_roundtrip",
              title="trace IO round-trip (request trace write + read)",
              full_scale=0.02, smoke_scale=0.002, build=_build_trace),
    )
}
