"""Canonical benchmark stages: what ``python -m repro.perf`` times.

Each :class:`Stage` builds a pair of zero-argument thunks for one
pipeline stage of the reproduction:

* ``optimized`` drives the live code path;
* ``baseline`` (where one exists) drives the frozen pre-optimisation
  implementation from :mod:`repro.perf.legacy`, fed the *same inputs*,
  so the measured ratio isolates exactly the PR 3 hot-path work.

Baselines come from two frozen snapshots: :mod:`repro.perf.legacy`
(pre-PR 3: scalar samplers, lambda-heap engine, uncached topology,
line-at-a-time IO) and :mod:`repro.perf.pr3` (pre-PR 8: the tuple-heap
engine without the same-instant dispatch queue, and the per-fetch-sort
upload admission).  ``cloud_replay`` measures the full stack-up --
live engine + fast-path task machine vs the pre-PR 3 everything --
while ``engine_dispatch``, ``cloud_fast_tasks`` and ``trace_columnar``
isolate the three PR 8 layers individually.  The AP and ODR replay
stages have no frozen counterpart: their inner loops are closed-form
transfer arithmetic the optimisation PRs touched only via shared
records/samplers, so they are timed without a ratio purely as
regression tripwires.

Inputs are built *outside* the timed thunks (workloads, request
samples, cloud databases), so each thunk measures one stage, not its
setup.  Every stage pins the seeds it uses; the golden-digest tests
(``tests/test_perf_golden.py``) separately prove baseline and
optimized thunks produce bit-identical outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

#: Seed shared by every stage (the repo-wide workload seed).
STAGE_SEED = 20150222

#: Requests replayed through the AP rig / ODR evaluator per run.
AP_SAMPLE = 400
ODR_SAMPLE = 400


@dataclass(frozen=True)
class StagePlan:
    """The built thunks for one stage at one scale."""

    optimized: Callable[[], object]
    baseline: Optional[Callable[[], object]] = None
    #: Human note explaining a missing baseline.
    note: str = ""


@dataclass(frozen=True)
class Stage:
    """One named benchmark stage.

    ``build(scale, scratch)`` constructs the stage inputs (untimed) and
    returns the timed thunks; ``scratch`` is a per-stage temporary
    directory for stages that touch the filesystem.
    """

    name: str
    title: str
    full_scale: float
    smoke_scale: float
    build: Callable[[float, Path], StagePlan] = field(repr=False)

    def scale_for(self, smoke: bool) -> float:
        return self.smoke_scale if smoke else self.full_scale


# -- stage builders ---------------------------------------------------------


def _make_workload(scale: float):
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator

    config = WorkloadConfig(scale=scale, seed=STAGE_SEED)
    return WorkloadGenerator(config).generate()


def _build_generate(scale: float, scratch: Path) -> StagePlan:
    from repro.perf.legacy import legacy_generate
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator

    config = WorkloadConfig(scale=scale, seed=STAGE_SEED)
    return StagePlan(
        optimized=lambda: WorkloadGenerator(config).generate(),
        baseline=lambda: legacy_generate(config),
    )


def _build_cloud(scale: float, scratch: Path) -> StagePlan:
    import repro.cloud.system as cloud_system

    from repro.cloud import CloudConfig, XuanfengCloud
    from repro.perf.legacy import LegacySimulator, LegacyTopology
    from repro.perf.pr3 import Pr3FetchSpeedModel, Pr3UploadingServers

    workload = _make_workload(scale)
    config = CloudConfig(scale=scale)

    def optimized():
        return XuanfengCloud(config).run(workload)

    def baseline():
        # The cloud builds its engine and admission tier via the
        # module-global ``Simulator``/``UploadingServers`` names and
        # creates every event through ``sim.event()``, so swapping the
        # globals is enough to run the whole replay on the frozen
        # stack: the pre-PR 3 engine and uncached topology plus the
        # pre-PR 8 admission tier (per-fetch candidate sort,
        # sample-object reservation history inside
        # ``Pr3UploadingServers``) and fetch-speed model, with the task
        # state machine disabled (``fast_tasks=False`` drives the
        # original generator coroutines).
        originals = (cloud_system.Simulator, cloud_system.UploadingServers)
        cloud_system.Simulator = LegacySimulator
        cloud_system.UploadingServers = Pr3UploadingServers
        try:
            return XuanfengCloud(config, topology=LegacyTopology(),
                                 fetch_model=Pr3FetchSpeedModel(),
                                 fast_tasks=False).run(workload)
        finally:
            cloud_system.Simulator, cloud_system.UploadingServers = \
                originals

    return StagePlan(optimized=optimized, baseline=baseline)


def _build_ap(scale: float, scratch: Path) -> StagePlan:
    from repro.ap import ApBenchmarkRig
    from repro.workload import sample_benchmark_requests

    workload = _make_workload(scale)
    sample = sample_benchmark_requests(workload, AP_SAMPLE)
    catalog = workload.catalog
    return StagePlan(
        optimized=lambda: ApBenchmarkRig(catalog).replay(sample),
        note="no frozen baseline: the AP rig's inner loop is transfer "
             "arithmetic PR 3 did not rewrite; timed as a tripwire only",
    )


def _build_odr(scale: float, scratch: Path) -> StagePlan:
    from repro.cloud import CloudConfig, XuanfengCloud
    from repro.core import OdrMiddleware, OdrStrategy, ReplayEvaluator
    from repro.workload import sample_benchmark_requests

    workload = _make_workload(scale)
    cloud = XuanfengCloud(CloudConfig(scale=scale))
    cloud.run(workload)
    sample = sample_benchmark_requests(workload, ODR_SAMPLE)
    catalog = workload.catalog
    database = cloud.database

    def optimized():
        strategy = OdrStrategy(OdrMiddleware(database))
        return ReplayEvaluator(catalog, database).replay(sample, strategy)

    return StagePlan(
        optimized=optimized,
        note="no frozen baseline: ODR replay is closed-form session "
             "arithmetic over a pre-built database; timed as a tripwire "
             "only",
    )


def _build_engine(scale: float, scratch: Path) -> StagePlan:
    from repro.perf.pr3 import Pr3Simulator
    from repro.sim.engine import Simulator

    # A synthetic event storm shaped like the cloud replay's worst
    # case: a deep heap of far-future timers (session timeouts that
    # mostly never fire) underneath rounds of same-instant fan-out
    # (process starts, resumes, waiter wake-ups all at ``now``).  The
    # live engine drains the fan-out through its immediate queue; the
    # PR 3 engine pays a full heap push/pop against the ballast for
    # every one of them.
    ballast = max(16, int(scale * 1_000_000))
    rounds = max(8, int(scale * 100_000))
    fanout = 24

    def storm(make_sim) -> int:
        sim = make_sim()
        fired = [0]

        def leaf() -> None:
            fired[0] += 1

        def burst(remaining: int) -> None:
            for _ in range(fanout):
                sim.call_in(0.0, leaf)
            if remaining > 1:
                sim.call_in(1.0, burst, remaining - 1)

        for index in range(ballast):
            sim.call_at(1e9 + index, leaf)
        sim.call_in(1.0, burst, rounds)
        sim.run(until=float(rounds + 2))
        return fired[0]

    return StagePlan(
        optimized=lambda: storm(Simulator),
        baseline=lambda: storm(Pr3Simulator),
    )


def _build_fast_tasks(scale: float, scratch: Path) -> StagePlan:
    from repro.cloud import CloudConfig, XuanfengCloud

    # Same live engine, topology and admission on both sides; the only
    # difference is the task execution model, so the ratio isolates the
    # table-driven state machine against the generator coroutines.
    workload = _make_workload(scale)
    config = CloudConfig(scale=scale)
    return StagePlan(
        optimized=lambda: XuanfengCloud(config).run(workload),
        baseline=lambda: XuanfengCloud(config,
                                       fast_tasks=False).run(workload),
    )


def _build_columnar(scale: float, scratch: Path) -> StagePlan:
    from repro.traceio import read_columnar, write_columnar
    from repro.workload.records import RequestRecord
    from repro.workload.traceio import read_jsonl, write_jsonl

    # Both encodings of the same request trace are written untimed so
    # the thunks measure the read path alone -- the asymmetric half:
    # traces are written once and replayed many times.
    requests = _make_workload(scale).requests
    columnar_path = scratch / "requests.col"
    jsonl_path = scratch / "requests.jsonl"
    write_columnar(columnar_path, requests, RequestRecord)
    write_jsonl(jsonl_path, requests)

    return StagePlan(
        optimized=lambda: read_columnar(columnar_path, RequestRecord),
        baseline=lambda: read_jsonl(jsonl_path, RequestRecord),
    )


def _build_trace(scale: float, scratch: Path) -> StagePlan:
    from repro.perf.legacy import legacy_read_jsonl, legacy_write_jsonl
    from repro.workload.records import RequestRecord
    from repro.workload.traceio import read_jsonl, write_jsonl

    # The request trace dominates a saved workload (one row per request
    # vs one per file/user), so the round-trip times that file alone.
    requests = _make_workload(scale).requests
    live_path = scratch / "requests.live.jsonl"
    legacy_path = scratch / "requests.legacy.jsonl"

    def optimized():
        write_jsonl(live_path, requests)
        return read_jsonl(live_path, RequestRecord)

    def baseline():
        legacy_write_jsonl(legacy_path, requests)
        return legacy_read_jsonl(legacy_path, RequestRecord)

    return StagePlan(optimized=optimized, baseline=baseline)


#: The canonical stage list, in pipeline order.  Full scales are sized
#: so the whole harness runs in a couple of minutes on a laptop; smoke
#: scales keep CI under ~30 s while still exercising every code path.
STAGES: dict[str, Stage] = {
    stage.name: stage for stage in (
        Stage(name="workload_generate",
              title="workload generation (catalog + users + requests)",
              full_scale=0.02, smoke_scale=0.002, build=_build_generate),
        Stage(name="engine_dispatch",
              title="engine event storm (same-instant dispatch vs "
                    "tuple heap)",
              full_scale=0.02, smoke_scale=0.002, build=_build_engine),
        Stage(name="cloud_replay",
              title="cloud replay (Xuanfeng pre-download week)",
              full_scale=0.02, smoke_scale=0.002, build=_build_cloud),
        Stage(name="cloud_fast_tasks",
              title="cloud task execution (state machine vs generator "
                    "coroutines)",
              full_scale=0.005, smoke_scale=0.002,
              build=_build_fast_tasks),
        Stage(name="ap_replay",
              title=f"AP replay ({AP_SAMPLE}-request smart-AP benchmark)",
              full_scale=0.005, smoke_scale=0.002, build=_build_ap),
        Stage(name="odr_replay",
              title=f"ODR replay ({ODR_SAMPLE}-request end-to-end "
                    "evaluation)",
              full_scale=0.005, smoke_scale=0.002, build=_build_odr),
        Stage(name="trace_roundtrip",
              title="trace IO round-trip (request trace write + read)",
              full_scale=0.02, smoke_scale=0.002, build=_build_trace),
        Stage(name="trace_columnar",
              title="trace read (columnar memory-map vs JSONL parse)",
              full_scale=0.02, smoke_scale=0.002,
              build=_build_columnar),
    )
}
