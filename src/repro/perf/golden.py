"""Golden determinism digests for the hot-path optimisation pass.

Every surface touched by the PR 3 optimisations (vectorised workload
sampling, the engine fast path, buffered trace IO) is pinned here by a
SHA-256 digest of its canonicalised output.  The digests in
``tests/data/golden_digests.json`` were generated from the
*pre-optimisation* code; ``tests/test_perf_golden.py`` recomputes them
from the live code on every run, so any optimisation that changes a
single output byte fails loudly.

Regenerate (only when an output change is intended and understood)::

    PYTHONPATH=src python -m repro.perf.golden --write tests/data/golden_digests.json
"""

from __future__ import annotations

import gzip
import hashlib
import json
import tempfile
from pathlib import Path
from typing import Any, Callable

#: Dimensions of the golden scenarios; small enough to run in seconds,
#: large enough to hit every sampling branch (all three popularity
#: classes, both size classes, retries of the fetch-at-most-once draw).
GOLDEN_SCALE = 0.002
GOLDEN_SEED = 20150222
SHARDED_SCALE = 0.0008
SHARDED_SHARDS = 3
SAMPLER_DRAWS = 4000


def digest(payload: Any) -> str:
    """SHA-256 over the canonical JSON form of ``payload``."""
    encoded = json.dumps(payload, sort_keys=True,
                         separators=(",", ":")).encode()
    return hashlib.sha256(encoded).hexdigest()


def workload_payload(workload) -> list:
    """Full content of a workload as JSON-ready rows."""
    return [
        [record.to_dict() for record in workload.catalog],
        [user.to_dict() for user in workload.users],
        [request.to_dict() for request in workload.requests],
    ]


# -- scenarios --------------------------------------------------------------


def workload_sequential() -> str:
    """The sequential generator's full output at the golden scale."""
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator
    config = WorkloadConfig(scale=GOLDEN_SCALE, seed=GOLDEN_SEED)
    return digest(workload_payload(WorkloadGenerator(config).generate()))


def workload_sharded_jobs2() -> str:
    """The sharded generator, merged from 3 shards on 2 processes."""
    from repro.scale import ShardPlan, sharded_generate
    plan = ShardPlan(scale=SHARDED_SCALE, seed=GOLDEN_SEED,
                     shards=SHARDED_SHARDS)
    workload, _info = sharded_generate(plan, jobs=2)
    return digest(workload_payload(workload))


def cloud_payload(result) -> list:
    """Canonical JSON-ready form of one cloud replay's tasks + flows."""
    tasks = []
    for task in result.tasks:
        tasks.append([
            task.pre_record.to_dict(),
            task.fetch_record.to_dict() if task.fetch_record else None,
        ])
    flows = [[flow.start, flow.end, flow.rate, flow.highly_popular,
              flow.rejected] for flow in result.flows]
    return [tasks, flows]


def cloud_replay() -> str:
    """End-to-end cloud replay: every task and flow of a golden week."""
    from repro.cloud import CloudConfig, XuanfengCloud
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator
    config = WorkloadConfig(scale=GOLDEN_SCALE, seed=GOLDEN_SEED)
    workload = WorkloadGenerator(config).generate()
    result = XuanfengCloud(CloudConfig(scale=GOLDEN_SCALE)).run(workload)
    return digest(cloud_payload(result))


def ap_payload(results) -> list:
    """Canonical JSON-ready form of AP benchmark results."""
    return [[r.ap_name, r.record.to_dict()] for r in results]


def ap_replay() -> str:
    """The smart-AP benchmark rig over a 200-request golden sample."""
    from repro.ap import ApBenchmarkRig
    from repro.workload import sample_benchmark_requests
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator
    config = WorkloadConfig(scale=GOLDEN_SCALE, seed=GOLDEN_SEED)
    workload = WorkloadGenerator(config).generate()
    sample = sample_benchmark_requests(workload, 200)
    report = ApBenchmarkRig(workload.catalog).replay(sample)
    return digest(ap_payload(report.results))


def _engine_classes():
    from repro.sim import engine
    return engine.Simulator, engine.Timeout, engine.Interrupt


def engine_trace(simulator_factory: Callable[[], Any] | None = None) -> str:
    """A scripted engine scenario covering every scheduling path.

    The trace pins: time ordering, same-instant scheduling order, event
    trigger fan-out order, waiter cancellation via interrupt (including
    a 50-process mass cancellation), waiting on finished processes and
    already-triggered events, error propagation, and ``run(until=...)``.
    ``simulator_factory`` lets the legacy engine replay the same script.
    """
    Simulator, Timeout, Interrupt = _engine_classes()
    sim = simulator_factory() if simulator_factory else Simulator()
    trace: list = []

    gate = sim.event("gate")

    def waiter(tag):
        try:
            value = yield gate
            trace.append((sim.now, f"{tag}-resumed", value))
        except Interrupt as interrupt:
            trace.append((sim.now, f"{tag}-interrupted",
                          interrupt.cause))
            yield Timeout(5.0)
            trace.append((sim.now, f"{tag}-recovered", None))
        return tag

    waiters = [sim.process(waiter(f"w{i}"), name=f"w{i}")
               for i in range(6)]

    def child():
        yield Timeout(1.5)
        return "child-value"

    def parent():
        value = yield sim.process(child(), name="child")
        trace.append((sim.now, "parent-got", value))
        # Waiting on an already-finished process resumes immediately.
        done = sim.process(child_done(), name="child-done")
        yield Timeout(0.5)
        value = yield done
        trace.append((sim.now, "parent-got-finished", value))

    def child_done():
        if False:   # pragma: no cover - make this a generator
            yield
        return "already-done"

    sim.process(parent(), name="parent")

    def failing():
        yield Timeout(0.25)
        raise ValueError("model failure")

    def supervisor():
        try:
            yield sim.process(failing(), name="failing")
        except ValueError as error:
            trace.append((sim.now, "supervised", str(error)))

    sim.process(supervisor(), name="supervisor")

    # Interrupt two waiters before the gate opens; their removal must
    # not disturb the resume order of the remaining waiters.
    sim.call_at(1.0, waiters[1].interrupt, "cancelled-1")
    sim.call_at(1.0, waiters[3].interrupt, "cancelled-3")
    sim.call_at(2.0, gate.trigger, "go")

    # Same-instant callbacks fire in scheduling order.
    for index in range(4):
        sim.call_at(2.5, trace.append, (2.5, "tick", index))

    # Mass cancellation: 50 processes pile onto one event, all are
    # interrupted at once (the quadratic list.remove hot spot), and the
    # later trigger must find no waiters left.
    swarm_gate = sim.event("swarm")

    def swarm_member(tag):
        try:
            yield swarm_gate
            trace.append((sim.now, f"{tag}-leaked", None))
        except Interrupt:
            return None

    swarm = [sim.process(swarm_member(f"s{i}"), name=f"s{i}")
             for i in range(50)]

    def mass_cancel():
        yield Timeout(3.0)
        for process in swarm:
            process.interrupt("storm")
        trace.append((sim.now, "mass-cancelled", len(swarm)))

    sim.process(mass_cancel(), name="mass-cancel")
    sim.call_at(4.0, swarm_gate.trigger, None)

    # Waiting on an event that already triggered resumes immediately.
    def late_waiter():
        yield Timeout(4.5)
        value = yield gate
        trace.append((sim.now, "late-waiter", value))

    sim.process(late_waiter(), name="late")

    stop = sim.run(until=2.25)
    trace.append(("until", stop))
    final = sim.run()
    trace.append(("final", final))
    trace.append(("results", [process.result for process in waiters]))
    return digest(trace)


def _strategy_fixture():
    """A deterministic (database, contexts, files) grid for the
    strategy-decision digests: every popularity class, both cache
    states, AP/no-AP, and bandwidth extremes."""
    import repro.ap.models as ap_models
    import repro.storage.device as storage_devices
    from repro.cloud.database import ContentDatabase
    from repro.core.auxiliary import SmartApInfo, UserContext
    from repro.netsim.ip import IpAllocator
    from repro.netsim.isp import ISP
    from repro.sim.clock import mbps
    from repro.storage.filesystem import Filesystem
    from repro.transfer.protocols import Protocol

    database = ContentDatabase()
    files = [("hot-cached", 200, True), ("hot-uncached", 200, False),
             ("pop-cached", 50, True), ("pop-uncached", 50, False),
             ("cold-cached", 3, True), ("cold-uncached", 3, False)]
    for file_id, popularity, cached in files:
        row = database.row(file_id, size=700e6)
        row.request_count = popularity
        row.cached = cached

    allocator = IpAllocator()
    aps = {
        "none": None,
        "hiwifi": SmartApInfo(ap_models.HIWIFI_1S,
                              ap_models.HIWIFI_1S.default_device,
                              ap_models.HIWIFI_1S.default_filesystem),
        "newifi-fat": SmartApInfo(ap_models.NEWIFI,
                                  storage_devices.USB_FLASH_8GB,
                                  Filesystem("fat")),
    }
    contexts = []
    for isp in (ISP.UNICOM, ISP.TELECOM, ISP.CERNET):
        for bw_name, bandwidth in (("none", None), ("slow", mbps(2.0)),
                                   ("mid", mbps(20.0)),
                                   ("fast", mbps(100.0))):
            for ap_name, smart_ap in aps.items():
                label = f"{isp.value}/{bw_name}/{ap_name}"
                contexts.append((label, UserContext(
                    user_id=f"u-{label}",
                    ip_address=allocator.allocate(isp),
                    access_bandwidth=bandwidth, smart_ap=smart_ap)))
    protocols = (Protocol.HTTP, Protocol.BITTORRENT)
    return database, contexts, [f for f, _p, _c in files], protocols


def _strategies_under_test(database):
    from repro.core.odr import OdrMiddleware
    from repro.core.strategies import (
        AlwaysHybridStrategy,
        AmsStrategy,
        CloudOnlyStrategy,
        OdrStrategy,
        SmartApOnlyStrategy,
    )
    return [CloudOnlyStrategy(database), SmartApOnlyStrategy(),
            AlwaysHybridStrategy(database), AmsStrategy(database),
            OdrStrategy(OdrMiddleware(database))]


def strategy_decisions() -> str:
    """Every legacy strategy over the full decision grid.

    Pinned *before* the strategies were rerouted through the
    ``repro.backends`` registry; the registry-backed implementations
    must keep reproducing these decisions byte for byte.
    """
    database, contexts, file_ids, protocols = _strategy_fixture()
    rows = []
    for strategy in _strategies_under_test(database):
        for label, context in contexts:
            for file_id in file_ids:
                for protocol in protocols:
                    decision = strategy.decide(context, file_id,
                                               protocol)
                    rows.append([strategy.name, label, file_id,
                                 protocol.value, decision.action.value,
                                 decision.data_source.value,
                                 list(decision.bottlenecks_addressed),
                                 decision.rationale])
                for success in (True, False):
                    after = strategy.decide_after_predownload(
                        context, file_id, success)
                    rows.append([strategy.name, label, file_id,
                                 "after-predownload", success,
                                 after.action.value,
                                 after.data_source.value,
                                 list(after.bottlenecks_addressed),
                                 after.rationale])
    return digest(rows)


def odr_strategy_replay() -> str:
    """The section 6.2 replay of all five strategies, outcomes and all.

    Pins the evaluator's RNG-consumption sequence per strategy, so the
    registry refactor cannot silently change what any legacy strategy
    executes on the testbed.
    """
    from repro.cloud import CloudConfig, XuanfengCloud
    from repro.core.replay import ReplayEvaluator
    from repro.workload import sample_benchmark_requests
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator
    config = WorkloadConfig(scale=GOLDEN_SCALE, seed=GOLDEN_SEED)
    workload = WorkloadGenerator(config).generate()
    cloud = XuanfengCloud(CloudConfig(scale=GOLDEN_SCALE))
    cloud.run(workload)
    sample = sample_benchmark_requests(workload, 150)
    rows = []
    for strategy in _strategies_under_test(cloud.database):
        evaluator = ReplayEvaluator(workload.catalog, cloud.database)
        result = evaluator.replay(sample, strategy)
        for outcome in result.outcomes:
            rows.append([strategy.name, outcome.request.file_id,
                         outcome.decision.action.value,
                         outcome.decision.data_source.value,
                         outcome.success,
                         outcome.wan_speed.hex(),
                         outcome.user_speed.hex(),
                         outcome.cloud_delivered_bytes.hex(),
                         outcome.cloud_seeding_bytes.hex(),
                         outcome.write_path_limited,
                         outcome.failure_cause])
    return digest(rows)


def sampler_popularity() -> str:
    import numpy as np
    from repro.workload.popularity import PopularityModel
    model = PopularityModel()
    rng = np.random.default_rng(GOLDEN_SEED)
    return digest([model.sample_weekly_demand(rng)
                   for _ in range(SAMPLER_DRAWS)])


def sampler_sizes() -> str:
    import numpy as np
    from repro.workload.sizes import FileSizeModel
    model = FileSizeModel()
    rng = np.random.default_rng(GOLDEN_SEED)
    draws = [list(model.sample(rng)) for _ in range(SAMPLER_DRAWS)]
    batch = model.sample_many(200, np.random.default_rng(GOLDEN_SEED))
    return digest([draws, batch.tolist()])


def sampler_filetypes() -> str:
    import numpy as np
    from repro.workload.filetypes import FileTypeModel
    model = FileTypeModel()
    rng = np.random.default_rng(GOLDEN_SEED)
    return digest([model.sample(index % 4 == 0, rng).value
                   for index in range(SAMPLER_DRAWS)])


def sampler_isp() -> str:
    import numpy as np
    from repro.netsim.isp import default_registry
    registry = default_registry()
    rng = np.random.default_rng(GOLDEN_SEED)
    return digest([registry.sample_isp(rng).value
                   for _ in range(SAMPLER_DRAWS)])


def sampler_bandwidth() -> str:
    import numpy as np
    from repro.netsim.link import AccessBandwidthModel
    model = AccessBandwidthModel()
    rng = np.random.default_rng(GOLDEN_SEED)
    return digest([model.sample_downstream(rng)
                   for _ in range(SAMPLER_DRAWS)])


def sampler_arrivals() -> str:
    import numpy as np
    from repro.workload.arrivals import ArrivalProcess
    process = ArrivalProcess()
    rng = np.random.default_rng(GOLDEN_SEED)
    return digest(process.sample_times(SAMPLER_DRAWS, rng).tolist())


def sampler_topology() -> str:
    from repro.netsim.isp import default_registry
    from repro.netsim.topology import ChinaTopology
    topology = ChinaTopology()
    rows = []
    for src in default_registry().isps():
        for dst in default_registry().isps():
            quality = topology.path_quality(src, dst)
            rows.append([src.value, dst.value, quality.cap_median,
                         quality.cap_sigma, quality.latency_ms,
                         quality.hops])
    return digest(rows)


def traceio_bytes() -> str:
    """Exact file bytes written by the trace writers (gz: decompressed)."""
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator
    from repro.workload.traceio import write_jsonl
    config = WorkloadConfig(scale=SHARDED_SCALE, seed=GOLDEN_SEED)
    workload = WorkloadGenerator(config).generate()
    with tempfile.TemporaryDirectory() as scratch:
        plain = Path(scratch) / "requests.jsonl"
        packed = Path(scratch) / "requests.jsonl.gz"
        write_jsonl(plain, workload.requests)
        write_jsonl(packed, workload.requests)
        plain_hash = hashlib.sha256(plain.read_bytes()).hexdigest()
        packed_hash = hashlib.sha256(
            gzip.decompress(packed.read_bytes())).hexdigest()
    return digest([plain_hash, packed_hash])


def traceio_roundtrip() -> str:
    """Records surviving a save/load round trip unchanged."""
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator
    from repro.workload.traceio import load_workload, save_workload
    config = WorkloadConfig(scale=SHARDED_SCALE, seed=GOLDEN_SEED)
    workload = WorkloadGenerator(config).generate()
    with tempfile.TemporaryDirectory() as scratch:
        save_workload(workload, scratch, compress=True)
        loaded = load_workload(scratch)
    return digest(workload_payload(loaded))


#: Scenario name -> digest function.  ``tests/test_perf_golden.py``
#: parametrises over this mapping.
SCENARIOS: dict[str, Callable[[], str]] = {
    "workload_sequential": workload_sequential,
    "workload_sharded_jobs2": workload_sharded_jobs2,
    "cloud_replay": cloud_replay,
    "ap_replay": ap_replay,
    "engine_trace": engine_trace,
    "strategy_decisions": strategy_decisions,
    "odr_strategy_replay": odr_strategy_replay,
    "sampler_popularity": sampler_popularity,
    "sampler_sizes": sampler_sizes,
    "sampler_filetypes": sampler_filetypes,
    "sampler_isp": sampler_isp,
    "sampler_bandwidth": sampler_bandwidth,
    "sampler_arrivals": sampler_arrivals,
    "sampler_topology": sampler_topology,
    "traceio_bytes": traceio_bytes,
    "traceio_roundtrip": traceio_roundtrip,
}


def compute_all() -> dict[str, str]:
    return {name: scenario() for name, scenario in SCENARIOS.items()}


def main(argv: list[str] | None = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        description="Recompute the golden determinism digests")
    parser.add_argument("--write", type=Path, default=None,
                        help="write digests to this JSON file instead "
                             "of printing them")
    args = parser.parse_args(argv)
    digests = compute_all()
    rendered = json.dumps(digests, indent=2, sort_keys=True) + "\n"
    if args.write:
        from repro.recovery.atomic import atomic_write_text
        atomic_write_text(args.write, rendered)
        print(f"wrote {len(digests)} digests to {args.write}")
    else:
        print(rendered, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
