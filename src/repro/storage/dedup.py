"""Content-addressed storage with file-level deduplication.

"Every file is identified using the MD5 hash code of its content, which
facilitates file-level deduplication across different users" (section
2.1).  Xuanfeng deliberately skips chunk-level dedup: the measured
cross-file chunk overlap saves <1% of space and is not worth the
chunking cost; :meth:`ContentStore.estimate_chunk_dedup_savings`
quantifies that trade-off for the ablation bench.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional


def content_id(payload: bytes | str) -> str:
    """MD5 hex digest of the content, the file's identity in the system."""
    if isinstance(payload, str):
        payload = payload.encode()
    return hashlib.md5(payload).hexdigest()


@dataclass
class StoredObject:
    """One deduplicated object and its reference count."""

    object_id: str
    size: float
    references: int = 1


class ContentStore:
    """File-level dedup bookkeeping over content IDs.

    The store tracks logical bytes (what users asked to store) versus
    physical bytes (what dedup actually keeps), the numbers behind the
    "vast majority of requests satisfied with cached files at no
    pre-downloading cost" claim.
    """

    def __init__(self):
        self._objects: dict[str, StoredObject] = {}
        self.logical_bytes = 0.0
        self.physical_bytes = 0.0

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def add(self, object_id: str, size: float) -> bool:
        """Record one logical copy; returns True if it deduplicated."""
        if size < 0:
            raise ValueError("size must be non-negative")
        self.logical_bytes += size
        existing = self._objects.get(object_id)
        if existing is not None:
            if abs(existing.size - size) > 1e-6:
                raise ValueError(
                    f"object {object_id} re-added with size {size}, "
                    f"stored size is {existing.size}")
            existing.references += 1
            return True
        self._objects[object_id] = StoredObject(object_id, size)
        self.physical_bytes += size
        return False

    def release(self, object_id: str) -> None:
        """Drop one logical reference, freeing the object at zero refs."""
        obj = self._objects.get(object_id)
        if obj is None:
            raise KeyError(object_id)
        self.logical_bytes -= obj.size
        obj.references -= 1
        if obj.references == 0:
            self.physical_bytes -= obj.size
            del self._objects[object_id]

    def drop(self, object_id: str) -> None:
        """Remove the object entirely (all references), e.g. LRU eviction."""
        obj = self._objects.pop(object_id, None)
        if obj is None:
            raise KeyError(object_id)
        self.logical_bytes -= obj.size * obj.references
        self.physical_bytes -= obj.size

    def references(self, object_id: str) -> int:
        obj = self._objects.get(object_id)
        return obj.references if obj is not None else 0

    @property
    def dedup_ratio(self) -> float:
        """Logical-to-physical ratio; 1.0 means no duplication existed."""
        if self.physical_bytes <= 0:
            return 1.0
        return self.logical_bytes / self.physical_bytes

    def estimate_chunk_dedup_savings(
            self, cross_file_overlap: float = 0.008) -> float:
        """Extra bytes chunk-level dedup would reclaim beyond file-level.

        The paper reports the overlap ("a few videos sharing a portion of
        frames/chunks") is below 1% of stored bytes; the default mirrors
        that and the method exists so the ablation bench can show why
        Xuanfeng skipped chunk-level dedup.
        """
        if not 0.0 <= cross_file_overlap < 1.0:
            raise ValueError("cross_file_overlap must be in [0, 1)")
        return self.physical_bytes * cross_file_overlap
