"""Storage devices attachable to smart APs.

Each device carries the vendor-sheet sequential write/read speeds the
paper quotes (section 5.1) plus a *small-write IO rate* per filesystem:
the throughput the device sustains under the pre-download write pattern
(frequent small appends from wget/aria2), which is far below the
sequential number for flash media.  The small-write rates are derived by
inverting Table 2 (see :mod:`repro.storage.writepath`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.storage.filesystem import Filesystem

MB = 1e6


class DeviceKind(enum.Enum):
    """Class of storage medium."""

    SD_CARD = "sd_card"
    USB_FLASH = "usb_flash"
    USB_HDD = "usb_hdd"
    SATA_HDD = "sata_hdd"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_flash(self) -> bool:
        return self in (DeviceKind.SD_CARD, DeviceKind.USB_FLASH)


#: Small-write IO service rate in MB/s per (device kind, filesystem).
#: Cells present in the paper's Table 2 are exact inversions; the rest
#: are interpolated from the same medium's behaviour.  Note NTFS shows
#: *higher* IO rates on flash than FAT/EXT4 because ntfs-3g batches
#: writes into larger blocks (its bottleneck is CPU, not IO).
SMALL_WRITE_RATE_MBPS: dict[tuple[DeviceKind, Filesystem], float] = {
    (DeviceKind.SD_CARD, Filesystem.FAT): 5.63,
    (DeviceKind.SD_CARD, Filesystem.EXT4): 6.20,
    (DeviceKind.SD_CARD, Filesystem.NTFS): 5.90,
    (DeviceKind.USB_FLASH, Filesystem.FAT): 3.20,
    (DeviceKind.USB_FLASH, Filesystem.EXT4): 3.87,
    (DeviceKind.USB_FLASH, Filesystem.NTFS): 6.16,
    (DeviceKind.USB_HDD, Filesystem.FAT): 5.64,
    (DeviceKind.USB_HDD, Filesystem.EXT4): 13.60,
    (DeviceKind.USB_HDD, Filesystem.NTFS): 11.50,
    (DeviceKind.SATA_HDD, Filesystem.FAT): 7.20,
    (DeviceKind.SATA_HDD, Filesystem.EXT4): 7.98,
    (DeviceKind.SATA_HDD, Filesystem.NTFS): 13.00,
}


@dataclass(frozen=True)
class StorageDevice:
    """A concrete storage device with its performance envelope."""

    name: str
    kind: DeviceKind
    capacity: float              # bytes
    max_write_rate: float        # B/s, sequential (vendor sheet)
    max_read_rate: float         # B/s, sequential
    allowed_filesystems: tuple[Filesystem, ...] = (
        Filesystem.FAT, Filesystem.NTFS, Filesystem.EXT4)

    def __post_init__(self):
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.max_write_rate <= 0 or self.max_read_rate <= 0:
            raise ValueError("device rates must be positive")
        if not self.allowed_filesystems:
            raise ValueError("device must support at least one filesystem")

    def supports(self, filesystem: Filesystem) -> bool:
        return filesystem in self.allowed_filesystems

    def small_write_rate(self, filesystem: Filesystem) -> float:
        """Small-append IO service rate in B/s under ``filesystem``."""
        if not self.supports(filesystem):
            raise ValueError(
                f"{self.name} cannot be formatted as {filesystem}")
        # Not clamped to the vendor sequential ceiling: filesystems that
        # batch small appends (ntfs-3g, EXT4 with delayed allocation) ride
        # the drive's write-back cache and beat the sheet number, which is
        # what the paper's iowait measurements show for the USB HDD.
        return SMALL_WRITE_RATE_MBPS[(self.kind, filesystem)] * MB


# The exact devices of the paper's testbed (section 5.1):

#: HiWiFi's embedded 8-GB SD card; the AP only works with FAT on it.
SD_CARD_8GB = StorageDevice(
    "8GB SD card", DeviceKind.SD_CARD, capacity=8e9,
    max_write_rate=15 * MB, max_read_rate=30 * MB,
    allowed_filesystems=(Filesystem.FAT,))

#: Newifi's external 8-GB USB flash drive (USB 2.0).
USB_FLASH_8GB = StorageDevice(
    "8GB USB flash drive", DeviceKind.USB_FLASH, capacity=8e9,
    max_write_rate=10 * MB, max_read_rate=20 * MB)

#: The USB hard disk used in the Table 2 follow-up experiment.
USB_HDD_5400 = StorageDevice(
    "USB hard disk drive (5400 RPM)", DeviceKind.USB_HDD, capacity=500e9,
    max_write_rate=10 * MB, max_read_rate=25 * MB)

#: MiWiFi's internal 1-TB SATA disk, factory-formatted EXT4 (immutable).
SATA_HDD_1TB = StorageDevice(
    "1TB SATA hard disk drive (5400 RPM)", DeviceKind.SATA_HDD,
    capacity=1e12, max_write_rate=30 * MB, max_read_rate=70 * MB,
    allowed_filesystems=(Filesystem.EXT4,))
