"""A byte-budgeted LRU cache.

The Xuanfeng storage pool replaces cached files "in an LRU (least
recently used) manner" (section 2.1).  This implementation is generic:
keys map to sized entries, touching a key refreshes recency, and inserts
evict from the cold end until the new entry fits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, Iterator, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class CacheStats:
    """Running counters for hit-ratio accounting."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class LRUCache(Generic[K, V]):
    """LRU cache bounded by total stored bytes (not entry count)."""

    def __init__(self, capacity_bytes: float):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self.used_bytes = 0.0
        self.stats = CacheStats()
        self._entries: "OrderedDict[K, tuple[V, float]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        """Presence check *without* touching recency or hit counters."""
        return key in self._entries

    def get(self, key: K) -> Optional[V]:
        """Look up ``key``, refreshing its recency and counting hit/miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry[0]

    def peek(self, key: K) -> Optional[V]:
        """Look up without recency or counter side effects."""
        entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    def put(self, key: K, value: V, size: float) -> list[K]:
        """Insert (or replace) an entry; returns the keys evicted to fit.

        An entry larger than the whole cache is refused with ValueError --
        silently dropping it would corrupt hit-ratio accounting.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        if size > self.capacity_bytes:
            raise ValueError(
                f"entry of {size:.0f} B exceeds cache capacity "
                f"{self.capacity_bytes:.0f} B")
        if key in self._entries:
            self.used_bytes -= self._entries[key][1]
            del self._entries[key]
        evicted: list[K] = []
        while self.used_bytes + size > self.capacity_bytes:
            cold_key, (_value, cold_size) = \
                self._entries.popitem(last=False)
            self.used_bytes -= cold_size
            self.stats.evictions += 1
            evicted.append(cold_key)
        self._entries[key] = (value, size)
        self.used_bytes += size
        self.stats.insertions += 1
        return evicted

    def remove(self, key: K) -> bool:
        """Drop ``key`` if present; returns whether anything was removed."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.used_bytes -= entry[1]
        return True

    def keys_cold_to_hot(self) -> Iterator[K]:
        """Iterate keys from least- to most-recently used."""
        return iter(self._entries.keys())
