"""The pre-download write path: network -> filesystem CPU -> device IO.

The model behind the paper's Table 2.  A download client on an AP
alternates, per chunk, between filesystem/driver CPU work and device IO
(the writes are synchronous and small, so the stages do not overlap on a
single-core MIPS SoC).  With a CPU service rate ``C`` and a small-write
IO rate ``W`` (both in bytes/s), the write path sustains

    T = 1 / (1/C + 1/W),

and the achieved pre-download speed is ``min(network_rate, T)``.  The
fraction of wall-clock time the core spends blocked on IO -- what
``iostat`` reports as iowait -- is ``achieved * (1/W)``.

Inverting the eight (speed, iowait) cells of Table 2 yields the constants
in :mod:`repro.storage.device` and :mod:`repro.storage.filesystem`; this
module recombines them, so the Table 2 benchmark reproduces the paper's
matrix to within rounding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.device import StorageDevice
from repro.storage.filesystem import (
    CPU_RATE_AT_580MHZ,
    Filesystem,
    NTFS_FLASH_CPU_PENALTY,
)

MB = 1e6
_REFERENCE_CPU_MHZ = 580.0


@dataclass(frozen=True)
class WritePathProfile:
    """Resolved service rates of one (device, filesystem, CPU) write path."""

    cpu_rate: float   # B/s the filesystem code can process
    io_rate: float    # B/s the device absorbs under the small-write pattern

    @property
    def max_throughput(self) -> float:
        """Sustained write-path throughput with no network limit, B/s."""
        return 1.0 / (1.0 / self.cpu_rate + 1.0 / self.io_rate)

    def achieved_rate(self, network_rate: float) -> float:
        """Pre-download speed when the network delivers ``network_rate``."""
        if network_rate < 0:
            raise ValueError("network_rate must be non-negative")
        return min(network_rate, self.max_throughput)

    def iowait_ratio(self, network_rate: float) -> float:
        """Fraction of time blocked on device IO at the achieved rate."""
        return self.achieved_rate(network_rate) / self.io_rate

    def cpu_busy_ratio(self, network_rate: float) -> float:
        """Fraction of time burning CPU in the filesystem/driver."""
        return self.achieved_rate(network_rate) / self.cpu_rate


class WritePath:
    """The write path of a device formatted with a filesystem on a given CPU.

    ``cpu_mhz`` scales the filesystem CPU rate linearly from the 580 MHz
    reference core (MiWiFi's 1 GHz Broadcom therefore runs EXT4 ~1.7x
    faster per byte).
    """

    def __init__(self, device: StorageDevice, filesystem: Filesystem,
                 cpu_mhz: float):
        if cpu_mhz <= 0:
            raise ValueError("cpu_mhz must be positive")
        if not device.supports(filesystem):
            raise ValueError(
                f"{device.name} cannot be formatted as {filesystem}")
        self.device = device
        self.filesystem = filesystem
        self.cpu_mhz = cpu_mhz
        self.profile = self._resolve()

    def _resolve(self) -> WritePathProfile:
        cpu_rate = CPU_RATE_AT_580MHZ[self.filesystem] * MB
        if self.filesystem is Filesystem.NTFS and self.device.kind.is_flash:
            cpu_rate *= NTFS_FLASH_CPU_PENALTY
        cpu_rate *= self.cpu_mhz / _REFERENCE_CPU_MHZ
        return WritePathProfile(
            cpu_rate=cpu_rate,
            io_rate=self.device.small_write_rate(self.filesystem))

    @property
    def max_throughput(self) -> float:
        return self.profile.max_throughput

    def achieved_rate(self, network_rate: float) -> float:
        return self.profile.achieved_rate(network_rate)

    def iowait_ratio(self, network_rate: float) -> float:
        return self.profile.iowait_ratio(network_rate)

    def cpu_busy_ratio(self, network_rate: float) -> float:
        return self.profile.cpu_busy_ratio(network_rate)
