"""Storage substrate: devices, filesystems, write paths, caches.

Bottleneck 4 of the paper lives here: "some types of storage devices
(e.g., USB flash drive) and filesystems (e.g., NTFS) do not fit the
pattern of frequent, small data writes during the pre-downloading
process."  The write-path model reproduces the paper's Table 2 matrix of
max pre-downloading speeds and iowait ratios from first principles (a
CPU stage and an IO stage in series).

The cloud side's collaborative caching also lives here: an LRU cache and
an MD5 content-addressed dedup store.
"""

from repro.storage.device import (
    DeviceKind,
    StorageDevice,
    SD_CARD_8GB,
    USB_FLASH_8GB,
    USB_HDD_5400,
    SATA_HDD_1TB,
)
from repro.storage.filesystem import Filesystem
from repro.storage.writepath import WritePath, WritePathProfile
from repro.storage.lru import LRUCache
from repro.storage.dedup import ContentStore, content_id

__all__ = [
    "DeviceKind",
    "StorageDevice",
    "SD_CARD_8GB",
    "USB_FLASH_8GB",
    "USB_HDD_5400",
    "SATA_HDD_1TB",
    "Filesystem",
    "WritePath",
    "WritePathProfile",
    "LRUCache",
    "ContentStore",
    "content_id",
]
