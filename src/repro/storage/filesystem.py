"""Filesystems seen on smart-AP storage devices.

OpenWrt (the OS of all three benchmarked APs) is native EXT4; FAT is
cheap and universal; NTFS is served through a FUSE driver whose per-byte
CPU cost dominates on the APs' weak MIPS/ARM cores -- which is why the
paper measures Newifi+NTFS topping out at 0.93-1.13 MBps regardless of
the storage medium (Table 2).
"""

from __future__ import annotations

import enum


class Filesystem(enum.Enum):
    """A filesystem a smart-AP storage device may be formatted with."""

    FAT = "fat"
    NTFS = "ntfs"
    EXT4 = "ext4"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_native_to_openwrt(self) -> bool:
        """EXT4 is in-kernel on OpenWrt; FAT is in-kernel but legacy;
        NTFS runs in userspace (ntfs-3g via FUSE)."""
        return self is not Filesystem.NTFS


#: Per-filesystem CPU service rate for the pre-download write pattern, in
#: MB/s on a 580 MHz reference core (the MT7620A of HiWiFi and Newifi).
#: Derived by inverting the paper's Table 2 (see repro.storage.writepath):
#: throughput = 1 / (1/C + 1/W) when processing-limited, iowait = T/W.
CPU_RATE_AT_580MHZ = {
    Filesystem.FAT: 6.30,
    Filesystem.EXT4: 4.73,
    Filesystem.NTFS: 1.25,
}

#: NTFS-via-FUSE pays extra CPU on flash media (sync retries on erase
#: blocks); Table 2 shows 0.93 MBps on flash vs 1.13 MBps on HDD.
NTFS_FLASH_CPU_PENALTY = 0.875
