"""``repro.traceio`` — the zero-copy columnar trace format.

The columnar ``.col`` sibling of the JSONL traces in
:mod:`repro.workload.traceio`: same records, same values, laid out
column-major with fixed-width fields so readers memory-map the file and
view columns in place.  ``save_workload(..., trace_format="columnar")``
writes it, ``load_workload`` auto-detects it, and the generate/cloud/
ap/odr CLIs expose it via ``--trace-format``.
"""

from repro.traceio.columnar import (
    COLUMNAR_SUFFIX,
    ColumnarFormatError,
    ColumnarTrace,
    MAGIC,
    SCHEMAS,
    is_columnar,
    read_columnar,
    write_columnar,
)

__all__ = [
    "COLUMNAR_SUFFIX",
    "ColumnarFormatError",
    "ColumnarTrace",
    "MAGIC",
    "SCHEMAS",
    "is_columnar",
    "read_columnar",
    "write_columnar",
]
