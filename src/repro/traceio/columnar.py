"""Zero-copy columnar trace files (the ``.col`` sibling of JSONL).

A ``.col`` file stores one trace part (catalog / users / requests /
pre-download / fetch) column by column instead of row by row::

    offset 0   magic  b"RPROCOL1"
    offset 8   uint64 little-endian header length H
    offset 16  header JSON (H bytes)
    ...        zero padding to an 8-byte boundary
    ...        column blocks, each 8-byte aligned

The header describes every column: name, field kind, numpy dtype
string, absolute byte offset, and byte length (plus a companion
null-mask block for optional fields).  Strings and enum values are
fixed-width byte columns sized to the longest value in the file, so
every block is a plain contiguous array: a reader memory-maps the file
once and *views* each column in place -- no row-by-row JSON decoding,
no per-row allocation until records are actually materialised, and a
shard worker that needs rows ``[k::n]`` touches only those rows'
bytes.

When to prefer which format: JSONL stays the interchange format --
greppable, appendable, diff-friendly, gzip-compressible.  Columnar is
the replay format: reads are ~an order of magnitude faster, slices and
samples decode only the requested rows, and concurrent shard workers
share one page cache mapping instead of each re-decoding the file.
The two round-trip losslessly (``tests/test_traceio_columnar.py``).
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Any, Optional, Sequence, Type, TypeVar

import numpy as np

from repro.workload.records import (
    CatalogFile,
    FetchRecord,
    PreDownloadRecord,
    RequestRecord,
    User,
    _TraceRecord,
)

R = TypeVar("R", bound=_TraceRecord)

MAGIC = b"RPROCOL1"
COLUMNAR_SUFFIX = ".col"
_ALIGN = 8

#: Per-record-type column schemas: (field name, kind) in declaration
#: order.  Kinds: ``str`` (fixed-width bytes), ``ostr`` (nullable
#: string + mask), ``f8`` / ``of8`` (float64, nullable variant +
#: mask), ``i8`` (int64), ``b1`` (bool), ``enum:<Class>`` (the enum's
#: ``.value`` string).  The schema is the serialisation contract;
#: adding a field to a record means adding it here (the round-trip
#: test fails otherwise).
SCHEMAS: dict[str, tuple[tuple[str, str], ...]] = {
    "CatalogFile": (
        ("file_id", "str"), ("size", "f8"),
        ("file_type", "enum:FileType"), ("protocol", "enum:Protocol"),
        ("weekly_demand", "i8"), ("source_url", "str"),
    ),
    "User": (
        ("user_id", "str"), ("ip_address", "str"), ("isp", "enum:ISP"),
        ("access_bandwidth", "f8"), ("reports_bandwidth", "b1"),
    ),
    "RequestRecord": (
        ("task_id", "str"), ("user_id", "str"), ("ip_address", "str"),
        ("access_bandwidth", "of8"), ("request_time", "f8"),
        ("file_id", "str"), ("file_type", "enum:FileType"),
        ("file_size", "f8"), ("source_url", "str"),
        ("protocol", "enum:Protocol"),
    ),
    "PreDownloadRecord": (
        ("task_id", "str"), ("file_id", "str"), ("start_time", "f8"),
        ("finish_time", "f8"), ("acquired_bytes", "f8"),
        ("traffic_bytes", "f8"), ("cache_hit", "b1"),
        ("average_speed", "f8"), ("peak_speed", "f8"),
        ("success", "b1"), ("failure_cause", "ostr"),
    ),
    "FetchRecord": (
        ("task_id", "str"), ("user_id", "str"), ("ip_address", "str"),
        ("access_bandwidth", "of8"), ("start_time", "f8"),
        ("finish_time", "f8"), ("acquired_bytes", "f8"),
        ("traffic_bytes", "f8"), ("average_speed", "f8"),
        ("peak_speed", "f8"), ("rejected", "b1"),
    ),
}

RECORD_TYPES: dict[str, Type[_TraceRecord]] = {
    "CatalogFile": CatalogFile,
    "User": User,
    "RequestRecord": RequestRecord,
    "PreDownloadRecord": PreDownloadRecord,
    "FetchRecord": FetchRecord,
}


class ColumnarFormatError(ValueError):
    """A ``.col`` file failed structural validation."""


def _enum_type(kind: str):
    from repro.netsim.isp import ISP
    from repro.transfer.protocols import Protocol
    from repro.workload.filetypes import FileType
    return {"FileType": FileType, "Protocol": Protocol,
            "ISP": ISP}[kind.split(":", 1)[1]]


def _pad(n: int) -> int:
    return -n % _ALIGN


# -- writing ---------------------------------------------------------------------


def _encode_column(kind: str, values: list) -> tuple[np.ndarray,
                                                     Optional[np.ndarray]]:
    """Encode one field's values; returns (data, null mask or None)."""
    if kind == "f8":
        return np.array(values, dtype="<f8"), None
    if kind == "i8":
        return np.array(values, dtype="<i8"), None
    if kind == "b1":
        return np.array(values, dtype="|b1"), None
    if kind == "of8":
        mask = np.array([value is None for value in values], dtype="|b1")
        data = np.array([0.0 if value is None else value
                         for value in values], dtype="<f8")
        return data, mask
    if kind == "str" or kind.startswith("enum:"):
        if kind.startswith("enum:"):
            values = [value.value for value in values]
        raw = [value.encode("utf-8") for value in values]
        width = max((len(value) for value in raw), default=1) or 1
        return np.array(raw, dtype=f"|S{width}"), None
    if kind == "ostr":
        mask = np.array([value is None for value in values], dtype="|b1")
        raw = [b"" if value is None else value.encode("utf-8")
               for value in values]
        width = max((len(value) for value in raw), default=1) or 1
        return np.array(raw, dtype=f"|S{width}"), mask
    raise ColumnarFormatError(f"unknown column kind {kind!r}")


def write_columnar(path: str | Path, records: Sequence[_TraceRecord],
                   record_type: Optional[Type[_TraceRecord]] = None
                   ) -> int:
    """Write records as one columnar ``.col`` file; returns the row count.

    ``record_type`` is required when ``records`` is empty (the file
    still carries the schema so a reader knows what it holds).
    """
    records = list(records)
    if record_type is None:
        if not records:
            raise ValueError("record_type is required for an empty trace")
        record_type = type(records[0])
    name = record_type.__name__
    schema = SCHEMAS.get(name)
    if schema is None:
        raise ColumnarFormatError(f"no columnar schema for {name}")

    blocks: list[bytes] = []
    columns: list[dict[str, Any]] = []
    # Offsets are assigned after the header is sized; collect blocks
    # with their (aligned) lengths first.
    for field_name, kind in schema:
        values = [getattr(record, field_name) for record in records]
        data, mask = _encode_column(kind, values)
        entry: dict[str, Any] = {
            "name": field_name, "kind": kind,
            "dtype": data.dtype.str, "nbytes": int(data.nbytes),
        }
        blocks.append(data.tobytes())
        if mask is not None:
            entry["null_nbytes"] = int(mask.nbytes)
            blocks.append(mask.tobytes())
        columns.append(entry)

    # Two passes over the header: offsets depend on the header length,
    # which depends on the offsets' digit counts.  Fixed-width offset
    # rendering would dodge that; one retry loop is simpler and always
    # converges (offsets only ever grow).
    def render(header_guess: int) -> tuple[bytes, list[dict[str, Any]]]:
        cursor = 16 + header_guess
        cursor += _pad(cursor)
        placed = []
        index = 0
        for entry in columns:
            entry = dict(entry)
            entry["offset"] = cursor
            cursor += entry["nbytes"] + _pad(entry["nbytes"])
            if "null_nbytes" in entry:
                entry["null_offset"] = cursor
                cursor += entry["null_nbytes"] + _pad(entry["null_nbytes"])
                index += 1
            index += 1
            placed.append(entry)
        header = json.dumps({"record": name, "rows": len(records),
                             "columns": placed}).encode("utf-8")
        return header, placed

    header, placed = render(0)
    while True:
        next_header, placed = render(len(header))
        if len(next_header) == len(header):
            header = next_header
            break
        header = next_header

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<Q", len(header)))
        handle.write(header)
        handle.write(b"\0" * _pad(16 + len(header)))
        block = 0
        for entry in placed:
            data = blocks[block]
            block += 1
            handle.write(data)
            handle.write(b"\0" * _pad(len(data)))
            if "null_nbytes" in entry:
                mask = blocks[block]
                block += 1
                handle.write(mask)
                handle.write(b"\0" * _pad(len(mask)))
    return len(records)


# -- reading ---------------------------------------------------------------------


def is_columnar(path: str | Path) -> bool:
    """True when ``path`` exists and starts with the columnar magic."""
    path = Path(path)
    if not path.is_file():
        return False
    with path.open("rb") as handle:
        return handle.read(len(MAGIC)) == MAGIC


class ColumnarTrace:
    """One opened ``.col`` file: memory-mapped, lazily decoded.

    The constructor maps the file and parses only the header; column
    bytes stay untouched (and unread from disk) until a column is
    viewed.  ``materialize`` decodes a contiguous row range into
    records, ``take`` an arbitrary row subset -- both touch only the
    bytes of the rows they return.
    """

    def __init__(self, path: str | Path, mmap: bool = True):
        self.path = Path(path)
        if mmap:
            buf = np.memmap(self.path, dtype=np.uint8, mode="r")
        else:
            buf = np.frombuffer(self.path.read_bytes(), dtype=np.uint8)
        if buf[:len(MAGIC)].tobytes() != MAGIC:
            raise ColumnarFormatError(f"{self.path}: bad magic")
        (header_len,) = struct.unpack("<Q", buf[8:16].tobytes())
        try:
            header = json.loads(buf[16:16 + header_len].tobytes())
        except ValueError as error:
            raise ColumnarFormatError(
                f"{self.path}: bad header: {error}") from error
        self._buf = buf
        self.record_name: str = header["record"]
        self.rows: int = header["rows"]
        self._columns: dict[str, dict[str, Any]] = {
            entry["name"]: entry for entry in header["columns"]}
        expected = SCHEMAS.get(self.record_name)
        if expected is not None and \
                tuple(self._columns) != tuple(n for n, _ in expected):
            raise ColumnarFormatError(
                f"{self.path}: column set does not match the "
                f"{self.record_name} schema")
        # Every declared block must fit inside the file, so a truncated
        # copy fails here with a clear error instead of surfacing later
        # as a numpy view/reshape failure mid-decode.
        total = buf.shape[0]
        for entry in self._columns.values():
            for offset_key, nbytes_key in (("offset", "nbytes"),
                                           ("null_offset", "null_nbytes")):
                if offset_key in entry and \
                        entry[offset_key] + entry[nbytes_key] > total:
                    raise ColumnarFormatError(
                        f"{self.path}: truncated: column "
                        f"{entry['name']!r} extends past end of file")

    def __len__(self) -> int:
        return self.rows

    @property
    def record_type(self) -> Type[_TraceRecord]:
        try:
            return RECORD_TYPES[self.record_name]
        except KeyError:
            raise ColumnarFormatError(
                f"{self.path}: unknown record type "
                f"{self.record_name!r}") from None

    def column(self, name: str) -> np.ndarray:
        """The raw column as a zero-copy view into the mapping."""
        entry = self._columns[name]
        start = entry["offset"]
        return self._buf[start:start + entry["nbytes"]] \
            .view(entry["dtype"])

    def null_mask(self, name: str) -> Optional[np.ndarray]:
        entry = self._columns[name]
        if "null_offset" not in entry:
            return None
        start = entry["null_offset"]
        return self._buf[start:start + entry["null_nbytes"]].view("|b1")

    # -- decoding ---------------------------------------------------------------

    def _decode(self, name: str, kind: str, rows: Any) -> list:
        """Decode one column restricted to ``rows`` (a slice or index
        array) into python values."""
        data = self.column(name)[rows]
        if kind == "f8":
            return data.tolist()
        if kind == "i8":
            return data.tolist()
        if kind == "b1":
            return data.tolist()
        if kind == "of8":
            mask = self.null_mask(name)[rows].tolist()
            values = data.tolist()
            return [None if null else value
                    for value, null in zip(values, mask)]
        if kind == "str":
            return [value.decode("utf-8") for value in data.tolist()]
        if kind == "ostr":
            mask = self.null_mask(name)[rows].tolist()
            return [None if null else value.decode("utf-8")
                    for value, null in zip(data.tolist(), mask)]
        if kind.startswith("enum:"):
            enum_type = _enum_type(kind)
            lookup = {member.value.encode("utf-8"): member
                      for member in enum_type}
            return [lookup[value] for value in data.tolist()]
        raise ColumnarFormatError(f"unknown column kind {kind!r}")

    def _build(self, rows: Any) -> list:
        record_type = self.record_type
        schema = SCHEMAS[self.record_name]
        columns = [self._decode(name, kind, rows)
                   for name, kind in schema]
        return [record_type(*row) for row in zip(*columns)]

    def materialize(self, start: int = 0,
                    stop: Optional[int] = None) -> list:
        """Decode rows ``[start:stop]`` into record objects."""
        return self._build(slice(start, stop))

    def take(self, indices: Sequence[int]) -> list:
        """Decode exactly the given rows, in the given order."""
        return self._build(np.asarray(indices, dtype=np.intp))


def read_columnar(path: str | Path,
                  record_type: Optional[Type[R]] = None,
                  mmap: bool = True) -> list[R]:
    """Read a whole ``.col`` file back into records.

    ``record_type``, when given, is validated against the file's own
    schema (a mismatch raises :class:`ColumnarFormatError`).
    """
    trace = ColumnarTrace(path, mmap=mmap)
    if record_type is not None and \
            trace.record_name != record_type.__name__:
        raise ColumnarFormatError(
            f"{path}: holds {trace.record_name} rows, "
            f"not {record_type.__name__}")
    return trace.materialize()
