"""Turning a workload trace into a stream of ``/decide`` requests.

The load generator replays the same synthetic week every other layer
replays -- each :class:`~repro.workload.records.RequestRecord` becomes
one ``GET /decide`` with the user's auxiliary info spelled out in query
parameters, exactly the API the web front page submits.  Smart-AP
ownership is not in the request trace (the paper's aux info arrives via
cookies), so it is derived deterministically from the user id: the same
user always presents the same AP/storage combination, across runs and
across load-generator processes.
"""

from __future__ import annotations

import zlib
from typing import Optional
from urllib.parse import quote

from repro.sim.clock import mbps
from repro.workload.generator import Workload
from repro.workload.records import RequestRecord, User

#: Share of users presenting a smart AP, from the paper's framing of
#: smart-AP owners as a sizeable minority of ODR users.
AP_SHARE = 0.4

_AP_NAMES = ("hiwifi", "miwifi", "newifi")
_DEVICES = ("sd", "usb-flash", "usb-hdd", "sata")
#: Filesystems a device can actually be formatted as (the SD card is
#: FAT-only and the SATA disk ships EXT4; see repro.storage.device).
_FILESYSTEMS_BY_DEVICE = {
    "sd": ("fat",),
    "usb-flash": ("fat", "ntfs", "ext4"),
    "usb-hdd": ("fat", "ntfs", "ext4"),
    "sata": ("ext4",),
}


def _stable_hash(text: str) -> int:
    return zlib.crc32(text.encode())


def user_ap_params(user_id: str) -> dict[str, str]:
    """The deterministic smart-AP aux info a user presents (may be {})."""
    draw = _stable_hash(f"ap:{user_id}")
    if (draw % 1000) / 1000.0 >= AP_SHARE:
        return {}
    device = _DEVICES[_stable_hash(f"device:{user_id}")
                      % len(_DEVICES)]
    filesystems = _FILESYSTEMS_BY_DEVICE[device]
    return {
        "ap": _AP_NAMES[_stable_hash(f"model:{user_id}")
                        % len(_AP_NAMES)],
        "device": device,
        "filesystem": filesystems[_stable_hash(f"fs:{user_id}")
                                  % len(filesystems)],
    }


def decide_path(request: RequestRecord,
                weekly_demand: int,
                user: Optional[User] = None) -> str:
    """The ``/decide`` query string for one trace request."""
    params: list[tuple[str, str]] = [
        ("link", request.source_url),
        ("popularity", str(weekly_demand)),
    ]
    if request.access_bandwidth is not None:
        params.append(
            ("bandwidth_mbps",
             f"{request.access_bandwidth / mbps(1.0):.3f}"))
    if user is not None:
        params.append(("isp", user.isp.value))
    params.extend(user_ap_params(request.user_id).items())
    query = "&".join(f"{key}={quote(value, safe='')}"
                     for key, value in params)
    return f"/decide?{query}"


def workload_paths(workload: Workload,
                   limit: Optional[int] = None) -> list[str]:
    """Request paths for a whole workload, in trace arrival order."""
    users = workload.user_by_id()
    requests = workload.requests if limit is None \
        else workload.requests[:limit]
    return [decide_path(request,
                        workload.catalog[request.file_id].weekly_demand,
                        users.get(request.user_id))
            for request in requests]


def load_or_generate_paths(trace_dir: Optional[str],
                           scale: float, seed: int,
                           limit: Optional[int] = None) -> list[str]:
    """Paths from a saved trace directory, or a freshly generated week."""
    if trace_dir is not None:
        from repro.workload import load_workload
        workload = load_workload(trace_dir)
    else:
        from repro.workload import WorkloadConfig, WorkloadGenerator
        workload = WorkloadGenerator(
            WorkloadConfig(scale=scale, seed=seed)).generate()
    return workload_paths(workload, limit=limit)
