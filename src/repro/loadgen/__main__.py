"""``python -m repro.loadgen`` -- replay the trace against live targets.

Two modes:

* fixed rate (default): one step at ``--rps`` for ``--duration``
  seconds;
* ``--ramp``: a stepped saturation search from ``--ramp-start`` to
  ``--ramp-stop`` RPS over ``--ramp-steps`` steps, stopping after the
  first step that blows the SLO.

Either way the run-level scorecard (steps, quantiles, error budget,
saturation point) prints to stdout and, with ``--out``, is written
atomically as JSON.

Examples::

    python -m repro.loadgen --target http://127.0.0.1:8034 --rps 50
    python -m repro.loadgen --target http://127.0.0.1:8034 \\
        --ramp --ramp-start 25 --ramp-stop 800 --ramp-steps 6 \\
        --out scorecard.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.loadgen.client import TargetSet
from repro.loadgen.ramp import (
    DEFAULT_ACHIEVED_FLOOR,
    ramp_rates,
    scorecard,
    step_healthy,
    stepped_ramp,
)
from repro.loadgen.replay import DEFAULT_ERROR_BUDGET, LoadGenerator
from repro.loadgen.trace import load_or_generate_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description="Closed-loop load replay of the workload trace "
                    "with an SLO scorecard.")
    parser.add_argument("--target", action="append", dest="targets",
                        metavar="URL", default=None,
                        help="base URL of a serving endpoint; repeat "
                             "for a replica fleet (required)")
    trace = parser.add_argument_group("trace")
    trace.add_argument("--trace", metavar="DIR", default=None,
                       help="saved workload trace directory; omitted "
                            "means generate one")
    trace.add_argument("--scale", type=float, default=0.02,
                       help="generated-trace scale "
                            "(default %(default)s)")
    trace.add_argument("--seed", type=int, default=7,
                       help="generated-trace seed (default %(default)s)")
    trace.add_argument("--limit", type=int, default=20000,
                       help="at most N trace requests, cycled "
                            "(default %(default)s)")
    load = parser.add_argument_group("load")
    load.add_argument("--rps", type=float, default=50.0,
                      help="offered request rate for the fixed-rate "
                           "mode (default %(default)s)")
    load.add_argument("--duration", type=float, default=10.0,
                      help="seconds per step (default %(default)s)")
    load.add_argument("--workers", type=int, default=8,
                      help="closed-loop worker threads "
                           "(default %(default)s)")
    load.add_argument("--max-concurrency", type=int, default=64,
                      help="per-target in-flight cap "
                           "(default %(default)s)")
    load.add_argument("--timeout", type=float, default=5.0,
                      help="per-request timeout, seconds "
                           "(default %(default)s)")
    load.add_argument("--hedge-ms", type=float, default=None,
                      help="hedge a request still outstanding after "
                           "this many ms (off by default)")
    load.add_argument("--deadline-ms", type=float, default=None,
                      help="stamp X-Deadline-Ms on every request: the "
                           "budget left from its scheduled arrival; "
                           "the server sheds hopeless requests with "
                           "504 (off by default)")
    load.add_argument("--error-budget", type=float,
                      default=DEFAULT_ERROR_BUDGET,
                      help="SLO error budget as a rate "
                           "(default %(default)s)")
    load.add_argument("--no-prewarm", action="store_true",
                      help="skip the /healthz connection prewarm")
    ramp = parser.add_argument_group("ramp")
    ramp.add_argument("--ramp", action="store_true",
                      help="stepped saturation search instead of one "
                           "fixed-rate step")
    ramp.add_argument("--ramp-start", type=float, default=25.0)
    ramp.add_argument("--ramp-stop", type=float, default=800.0)
    ramp.add_argument("--ramp-steps", type=int, default=6)
    ramp.add_argument("--achieved-floor", type=float,
                      default=DEFAULT_ACHIEVED_FLOOR,
                      help="a step is unhealthy below this share of "
                           "its offered rate (default %(default)s)")
    ramp.add_argument("--keep-going", action="store_true",
                      help="run every ramp step even past saturation")
    ramp.add_argument("--settle", type=float, default=0.5,
                      help="pause between ramp steps, seconds "
                           "(default %(default)s)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the scorecard JSON here "
                             "(atomic rename)")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not args.targets:
        parser.error("at least one --target URL is required")

    paths = load_or_generate_paths(args.trace, args.scale, args.seed,
                                   limit=args.limit)
    if not args.quiet:
        print(f"loadgen: {len(paths)} trace paths, "
              f"{len(args.targets)} target(s)", flush=True)

    targets = TargetSet.from_urls(args.targets,
                                  max_concurrency=args.max_concurrency,
                                  timeout=args.timeout)
    rates = ramp_rates(args.ramp_start, args.ramp_stop,
                       args.ramp_steps) if args.ramp else [args.rps]

    def report(card) -> None:
        if args.quiet:
            return
        health = "ok" if step_healthy(card, args.achieved_floor) \
            else "SATURATED"
        p95 = card.latency.quantile(0.95) if card.latency.count \
            else float("nan")
        print(f"  step {card.offered_rps:8.1f} rps offered | "
              f"{card.achieved_rps:8.1f} achieved | "
              f"p95 {p95:7.2f} ms | "
              f"err {card.error_rate:.4f} | {health}", flush=True)

    with LoadGenerator(targets, paths, workers=args.workers,
                       hedge_ms=args.hedge_ms,
                       error_budget=args.error_budget,
                       deadline_ms=args.deadline_ms) as generator:
        if not args.no_prewarm:
            generator.prewarm()
        cards = stepped_ramp(generator, rates, args.duration,
                             achieved_floor=args.achieved_floor,
                             stop_after_unhealthy=not args.keep_going
                             and args.ramp,
                             settle=args.settle if args.ramp else 0.0,
                             on_step=report)

    result = scorecard(cards, achieved_floor=args.achieved_floor,
                       meta={
                           "targets": list(args.targets),
                           "trace": args.trace,
                           "scale": args.scale,
                           "seed": args.seed,
                           "limit": args.limit,
                           "workers": args.workers,
                           "hedge_ms": args.hedge_ms,
                           "deadline_ms": args.deadline_ms,
                           "mode": "ramp" if args.ramp else "fixed",
                       })
    rendered = json.dumps(result, indent=2, sort_keys=True)
    if args.out:
        from pathlib import Path

        from repro.recovery.atomic import atomic_write_text
        atomic_write_text(Path(args.out), rendered + "\n")
        if not args.quiet:
            print(f"loadgen: scorecard written to {args.out}",
                  flush=True)
    if not args.quiet:
        print(f"loadgen: saturation {result['saturation_rps']} rps "
              f"over {result['healthy_steps']}/"
              f"{result['total_steps']} healthy steps", flush=True)
    if args.quiet and not args.out:
        print(rendered)
    return 0 if result["healthy_steps"] else 1


if __name__ == "__main__":
    sys.exit(main())
