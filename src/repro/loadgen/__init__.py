"""repro.loadgen -- closed-loop load replay with an SLO scorecard.

Replays the synthetic workload trace as live HTTP against the serving
tier (:mod:`repro.serve`) and scores what came back:

* :mod:`~repro.loadgen.trace` turns
  :class:`~repro.workload.records.RequestRecord` rows into ``/decide``
  request paths with the user's auxiliary info;
* :mod:`~repro.loadgen.client` owns the transport: per-target
  keep-alive session pools, EWMA latency, concurrency caps, quarantine
  of sick endpoints;
* :mod:`~repro.loadgen.replay` executes one open-loop-scheduled load
  step and emits a :class:`~repro.loadgen.replay.StepScorecard`;
* :mod:`~repro.loadgen.ramp` runs the stepped saturation ramp and
  folds the steps into the run-level scorecard.

CLI: ``python -m repro.loadgen --target http://host:port --rps 50``
(add ``--ramp`` for the saturation search).
"""

from repro.loadgen.client import (
    Ewma,
    RequestOutcome,
    Target,
    TargetSet,
)
from repro.loadgen.ramp import (
    ramp_rates,
    saturation_rps,
    scorecard,
    step_healthy,
    stepped_ramp,
)
from repro.loadgen.replay import (
    DEFAULT_ERROR_BUDGET,
    LoadGenerator,
    StepScorecard,
)
from repro.loadgen.trace import (
    decide_path,
    load_or_generate_paths,
    workload_paths,
)

__all__ = [
    "DEFAULT_ERROR_BUDGET",
    "Ewma",
    "LoadGenerator",
    "RequestOutcome",
    "StepScorecard",
    "Target",
    "TargetSet",
    "decide_path",
    "load_or_generate_paths",
    "ramp_rates",
    "saturation_rps",
    "scorecard",
    "step_healthy",
    "stepped_ramp",
    "workload_paths",
]
