"""Stepped-ramp saturation search and the run-level scorecard.

The ramp offers increasing request rates, one
:meth:`~repro.loadgen.replay.LoadGenerator.run_step` per step, and
declares a step *unhealthy* when either

* the error rate exceeds the SLO error budget,
* achieved throughput falls below ``achieved_floor`` of offered
  (the open-loop schedule lagged -- the service stopped keeping up), or
* tail latency degraded past ``latency_degradation`` times the lowest
  step's p99 (the service still answers, but queueing has already
  destroyed its latency SLO).

The saturation point is the highest *achieved* throughput among healthy
steps; by default the ramp stops after the first unhealthy step (the
service is past its knee and further steps only measure collapse).
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.loadgen.replay import LoadGenerator, StepScorecard

#: A step must achieve at least this share of its offered rate.
DEFAULT_ACHIEVED_FLOOR = 0.9

#: A step's p99 may grow at most this factor over the lowest (first
#: measured) step's p99 before the step counts as unhealthy.  Wide by
#: design: the ramp's first step is nearly idle, so even a healthy
#: service legitimately multiplies its tail a few times on the way to
#: the knee.
DEFAULT_LATENCY_DEGRADATION = 25.0


def step_p99(card: StepScorecard) -> Optional[float]:
    """The step's p99 latency in ms, or ``None`` with no samples."""
    if not card.latency.count:
        return None
    return card.latency.quantile(0.99)


def baseline_p99(cards: list[StepScorecard]) -> Optional[float]:
    """The degradation baseline: the first step with latency samples.

    Steps ramp from the lowest offered rate, so the first measurable
    p99 is the closest thing the run has to an unloaded tail.
    """
    for card in cards:
        p99 = step_p99(card)
        if p99 is not None and p99 > 0.0:
            return p99
    return None


def step_healthy(card: StepScorecard,
                 achieved_floor: float = DEFAULT_ACHIEVED_FLOOR,
                 *, baseline_p99_ms: Optional[float] = None,
                 latency_degradation: float = DEFAULT_LATENCY_DEGRADATION
                 ) -> bool:
    """Did the service hold its SLO at this step's offered rate?"""
    if card.error_rate > card.error_budget:
        return False
    if card.achieved_rps < achieved_floor * card.offered_rps:
        return False
    if baseline_p99_ms is not None and baseline_p99_ms > 0.0 \
            and latency_degradation > 0.0:
        p99 = step_p99(card)
        if p99 is not None \
                and p99 > latency_degradation * baseline_p99_ms:
            return False
    return True


def ramp_rates(start: float, stop: float, steps: int) -> list[float]:
    """Geometric ramp from ``start`` to ``stop`` in ``steps`` offers."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if start <= 0 or stop < start:
        raise ValueError("need 0 < start <= stop")
    if steps == 1 or stop == start:
        return [float(start)]
    ratio = (stop / start) ** (1.0 / (steps - 1))
    return [start * ratio ** i for i in range(steps)]


def stepped_ramp(generator: LoadGenerator, rates: list[float],
                 duration: float, *,
                 achieved_floor: float = DEFAULT_ACHIEVED_FLOOR,
                 latency_degradation: float =
                 DEFAULT_LATENCY_DEGRADATION,
                 stop_after_unhealthy: bool = True,
                 settle: float = 0.0,
                 on_step=None) -> list[StepScorecard]:
    """Run one step per offered rate; optionally stop past the knee."""
    cards: list[StepScorecard] = []
    for rate in rates:
        card = generator.run_step(rate, duration)
        cards.append(card)
        if on_step is not None:
            on_step(card)
        if stop_after_unhealthy and not step_healthy(
                card, achieved_floor,
                baseline_p99_ms=baseline_p99(cards),
                latency_degradation=latency_degradation):
            break
        if settle > 0.0:
            time.sleep(settle)
    return cards


def saturation_rps(cards: list[StepScorecard],
                   achieved_floor: float = DEFAULT_ACHIEVED_FLOOR,
                   latency_degradation: float =
                   DEFAULT_LATENCY_DEGRADATION) -> float:
    """Highest achieved throughput among SLO-healthy steps."""
    baseline = baseline_p99(cards)
    healthy = [card.achieved_rps for card in cards
               if step_healthy(card, achieved_floor,
                               baseline_p99_ms=baseline,
                               latency_degradation=latency_degradation)]
    return max(healthy, default=0.0)


def scorecard(cards: list[StepScorecard], *,
              achieved_floor: float = DEFAULT_ACHIEVED_FLOOR,
              latency_degradation: float = DEFAULT_LATENCY_DEGRADATION,
              meta: Optional[dict[str, Any]] = None
              ) -> dict[str, Any]:
    """The run-level SLO scorecard (JSON-ready)."""
    baseline = baseline_p99(cards)
    healthy_flags = [
        step_healthy(card, achieved_floor, baseline_p99_ms=baseline,
                     latency_degradation=latency_degradation)
        for card in cards]
    steps = []
    for card, flag in zip(cards, healthy_flags):
        row = dict(card.to_dict(), healthy=flag)
        p99 = step_p99(card)
        if baseline is not None and p99 is not None:
            row["p99_over_baseline"] = round(p99 / baseline, 3)
        steps.append(row)
    result: dict[str, Any] = {
        "steps": steps,
        "achieved_floor": achieved_floor,
        "latency_degradation": latency_degradation,
        "baseline_p99_ms":
            round(baseline, 3) if baseline is not None else None,
        "saturation_rps":
            round(saturation_rps(cards, achieved_floor,
                                 latency_degradation), 3),
        "healthy_steps": sum(healthy_flags),
        "total_steps": len(cards),
        "total_requests": sum(card.requests for card in cards),
        "total_completed": sum(card.completed for card in cards),
        "total_errors": sum(card.errors for card in cards),
    }
    if meta:
        result["meta"] = meta
    return result
