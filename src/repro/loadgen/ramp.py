"""Stepped-ramp saturation search and the run-level scorecard.

The ramp offers increasing request rates, one
:meth:`~repro.loadgen.replay.LoadGenerator.run_step` per step, and
declares a step *unhealthy* when either

* the error rate exceeds the SLO error budget, or
* achieved throughput falls below ``achieved_floor`` of offered
  (the open-loop schedule lagged -- the service stopped keeping up).

The saturation point is the highest *achieved* throughput among healthy
steps; by default the ramp stops after the first unhealthy step (the
service is past its knee and further steps only measure collapse).
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.loadgen.replay import LoadGenerator, StepScorecard

#: A step must achieve at least this share of its offered rate.
DEFAULT_ACHIEVED_FLOOR = 0.9


def step_healthy(card: StepScorecard,
                 achieved_floor: float = DEFAULT_ACHIEVED_FLOOR
                 ) -> bool:
    """Did the service hold its SLO at this step's offered rate?"""
    if card.error_rate > card.error_budget:
        return False
    return card.achieved_rps >= achieved_floor * card.offered_rps


def ramp_rates(start: float, stop: float, steps: int) -> list[float]:
    """Geometric ramp from ``start`` to ``stop`` in ``steps`` offers."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if start <= 0 or stop < start:
        raise ValueError("need 0 < start <= stop")
    if steps == 1 or stop == start:
        return [float(start)]
    ratio = (stop / start) ** (1.0 / (steps - 1))
    return [start * ratio ** i for i in range(steps)]


def stepped_ramp(generator: LoadGenerator, rates: list[float],
                 duration: float, *,
                 achieved_floor: float = DEFAULT_ACHIEVED_FLOOR,
                 stop_after_unhealthy: bool = True,
                 settle: float = 0.0,
                 on_step=None) -> list[StepScorecard]:
    """Run one step per offered rate; optionally stop past the knee."""
    cards: list[StepScorecard] = []
    for rate in rates:
        card = generator.run_step(rate, duration)
        cards.append(card)
        if on_step is not None:
            on_step(card)
        if stop_after_unhealthy \
                and not step_healthy(card, achieved_floor):
            break
        if settle > 0.0:
            time.sleep(settle)
    return cards


def saturation_rps(cards: list[StepScorecard],
                   achieved_floor: float = DEFAULT_ACHIEVED_FLOOR
                   ) -> float:
    """Highest achieved throughput among SLO-healthy steps."""
    healthy = [card.achieved_rps for card in cards
               if step_healthy(card, achieved_floor)]
    return max(healthy, default=0.0)


def scorecard(cards: list[StepScorecard], *,
              achieved_floor: float = DEFAULT_ACHIEVED_FLOOR,
              meta: Optional[dict[str, Any]] = None
              ) -> dict[str, Any]:
    """The run-level SLO scorecard (JSON-ready)."""
    healthy_flags = [step_healthy(card, achieved_floor)
                     for card in cards]
    result: dict[str, Any] = {
        "steps": [dict(card.to_dict(), healthy=flag)
                  for card, flag in zip(cards, healthy_flags)],
        "achieved_floor": achieved_floor,
        "saturation_rps":
            round(saturation_rps(cards, achieved_floor), 3),
        "healthy_steps": sum(healthy_flags),
        "total_steps": len(cards),
        "total_requests": sum(card.requests for card in cards),
        "total_completed": sum(card.completed for card in cards),
        "total_errors": sum(card.errors for card in cards),
    }
    if meta:
        result["meta"] = meta
    return result
