"""The load-generator client layer: pooled sessions over targets.

Modelled on production workload replayers (FaaS gateway drivers and the
like): each :class:`Target` owns a pool of keep-alive
``http.client`` connections, an EWMA latency tracker, a concurrency cap
(a semaphore -- a sick or saturated endpoint cannot absorb the whole
worker fleet), and quarantine state (an endpoint that keeps failing is
benched for a cooldown instead of being hammered).  A
:class:`TargetSet` round-robins logical requests across the healthy
targets, which is how a multi-worker ``SO_REUSEPORT`` service or a
small replica fleet is driven.
"""

from __future__ import annotations

import http.client
import threading
import time
from typing import Optional
from urllib.parse import urlparse

#: EWMA smoothing factor for per-target latency (ms).
EWMA_ALPHA = 0.25

#: Consecutive failures before a target is quarantined.
QUARANTINE_FAILURES = 5

#: Default quarantine cooldown, seconds.
QUARANTINE_SECONDS = 2.0

#: Cap on an honored Retry-After hint, seconds: a server asking for
#: more than this is treated as asking for this much.
RETRY_AFTER_CAP = 30.0


class Ewma:
    """Exponentially weighted moving average with a lazy first sample."""

    __slots__ = ("alpha", "_value")

    def __init__(self, alpha: float = EWMA_ALPHA):
        self.alpha = alpha
        self._value: Optional[float] = None

    def update(self, sample: float) -> float:
        if self._value is None:
            self._value = sample
        else:
            self._value += self.alpha * (sample - self._value)
        return self._value

    @property
    def value(self) -> Optional[float]:
        return self._value


class RequestOutcome:
    """One completed (or failed) HTTP call."""

    __slots__ = ("status", "latency_ms", "error", "hedged",
                 "hedge_won", "retry_after")

    def __init__(self, status: Optional[int], latency_ms: float,
                 error: Optional[str] = None, hedged: bool = False,
                 hedge_won: bool = False,
                 retry_after: Optional[float] = None):
        self.status = status
        self.latency_ms = latency_ms
        self.error = error
        self.hedged = hedged
        self.hedge_won = hedge_won
        self.retry_after = retry_after

    @property
    def ok(self) -> bool:
        return self.status is not None and 200 <= self.status < 400

    @property
    def shed(self) -> bool:
        """A deliberate server-side refusal (load or deadline shed) --
        backpressure, not breakage."""
        return self.status in (503, 504)

    @property
    def status_class(self) -> str:
        if self.status is None:
            return "error"
        if self.status in (503, 504):
            # Sheds get their own class: 503 means "server full, back
            # off", 504 means "the deadline budget ran out"; lumping
            # them into 5xx would make backpressure look like breakage.
            return str(self.status)
        return f"{self.status // 100}xx"


class Target:
    """One base URL with its session pool and health bookkeeping."""

    def __init__(self, base_url: str, *,
                 max_concurrency: int = 64,
                 timeout: float = 5.0,
                 quarantine_failures: int = QUARANTINE_FAILURES,
                 quarantine_seconds: float = QUARANTINE_SECONDS,
                 fresh: bool = False,
                 clock=time.monotonic):
        parsed = urlparse(base_url if "//" in base_url
                          else f"http://{base_url}")
        if parsed.scheme != "http" or parsed.hostname is None:
            raise ValueError(f"loadgen targets are http:// URLs, "
                             f"got {base_url!r}")
        self.base_url = f"http://{parsed.hostname}:{parsed.port or 80}"
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        #: Fresh mode opens a new connection per request (Connection:
        #: close) instead of pooling keep-alives.  Availability
        #: campaigns want it: a LIFO session pool pins nearly all
        #: traffic to whichever worker its hot connection reached, so a
        #: pooled client measures one lucky keep-alive flow -- fresh
        #: connections measure the front door as new arrivals see it,
        #: kernel-balanced across every listener (SO_REUSEPORT
        #: included, wedged ones included).
        self.fresh = fresh
        self.semaphore = threading.BoundedSemaphore(max_concurrency)
        self.max_concurrency = max_concurrency
        self._pool: list[http.client.HTTPConnection] = []
        self._pool_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._clock = clock
        self.ewma_ms = Ewma()
        self.quarantine_failures = quarantine_failures
        self.quarantine_seconds = quarantine_seconds
        self._consecutive_failures = 0
        self._quarantined_until = 0.0
        self._backed_off_until = 0.0
        self.quarantines = 0
        self.requests = 0
        self.reconnects = 0
        self.sheds_503 = 0
        self.sheds_504 = 0
        self.backoffs = 0

    # -- connection pool ---------------------------------------------------------

    def _checkout(self) -> http.client.HTTPConnection:
        with self._pool_lock:
            if self._pool:
                return self._pool.pop()
        self.reconnects += 1
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def _checkin(self, connection: http.client.HTTPConnection) -> None:
        with self._pool_lock:
            self._pool.append(connection)

    def close(self) -> None:
        with self._pool_lock:
            for connection in self._pool:
                connection.close()
            self._pool.clear()

    @property
    def pooled_connections(self) -> int:
        with self._pool_lock:
            return len(self._pool)

    # -- health ------------------------------------------------------------------

    @property
    def quarantined(self) -> bool:
        with self._state_lock:
            return self._clock() < self._quarantined_until

    @property
    def backed_off(self) -> bool:
        """Inside a server-hinted Retry-After window?  Separate from
        quarantine: the server asked politely, it did not break."""
        with self._state_lock:
            return self._clock() < self._backed_off_until

    @property
    def available(self) -> bool:
        return not (self.quarantined or self.backed_off)

    def _record_outcome(self, outcome: RequestOutcome) -> None:
        with self._state_lock:
            if outcome.status is not None:
                self.ewma_ms.update(outcome.latency_ms)
            if outcome.status == 503:
                # A load shed is deliberate backpressure: honor the
                # Retry-After hint instead of feeding the quarantine
                # failure streak (the server is healthy, just full).
                self.sheds_503 += 1
                if outcome.retry_after is not None:
                    self._backed_off_until = self._clock() + min(
                        RETRY_AFTER_CAP, max(0.0,
                                             outcome.retry_after))
                    self.backoffs += 1
                return
            if outcome.status == 504:
                # A deadline shed says "too late", not "broken": no
                # streak, no backoff -- fresh requests have fresh
                # budgets.
                self.sheds_504 += 1
                return
            failed = outcome.error is not None or (
                outcome.status is not None and outcome.status >= 500)
            if failed:
                self._consecutive_failures += 1
                if self._consecutive_failures >= \
                        self.quarantine_failures:
                    self._quarantined_until = self._clock() \
                        + self.quarantine_seconds
                    self._consecutive_failures = 0
                    self.quarantines += 1
            else:
                self._consecutive_failures = 0

    # -- calls -------------------------------------------------------------------

    def request(self, path: str,
                headers: Optional[dict[str, str]] = None
                ) -> RequestOutcome:
        """One pooled GET; transport failures retire the connection."""
        self.requests += 1
        connection = self._checkout()
        started = time.perf_counter()
        try:
            request_headers = dict(headers or {})
            if self.fresh:
                request_headers.setdefault("Connection", "close")
            connection.request("GET", path, headers=request_headers)
            response = connection.getresponse()
            response.read()     # drain so the connection is reusable
            latency_ms = (time.perf_counter() - started) * 1e3
            retry_after = None
            hint = response.getheader("Retry-After")
            if hint is not None:
                try:
                    retry_after = float(hint)
                except ValueError:
                    retry_after = None   # HTTP-date form: ignore
            outcome = RequestOutcome(response.status, latency_ms,
                                     retry_after=retry_after)
            if self.fresh or response.will_close:
                connection.close()
            else:
                self._checkin(connection)
        except (OSError, http.client.HTTPException) as error:
            # HTTPException covers protocol-level transport failures
            # OSError misses: a server killed mid-response leaves a
            # partial status line (BadStatusLine) rather than a socket
            # error.  Both are the same thing to a load driver -- a
            # failed request, never an escaping exception that would
            # silently kill the worker thread recording it.
            connection.close()
            latency_ms = (time.perf_counter() - started) * 1e3
            outcome = RequestOutcome(None, latency_ms,
                                     error=type(error).__name__)
        self._record_outcome(outcome)
        return outcome


class TargetSet:
    """Round-robin over targets, steering around quarantined ones."""

    def __init__(self, targets: list[Target]):
        if not targets:
            raise ValueError("need at least one target")
        self.targets = targets
        self.quarantine_skips = 0
        self.backoff_skips = 0

    @classmethod
    def from_urls(cls, urls: list[str], **target_kwargs
                  ) -> "TargetSet":
        return cls([Target(url, **target_kwargs) for url in urls])

    def pick(self, index: int) -> Target:
        """The target for logical request ``index``.

        Skips quarantined and Retry-After-backed-off targets when an
        available one exists; with every target benched the nominal
        pick is used anyway (shedding the whole fleet would turn a
        brown-out into an outage).
        """
        count = len(self.targets)
        nominal = self.targets[index % count]
        if nominal.available:
            return nominal
        for offset in range(1, count):
            candidate = self.targets[(index + offset) % count]
            if candidate.available:
                if nominal.quarantined:
                    self.quarantine_skips += 1
                else:
                    self.backoff_skips += 1
                return candidate
        return nominal

    def other_than(self, target: Target, index: int) -> Target:
        """A hedge target: prefer a different healthy replica."""
        count = len(self.targets)
        if count > 1:
            for offset in range(1, count):
                candidate = self.targets[(index + offset) % count]
                if candidate is not target and candidate.available:
                    return candidate
        return target

    def close(self) -> None:
        for target in self.targets:
            target.close()

    @property
    def quarantines(self) -> int:
        return sum(target.quarantines for target in self.targets)

    @property
    def reconnects(self) -> int:
        return sum(target.reconnects for target in self.targets)

    @property
    def sheds_503(self) -> int:
        return sum(target.sheds_503 for target in self.targets)

    @property
    def sheds_504(self) -> int:
        return sum(target.sheds_504 for target in self.targets)

    @property
    def backoffs(self) -> int:
        return sum(target.backoffs for target in self.targets)
