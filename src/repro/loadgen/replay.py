"""The closed-loop load generator: open-loop offers, measured truth.

One *step* offers a fixed request rate for a fixed duration against a
:class:`~repro.loadgen.client.TargetSet`:

* the **arrival schedule is open-loop** -- request ``i`` is due at
  ``start + i/rps`` whether or not earlier requests returned, which is
  what exposes saturation (a purely closed-loop driver slows down with
  the server and hides it);
* the **workers are a closed loop** -- a fixed fleet of threads, each
  owning pooled keep-alive sessions, executes the schedule; when the
  service can't keep up the schedule lags and achieved < offered
  throughput is the signal;
* optional **hedged requests** -- a request still outstanding after the
  hedge delay (a multiple of the target's EWMA latency) is duplicated
  to another replica and the first answer wins;
* **per-target concurrency caps and quarantine** come from the client
  layer.

Each step emits a :class:`StepScorecard`: latency quantiles from a
:class:`~repro.obs.histogram.QuantileSketch` (merged lock-free from
per-worker sketches), status-class counts, error rate against the SLO
budget, achieved vs offered throughput, and schedule lag.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.loadgen.client import RequestOutcome, Target, TargetSet
from repro.obs.histogram import QuantileSketch

#: Default SLO: at most 1% of requests may fail.
DEFAULT_ERROR_BUDGET = 0.01

#: Hedge delay = HEDGE_EWMA_FACTOR x EWMA latency, floored at hedge_ms.
HEDGE_EWMA_FACTOR = 3.0


@dataclass
class StepScorecard:
    """What one load step measured."""

    offered_rps: float
    duration: float
    requests: int = 0
    completed: int = 0
    statuses: dict[str, int] = field(default_factory=dict)
    latency: QuantileSketch = field(default_factory=QuantileSketch)
    hedges: int = 0
    hedge_wins: int = 0
    quarantines: int = 0
    reconnects: int = 0
    backoffs: int = 0
    max_schedule_lag: float = 0.0
    wall_seconds: float = 0.0
    error_budget: float = DEFAULT_ERROR_BUDGET
    deadline_ms: Optional[float] = None

    @property
    def shed_503(self) -> int:
        """Load sheds (server full; Retry-After honored)."""
        return self.statuses.get("503", 0)

    @property
    def shed_504(self) -> int:
        """Deadline sheds (budget exhausted before the answer)."""
        return self.statuses.get("504", 0)

    @property
    def errors(self) -> int:
        """Requests that did not return a useful answer: transport
        errors, hard 5xx, and both shed flavors.  The SLO budget
        charges sheds too -- a shed answer is still not an answer."""
        return self.statuses.get("error", 0) \
            + self.statuses.get("5xx", 0) \
            + self.shed_503 + self.shed_504

    @property
    def hard_errors(self) -> int:
        """Breakage only: transport errors and non-shed 5xx.  What the
        availability gate compares across supervision modes (sheds are
        deliberate backpressure, not failures)."""
        return self.statuses.get("error", 0) \
            + self.statuses.get("5xx", 0)

    @property
    def hard_error_rate(self) -> float:
        return self.hard_errors / self.completed if self.completed \
            else 0.0

    @property
    def deadline_hit_rate(self) -> Optional[float]:
        """Share of completed requests answered within their budget;
        None when the step ran without deadlines."""
        if self.deadline_ms is None:
            return None
        if not self.completed:
            return 0.0
        return 1.0 - self.shed_504 / self.completed

    @property
    def error_rate(self) -> float:
        return self.errors / self.completed if self.completed else 0.0

    @property
    def achieved_rps(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.completed / self.wall_seconds

    @property
    def error_budget_remaining(self) -> float:
        """Share of the SLO error budget left (negative = blown)."""
        if self.error_budget <= 0.0:
            return 0.0 if self.errors else 1.0
        return 1.0 - self.error_rate / self.error_budget

    def to_dict(self) -> dict[str, Any]:
        quantiles = {}
        if self.latency.count:
            quantiles = {
                "p50_ms": round(self.latency.quantile(0.50), 3),
                "p95_ms": round(self.latency.quantile(0.95), 3),
                "p99_ms": round(self.latency.quantile(0.99), 3),
                "mean_ms": round(self.latency.mean, 3),
                "max_ms": round(self.latency.max_value, 3),
            }
        return {
            "offered_rps": round(self.offered_rps, 3),
            "achieved_rps": round(self.achieved_rps, 3),
            "duration_seconds": self.duration,
            "wall_seconds": round(self.wall_seconds, 3),
            "requests": self.requests,
            "completed": self.completed,
            "statuses": dict(sorted(self.statuses.items())),
            "errors": self.errors,
            "error_rate": round(self.error_rate, 6),
            "error_budget": self.error_budget,
            "error_budget_remaining":
                round(self.error_budget_remaining, 4),
            "latency": quantiles,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "quarantines": self.quarantines,
            "reconnects": self.reconnects,
            "backoffs": self.backoffs,
            "shed_503": self.shed_503,
            "shed_504": self.shed_504,
            "hard_errors": self.hard_errors,
            "hard_error_rate": round(self.hard_error_rate, 6),
            "deadline_ms": self.deadline_ms,
            "deadline_hit_rate":
                round(self.deadline_hit_rate, 6)
                if self.deadline_hit_rate is not None else None,
            "max_schedule_lag_seconds":
                round(self.max_schedule_lag, 4),
        }


class _WorkerStats:
    """Lock-free per-worker accumulation, merged after the join."""

    __slots__ = ("sketch", "statuses", "completed", "hedges",
                 "hedge_wins", "max_lag")

    def __init__(self) -> None:
        self.sketch = QuantileSketch()
        self.statuses: dict[str, int] = {}
        self.completed = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.max_lag = 0.0

    def record(self, outcome: RequestOutcome, lag: float) -> None:
        self.completed += 1
        self.sketch.add(outcome.latency_ms)
        key = outcome.status_class
        self.statuses[key] = self.statuses.get(key, 0) + 1
        if outcome.hedged:
            self.hedges += 1
            if outcome.hedge_won:
                self.hedge_wins += 1
        if lag > self.max_lag:
            self.max_lag = lag


class LoadGenerator:
    """Replays request paths against live targets at an offered rate."""

    def __init__(self, targets: TargetSet, paths: list[str], *,
                 workers: int = 8,
                 hedge_ms: Optional[float] = None,
                 error_budget: float = DEFAULT_ERROR_BUDGET,
                 deadline_ms: Optional[float] = None):
        if not paths:
            raise ValueError("need at least one request path")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if deadline_ms is not None and deadline_ms < 0:
            raise ValueError("deadline_ms must be >= 0")
        self.targets = targets
        self.paths = paths
        self.workers = workers
        self.hedge_ms = hedge_ms
        self.error_budget = error_budget
        self.deadline_ms = deadline_ms
        self._hedge_pool: Optional[
            concurrent.futures.ThreadPoolExecutor] = None
        if hedge_ms is not None:
            self._hedge_pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=workers * 2,
                thread_name_prefix="loadgen-hedge")

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if self._hedge_pool is not None:
            self._hedge_pool.shutdown(wait=False)
        self.targets.close()

    def __enter__(self) -> "LoadGenerator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- prewarm -----------------------------------------------------------------

    def prewarm(self, per_target: Optional[int] = None) -> int:
        """Populate every target's session pool via ``/healthz``.

        Opens (and returns to the pool) enough keep-alive connections
        that the first measured step pays no TCP handshakes.
        """
        per_target = per_target if per_target is not None \
            else self.workers
        warmed = 0
        for target in self.targets.targets:
            connections = []
            for _ in range(per_target):
                connection = target._checkout()
                try:
                    connection.request("GET", "/healthz")
                    connection.getresponse().read()
                    connections.append(connection)
                    warmed += 1
                except OSError:
                    connection.close()
            for connection in connections:
                target._checkin(connection)
        return warmed

    # -- one call (with optional hedging) ----------------------------------------

    def _call(self, target: Target, path: str,
              headers: Optional[dict[str, str]] = None
              ) -> RequestOutcome:
        with target.semaphore:
            return target.request(path, headers=headers)

    def _execute(self, index: int, path: str,
                 headers: Optional[dict[str, str]] = None
                 ) -> RequestOutcome:
        target = self.targets.pick(index)
        if self._hedge_pool is None:
            return self._call(target, path, headers)
        primary = self._hedge_pool.submit(self._call, target, path,
                                          headers)
        ewma = target.ewma_ms.value
        hedge_delay_ms = max(self.hedge_ms or 0.0,
                             HEDGE_EWMA_FACTOR * (ewma or 0.0))
        try:
            return primary.result(timeout=hedge_delay_ms / 1e3)
        except concurrent.futures.TimeoutError:
            pass
        hedge_target = self.targets.other_than(target, index)
        secondary = self._hedge_pool.submit(self._call, hedge_target,
                                            path, headers)
        done, _pending = concurrent.futures.wait(
            (primary, secondary),
            return_when=concurrent.futures.FIRST_COMPLETED)
        winner = primary if primary in done else secondary
        outcome = winner.result()
        outcome.hedged = True
        outcome.hedge_won = winner is secondary
        # The loser drains in the background on the hedge pool; its
        # connection returns to the session pool when it finishes.
        return outcome

    # -- one step ----------------------------------------------------------------

    def run_step(self, rps: float, duration: float) -> StepScorecard:
        """Offer ``rps`` requests/s for ``duration`` seconds."""
        if rps <= 0 or duration <= 0:
            raise ValueError("rps and duration must be > 0")
        total = max(1, int(rps * duration))
        spacing = 1.0 / rps
        paths = self.paths
        stats = [_WorkerStats() for _ in range(self.workers)]
        start = time.perf_counter() + 0.005   # let every worker arm

        deadline_seconds = self.deadline_ms / 1e3 \
            if self.deadline_ms is not None else None

        def worker(rank: int) -> None:
            local = stats[rank]
            for index in range(rank, total, self.workers):
                due = start + index * spacing
                now = time.perf_counter()
                if now < due:
                    time.sleep(due - now)
                    lag = 0.0
                else:
                    lag = now - due
                headers = None
                if deadline_seconds is not None:
                    # The budget is anchored at the *scheduled* arrival
                    # (open loop): a request sent late has already
                    # burned part of its deadline queueing client-side.
                    remaining = due + deadline_seconds \
                        - time.perf_counter()
                    headers = {"X-Deadline-Ms":
                               f"{max(0.0, remaining * 1e3):.1f}"}
                outcome = self._execute(index,
                                        paths[index % len(paths)],
                                        headers)
                local.record(outcome, lag)

        threads = [threading.Thread(target=worker, args=(rank,),
                                    name=f"loadgen-{rank}",
                                    daemon=True)
                   for rank in range(self.workers)]
        quarantines_before = self.targets.quarantines
        reconnects_before = self.targets.reconnects
        backoffs_before = self.targets.backoffs
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start

        card = StepScorecard(offered_rps=rps, duration=duration,
                             requests=total,
                             error_budget=self.error_budget,
                             deadline_ms=self.deadline_ms)
        card.wall_seconds = max(wall, duration)
        for local in stats:
            card.completed += local.completed
            card.latency.merge(local.sketch)
            for key, count in local.statuses.items():
                card.statuses[key] = card.statuses.get(key, 0) + count
            card.hedges += local.hedges
            card.hedge_wins += local.hedge_wins
            card.max_schedule_lag = max(card.max_schedule_lag,
                                        local.max_lag)
        card.quarantines = self.targets.quarantines \
            - quarantines_before
        card.reconnects = self.targets.reconnects - reconnects_before
        card.backoffs = self.targets.backoffs - backoffs_before
        return card
