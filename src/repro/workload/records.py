"""Trace records: the schema of the three Xuanfeng log parts.

Paper section 3 describes the dataset as three traces keyed to the three
stages of offline downloading (request -> pre-download -> fetch); the
dataclasses here carry exactly the fields the paper enumerates, so the
synthetic workload round-trips through the same schema the real system
logged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Optional, Type, TypeVar

from repro.netsim.isp import ISP
from repro.transfer.protocols import Protocol
from repro.workload.filetypes import FileType
from repro.workload.popularity import PopularityClass, classify

T = TypeVar("T", bound="_TraceRecord")


@dataclass
class _TraceRecord:
    """Shared (de)serialisation for trace rows (JSONL-friendly dicts)."""

    def to_dict(self) -> dict[str, Any]:
        raw = asdict(self)
        for key, value in raw.items():
            if isinstance(value, (Protocol, FileType, ISP,
                                  PopularityClass)):
                raw[key] = value.value
        return raw

    @classmethod
    def from_dict(cls: Type[T], raw: dict[str, Any]) -> T:
        converted = dict(raw)
        for spec in fields(cls):
            if spec.name not in converted:
                continue
            value = converted[spec.name]
            if value is None:
                continue
            if spec.type in ("Protocol", Protocol):
                converted[spec.name] = Protocol(value)
            elif spec.type in ("FileType", FileType):
                converted[spec.name] = FileType(value)
            elif spec.type in ("ISP", ISP, "Optional[ISP]"):
                converted[spec.name] = ISP(value)
        return cls(**converted)


@dataclass
class CatalogFile(_TraceRecord):
    """One unique file in the content universe (keyed by MD5 content ID)."""

    file_id: str
    size: float
    file_type: FileType
    protocol: Protocol
    weekly_demand: int
    source_url: str

    @property
    def popularity_class(self) -> PopularityClass:
        return classify(self.weekly_demand)

    @property
    def is_p2p(self) -> bool:
        return self.protocol.is_p2p


@dataclass
class User(_TraceRecord):
    """One subscriber of the offline-downloading service."""

    user_id: str
    ip_address: str
    isp: ISP
    access_bandwidth: float          # downstream B/s (ground truth)
    reports_bandwidth: bool          # whether the trace records it

    @property
    def reported_bandwidth(self) -> Optional[float]:
        """What the workload trace exposes ('if available', section 3)."""
        return self.access_bandwidth if self.reports_bandwidth else None


@dataclass
class RequestRecord(_TraceRecord):
    """One row of the workload trace (an offline-downloading request)."""

    task_id: str
    user_id: str
    ip_address: str
    access_bandwidth: Optional[float]   # None when the user did not report
    request_time: float                 # seconds from week start
    file_id: str
    file_type: FileType
    file_size: float
    source_url: str
    protocol: Protocol


@dataclass
class PreDownloadRecord(_TraceRecord):
    """One row of the pre-downloading trace."""

    task_id: str
    file_id: str
    start_time: float
    finish_time: float
    acquired_bytes: float
    traffic_bytes: float
    cache_hit: bool
    average_speed: float
    peak_speed: float
    success: bool
    failure_cause: Optional[str] = None

    @property
    def delay(self) -> float:
        return self.finish_time - self.start_time


@dataclass
class FetchRecord(_TraceRecord):
    """One row of the fetching trace."""

    task_id: str
    user_id: str
    ip_address: str
    access_bandwidth: Optional[float]
    start_time: float
    finish_time: float
    acquired_bytes: float
    traffic_bytes: float
    average_speed: float
    peak_speed: float
    rejected: bool = False

    @property
    def delay(self) -> float:
        return self.finish_time - self.start_time
