"""Trace records: the schema of the three Xuanfeng log parts.

Paper section 3 describes the dataset as three traces keyed to the three
stages of offline downloading (request -> pre-download -> fetch); the
dataclasses here carry exactly the fields the paper enumerates, so the
synthetic workload round-trips through the same schema the real system
logged.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Optional, Type, TypeVar

from repro.netsim.isp import ISP
from repro.transfer.protocols import Protocol
from repro.workload.filetypes import FileType
from repro.workload.popularity import PopularityClass, classify

T = TypeVar("T", bound="_TraceRecord")

#: Enum field types serialised by ``.value``; enums are final classes
#: here, so an exact type test replaces the old isinstance chain.
_ENUM_TYPES = {Protocol, FileType, ISP, PopularityClass}


@dataclass(slots=True)
class _TraceRecord:
    """Shared (de)serialisation for trace rows (JSONL-friendly dicts).

    ``to_dict`` walks the declared fields directly instead of going
    through :func:`dataclasses.asdict` (which deep-copies every value);
    ``from_dict`` runs a per-class conversion plan computed once rather
    than re-inspecting ``fields(cls)`` per row.  Both produce exactly
    the dicts the old implementations did -- same keys, same order,
    same values -- so serialised traces are byte-identical.
    """

    def to_dict(self) -> dict[str, Any]:
        out = {}
        enum_types = _ENUM_TYPES
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if value.__class__ in enum_types:
                value = value.value
            out[name] = value
        return out

    @classmethod
    def _conversion_plan(cls) -> tuple[tuple[str, Any], ...]:
        """(field name, enum constructor) pairs needing deserialisation.

        Stored per concrete class (``cls.__dict__``, not inherited) the
        first time a record of that class is parsed.
        """
        plan = cls.__dict__.get("_FROM_DICT_PLAN")
        if plan is None:
            plan = []
            for spec in fields(cls):
                if spec.type in ("Protocol", Protocol):
                    plan.append((spec.name, Protocol))
                elif spec.type in ("FileType", FileType):
                    plan.append((spec.name, FileType))
                elif spec.type in ("ISP", ISP, "Optional[ISP]"):
                    plan.append((spec.name, ISP))
            plan = tuple(plan)
            cls._FROM_DICT_PLAN = plan
        return plan

    @classmethod
    def from_dict(cls: Type[T], raw: dict[str, Any]) -> T:
        converted = dict(raw)
        for name, enum_type in cls._conversion_plan():
            value = converted.get(name)
            if value is not None:
                converted[name] = enum_type(value)
        return cls(**converted)


@dataclass(slots=True)
class CatalogFile(_TraceRecord):
    """One unique file in the content universe (keyed by MD5 content ID)."""

    file_id: str
    size: float
    file_type: FileType
    protocol: Protocol
    weekly_demand: int
    source_url: str

    @property
    def popularity_class(self) -> PopularityClass:
        return classify(self.weekly_demand)

    @property
    def is_p2p(self) -> bool:
        return self.protocol.is_p2p


@dataclass(slots=True)
class User(_TraceRecord):
    """One subscriber of the offline-downloading service."""

    user_id: str
    ip_address: str
    isp: ISP
    access_bandwidth: float          # downstream B/s (ground truth)
    reports_bandwidth: bool          # whether the trace records it

    @property
    def reported_bandwidth(self) -> Optional[float]:
        """What the workload trace exposes ('if available', section 3)."""
        return self.access_bandwidth if self.reports_bandwidth else None


@dataclass(slots=True)
class RequestRecord(_TraceRecord):
    """One row of the workload trace (an offline-downloading request)."""

    task_id: str
    user_id: str
    ip_address: str
    access_bandwidth: Optional[float]   # None when the user did not report
    request_time: float                 # seconds from week start
    file_id: str
    file_type: FileType
    file_size: float
    source_url: str
    protocol: Protocol


@dataclass(slots=True)
class PreDownloadRecord(_TraceRecord):
    """One row of the pre-downloading trace."""

    task_id: str
    file_id: str
    start_time: float
    finish_time: float
    acquired_bytes: float
    traffic_bytes: float
    cache_hit: bool
    average_speed: float
    peak_speed: float
    success: bool
    failure_cause: Optional[str] = None

    @property
    def delay(self) -> float:
        return self.finish_time - self.start_time


@dataclass(slots=True)
class FetchRecord(_TraceRecord):
    """One row of the fetching trace."""

    task_id: str
    user_id: str
    ip_address: str
    access_bandwidth: Optional[float]
    start_time: float
    finish_time: float
    acquired_bytes: float
    traffic_bytes: float
    average_speed: float
    peak_speed: float
    rejected: bool = False

    @property
    def delay(self) -> float:
        return self.finish_time - self.start_time
