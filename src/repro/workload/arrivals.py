"""Request-arrival process over the measurement week.

Figure 11 of the paper shows the cloud's upload-bandwidth burden with a
strong diurnal swing and a rising trend that finally pierces the 30 Gbps
purchased capacity on day 7.  We therefore model arrivals as a
non-homogeneous process with intensity

    rate(t) ∝ (1 + growth * t/WEEK) * (1 + amplitude * diurnal(t)),

where ``diurnal`` peaks in the evening (~21:00, China's residential
traffic peak).  Request times are drawn by inverse-CDF sampling on a
fine grid, so any requested count is spread exactly according to the
intensity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.clock import DAY, HOUR, WEEK


@dataclass(frozen=True)
class ArrivalProcess:
    """Inverse-CDF sampler of request times on ``[0, horizon)``."""

    horizon: float = WEEK
    growth: float = 0.25
    amplitude: float = 0.35
    peak_hour: float = 21.0
    grid_step: float = 5 * 60.0   # 5-minute resolution, matching Fig. 11

    def intensity(self, t: np.ndarray | float) -> np.ndarray:
        """Unnormalised arrival intensity at time(s) ``t``."""
        t = np.asarray(t, dtype=float)
        trend = 1.0 + self.growth * (t / self.horizon)
        phase = 2.0 * np.pi * ((t / DAY) % 1.0 - self.peak_hour / 24.0)
        diurnal = 1.0 + self.amplitude * np.cos(phase)
        return trend * diurnal

    def _grid_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """The (cdf, grid) inversion table, built once per process.

        The sharded generator calls :meth:`sample_times` once per file;
        rebuilding the ~2000-point grid and intensity curve for each of
        those calls used to dominate its profile.  The table depends
        only on the frozen dataclass fields, so it is stashed on the
        instance after the first call.
        """
        cached = getattr(self, "_cdf_table", None)
        if cached is None:
            grid = np.arange(0.0, self.horizon + self.grid_step,
                             self.grid_step)
            midpoints = (grid[:-1] + grid[1:]) / 2.0
            weights = self.intensity(midpoints)
            cdf = np.concatenate([[0.0], np.cumsum(weights)])
            cdf /= cdf[-1]
            cached = (cdf, grid)
            object.__setattr__(self, "_cdf_table", cached)
        return cached

    def sample_times(self, count: int,
                     rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` sorted arrival times."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.empty(0)
        cdf, grid = self._grid_cdf()
        uniform = rng.random(count)
        # Invert the piecewise-linear CDF.
        times = np.interp(uniform, cdf, grid)
        return np.sort(times)
