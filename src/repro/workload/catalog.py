"""The content universe: unique files and their attributes.

Each catalogued file couples the properties the rest of the system
consumes: size (Figure 5 model), type (section 3 mix), transfer protocol
(68% BitTorrent / 19% eMule / 13% HTTP+FTP), and weekly demand (the
popularity model).  File identity is an MD5-style content ID, matching
Xuanfeng's content-addressed catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.storage.dedup import content_id
from repro.transfer.protocols import Protocol
from repro.workload.filetypes import FileTypeModel
from repro.workload.popularity import PopularityClass, PopularityModel
from repro.workload.records import CatalogFile
from repro.workload.sizes import FileSizeModel

#: Protocol mix over files (paper section 3).
PROTOCOL_MIX: tuple[tuple[Protocol, float], ...] = (
    (Protocol.BITTORRENT, 0.68),
    (Protocol.EMULE, 0.19),
    (Protocol.HTTP, 0.09),
    (Protocol.FTP, 0.04),
)


class QuotaDeck:
    """Stratified categorical sampling: deal items from a shuffled deck.

    Drawing i.i.d. protocols per file makes *request-level* shares very
    noisy at small scale (a single popular file carries hundreds of
    requests), so the catalog deals protocols from a deck holding the
    exact target proportions per 100 cards, reshuffled when exhausted.
    Marginal probabilities are unchanged; variance collapses.
    """

    def __init__(self, items: tuple, weights: tuple, deck_size: int = 100):
        if len(items) != len(weights) or not items:
            raise ValueError("items and weights must align and be "
                             "non-empty")
        total = sum(weights)
        counts = [int(round(weight / total * deck_size))
                  for weight in weights]
        # Fix rounding drift on the largest category.
        counts[counts.index(max(counts))] += deck_size - sum(counts)
        self._deck = [item for item, count in zip(items, counts)
                      for _ in range(count)]
        self._position = len(self._deck)   # force shuffle on first draw

    def draw(self, rng: np.random.Generator):
        if self._position >= len(self._deck):
            rng.shuffle(self._deck)  # type: ignore[arg-type]
            self._position = 0
        item = self._deck[self._position]
        self._position += 1
        return item


@dataclass
class FileCatalog:
    """Builds and indexes the unique-file universe of a synthetic week."""

    size_model: FileSizeModel = field(default_factory=FileSizeModel)
    type_model: FileTypeModel = field(default_factory=FileTypeModel)
    popularity_model: PopularityModel = field(
        default_factory=PopularityModel)
    files: dict[str, CatalogFile] = field(default_factory=dict)

    def generate(self, count: int,
                 rng: np.random.Generator) -> list[CatalogFile]:
        """Create ``count`` unique files (appending to the catalog)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        protocol_deck = QuotaDeck(
            tuple(protocol for protocol, _share in PROTOCOL_MIX),
            tuple(share for _protocol, share in PROTOCOL_MIX))
        type_decks = {
            True: QuotaDeck(tuple(self.type_model.small_mix),
                            tuple(self.type_model.small_mix.values())),
            False: QuotaDeck(tuple(self.type_model.large_mix),
                             tuple(self.type_model.large_mix.values())),
        }
        created: list[CatalogFile] = []
        start = len(self.files)
        for index in range(start, start + count):
            size, is_small = self.size_model.sample(rng)
            protocol = protocol_deck.draw(rng)
            file_id = content_id(f"file-{index}")
            record = CatalogFile(
                file_id=file_id,
                size=size,
                file_type=type_decks[is_small].draw(rng),
                protocol=protocol,
                weekly_demand=self.popularity_model.sample_weekly_demand(
                    rng),
                source_url=f"{protocol.value}://origin/{file_id}",
            )
            self.files[file_id] = record
            created.append(record)
        return created

    # -- indexing -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.files)

    def __iter__(self) -> Iterator[CatalogFile]:
        return iter(self.files.values())

    def get(self, file_id: str) -> Optional[CatalogFile]:
        return self.files.get(file_id)

    def __getitem__(self, file_id: str) -> CatalogFile:
        return self.files[file_id]

    def total_demand(self) -> int:
        """Total weekly requests implied by the catalog."""
        return sum(record.weekly_demand for record in self.files.values())

    def demands(self) -> np.ndarray:
        return np.array([record.weekly_demand
                         for record in self.files.values()])

    def class_file_shares(self) -> dict[PopularityClass, float]:
        """Fraction of files per popularity class."""
        counts: dict[PopularityClass, int] = {}
        for record in self.files.values():
            klass = record.popularity_class
            counts[klass] = counts.get(klass, 0) + 1
        total = max(len(self.files), 1)
        return {klass: counts.get(klass, 0) / total
                for klass in PopularityClass}

    def class_request_shares(self) -> dict[PopularityClass, float]:
        """Fraction of requests (demand-weighted) per popularity class."""
        demand: dict[PopularityClass, int] = {}
        for record in self.files.values():
            klass = record.popularity_class
            demand[klass] = demand.get(klass, 0) + record.weekly_demand
        total = max(self.total_demand(), 1)
        return {klass: demand.get(klass, 0) / total
                for klass in PopularityClass}
