"""Trace (de)serialisation: JSONL files per trace part.

A saved workload is a directory of three JSONL files mirroring the
paper's dataset layout (catalog + users + request trace); pre-download
and fetch traces produced by the simulators use the same helpers.

Files with a ``.gz`` suffix are transparently gzip-compressed -- at
full-trace scale (``repro.scale``) the request trace alone is millions
of rows, and JSONL compresses ~10x.  ``save_workload(...,
compress=True)`` writes ``*.jsonl.gz``; ``load_workload`` auto-detects
whichever variant is present.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO, Iterable, Type, TypeVar

from repro.obs.registry import AnyRegistry, NOOP
from repro.workload.catalog import FileCatalog
from repro.workload.generator import Workload, WorkloadConfig
from repro.workload.records import (
    CatalogFile,
    FetchRecord,
    PreDownloadRecord,
    RequestRecord,
    User,
    _TraceRecord,
)

R = TypeVar("R", bound=_TraceRecord)

CATALOG_FILE = "catalog.jsonl"
USERS_FILE = "users.jsonl"
REQUESTS_FILE = "requests.jsonl"
CONFIG_FILE = "config.json"

#: Rows per write/encode batch.  Large enough to amortise the per-call
#: overhead of ``handle.write`` (one syscall-ish boundary per chunk
#: instead of per row), small enough to keep the join buffer in cache.
_CHUNK_ROWS = 4096


class TraceFormatError(ValueError):
    """A trace row failed to parse or validate.

    Carries the offending file and 1-based line number so a corrupt
    multi-gigabyte trace is diagnosable without bisecting it by hand.
    """

    def __init__(self, path: Path, line: int, cause: Exception):
        super().__init__(f"{path}:{line}: {cause}")
        self.path = path
        self.line = line
        self.cause = cause


def _open_text(path: Path, mode: str) -> IO[str]:
    """Open a trace file for text I/O, gzip-aware by suffix."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return path.open(mode)


def write_jsonl(path: str | Path, records: Iterable[_TraceRecord]) -> int:
    """Write records as one JSON object per line; returns the row count.

    A ``.gz`` suffix selects gzip compression.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    dumps = json.dumps
    chunk: list[str] = []
    append = chunk.append
    with _open_text(path, "w") as handle:
        write = handle.write
        for record in records:
            append(dumps(record.to_dict()))
            count += 1
            if len(chunk) >= _CHUNK_ROWS:
                # One write per chunk; "\n".join + trailing newline is
                # byte-identical to the old per-row write(line + "\n").
                write("\n".join(chunk) + "\n")
                chunk.clear()
        if chunk:
            write("\n".join(chunk) + "\n")
    return count


def read_jsonl(path: str | Path, record_type: Type[R],
               skip_bad_lines: bool = False,
               metrics: AnyRegistry = NOOP) -> list[R]:
    """Read a (possibly gzipped) JSONL trace file back into records.

    A malformed row raises :class:`TraceFormatError` naming the file
    and line.  With ``skip_bad_lines=True`` bad rows are dropped
    instead, counted on the ``repro_trace_skipped_lines_total`` metric
    (labelled by file name), and the rest of the file still loads --
    the degradation mode for salvaging a partially corrupt trace.
    """
    path = Path(path)
    if skip_bad_lines:
        return _read_jsonl_lenient(path, record_type, metrics)
    loads = json.loads
    from_dict = record_type.from_dict
    try:
        with _open_text(path, "r") as handle:
            # Fast path: no per-line bookkeeping (json.loads tolerates
            # surrounding whitespace, so blank-line filtering is the
            # only per-line string work).
            return [from_dict(loads(line)) for line in handle
                    if not line.isspace()]
    except EOFError as error:
        # A truncated gzip stream surfaces as EOFError mid-iteration.
        raise TraceFormatError(path, 0, error) from error
    except (ValueError, KeyError, TypeError):
        # A bad row: re-parse slowly to attribute the file:line.
        return _read_jsonl_strict(path, record_type)


def _read_jsonl_strict(path: Path, record_type: Type[R]) -> list[R]:
    """Slow re-parse that pins the failure to a file:line."""
    loads = json.loads
    from_dict = record_type.from_dict
    records: list[R] = []
    with _open_text(path, "r") as handle:
        for number, line in enumerate(handle, start=1):
            if line.isspace():
                continue
            try:
                records.append(from_dict(loads(line)))
            except (ValueError, KeyError, TypeError) as error:
                raise TraceFormatError(path, number, error) from error
    return records


def _read_jsonl_lenient(path: Path, record_type: Type[R],
                        metrics: AnyRegistry) -> list[R]:
    """Per-line parse that drops and counts malformed rows."""
    loads = json.loads
    from_dict = record_type.from_dict
    records: list[R] = []
    skipped = metrics.counter("repro_trace_skipped_lines_total",
                              file=path.name)
    with _open_text(path, "r") as handle:
        try:
            for line in handle:
                if line.isspace():
                    continue
                try:
                    records.append(from_dict(loads(line)))
                except (ValueError, KeyError, TypeError):
                    skipped.inc()
        except EOFError:
            # Truncated gzip: salvage everything decoded so far and
            # count the cut-off as one skipped line.
            skipped.inc()
    return records


def _columnar_name(name: str) -> str:
    """``catalog.jsonl`` -> ``catalog.col``."""
    return name[:-len(".jsonl")] + ".col" if name.endswith(".jsonl") \
        else name + ".col"


def _resolve_trace(directory: Path, name: str,
                   trace_format: str = "auto") -> Path:
    """Find one trace part in a saved-workload directory.

    With the default ``trace_format="auto"`` the columnar variant
    (``name.col``) wins when present, then ``name``, then ``name.gz``.
    An explicit ``"columnar"`` or ``"jsonl"`` only accepts that format.
    """
    columnar = directory / _columnar_name(name)
    plain = directory / name
    compressed = directory / (name + ".gz")
    if trace_format == "columnar":
        candidates = [columnar]
    elif trace_format == "jsonl":
        candidates = [plain, compressed]
    else:
        candidates = [columnar, plain, compressed]
    for candidate in candidates:
        if candidate.exists():
            return candidate
    wanted = " or ".join(candidate.name for candidate in candidates)
    raise FileNotFoundError(f"{directory / name}: none of {wanted} found")


def read_trace(path: str | Path, record_type: Type[R],
               skip_bad_lines: bool = False,
               metrics: AnyRegistry = NOOP) -> list[R]:
    """Read one trace file, columnar or JSONL, detected by content.

    ``.col`` files dispatch to :func:`repro.traceio.read_columnar`
    (``skip_bad_lines`` does not apply to them -- a columnar file is
    validated structurally, not row by row); everything else goes
    through :func:`read_jsonl`.
    """
    from repro.traceio import is_columnar, read_columnar
    path = Path(path)
    if is_columnar(path):
        return read_columnar(path, record_type)
    return read_jsonl(path, record_type, skip_bad_lines=skip_bad_lines,
                      metrics=metrics)


def save_workload(workload: Workload, directory: str | Path,
                  compress: bool = False,
                  trace_format: str = "jsonl") -> Path:
    """Persist a workload as a directory of trace files + config.

    ``trace_format="jsonl"`` (default) writes the three JSONL traces;
    with ``compress=True`` they become ``*.jsonl.gz`` (the config stays
    plain JSON for greppability).  ``trace_format="columnar"`` writes
    memory-mappable ``*.col`` files instead (see
    :mod:`repro.traceio`); columnar files do not support ``compress``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if trace_format == "columnar":
        if compress:
            raise ValueError(
                "columnar traces do not support compress=True "
                "(the fixed-width blocks must stay memory-mappable)")
        from repro.traceio import write_columnar
        write_columnar(directory / _columnar_name(CATALOG_FILE),
                       list(workload.catalog), CatalogFile)
        write_columnar(directory / _columnar_name(USERS_FILE),
                       workload.users, User)
        write_columnar(directory / _columnar_name(REQUESTS_FILE),
                       workload.requests, RequestRecord)
    elif trace_format == "jsonl":
        suffix = ".gz" if compress else ""
        write_jsonl(directory / (CATALOG_FILE + suffix),
                    iter(workload.catalog))
        write_jsonl(directory / (USERS_FILE + suffix), workload.users)
        write_jsonl(directory / (REQUESTS_FILE + suffix),
                    workload.requests)
    else:
        raise ValueError(f"unknown trace_format {trace_format!r}")
    config = {"scale": workload.config.scale, "seed": workload.config.seed,
              "horizon": workload.config.horizon}
    (directory / CONFIG_FILE).write_text(json.dumps(config, indent=2))
    return directory


def load_workload(directory: str | Path,
                  trace_format: str = "auto") -> Workload:
    """Load a workload previously written by :func:`save_workload`.

    Detects per file which variant is present (columnar beats plain
    beats gzipped); ``trace_format="columnar"``/``"jsonl"`` restricts
    the search to that format.
    """
    directory = Path(directory)
    raw_config = json.loads((directory / CONFIG_FILE).read_text())
    config = WorkloadConfig(scale=raw_config["scale"],
                            seed=raw_config["seed"],
                            horizon=raw_config["horizon"])
    catalog = FileCatalog()
    for record in read_trace(
            _resolve_trace(directory, CATALOG_FILE, trace_format),
            CatalogFile):
        catalog.files[record.file_id] = record
    users = read_trace(_resolve_trace(directory, USERS_FILE, trace_format),
                       User)
    requests = read_trace(
        _resolve_trace(directory, REQUESTS_FILE, trace_format),
        RequestRecord)
    return Workload(config=config, catalog=catalog, users=users,
                    requests=requests)
