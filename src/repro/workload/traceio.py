"""Trace (de)serialisation: JSONL files per trace part.

A saved workload is a directory of three JSONL files mirroring the
paper's dataset layout (catalog + users + request trace); pre-download
and fetch traces produced by the simulators use the same helpers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Type, TypeVar

from repro.workload.catalog import FileCatalog
from repro.workload.generator import Workload, WorkloadConfig
from repro.workload.records import (
    CatalogFile,
    FetchRecord,
    PreDownloadRecord,
    RequestRecord,
    User,
    _TraceRecord,
)

R = TypeVar("R", bound=_TraceRecord)

CATALOG_FILE = "catalog.jsonl"
USERS_FILE = "users.jsonl"
REQUESTS_FILE = "requests.jsonl"
CONFIG_FILE = "config.json"


def write_jsonl(path: str | Path, records: Iterable[_TraceRecord]) -> int:
    """Write records as one JSON object per line; returns the row count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict()) + "\n")
            count += 1
    return count


def read_jsonl(path: str | Path, record_type: Type[R]) -> list[R]:
    """Read a JSONL trace file back into records of ``record_type``."""
    path = Path(path)
    records: list[R] = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(record_type.from_dict(json.loads(line)))
    return records


def save_workload(workload: Workload, directory: str | Path) -> Path:
    """Persist a workload as a directory of JSONL traces + config."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_jsonl(directory / CATALOG_FILE, iter(workload.catalog))
    write_jsonl(directory / USERS_FILE, workload.users)
    write_jsonl(directory / REQUESTS_FILE, workload.requests)
    config = {"scale": workload.config.scale, "seed": workload.config.seed,
              "horizon": workload.config.horizon}
    (directory / CONFIG_FILE).write_text(json.dumps(config, indent=2))
    return directory


def load_workload(directory: str | Path) -> Workload:
    """Load a workload previously written by :func:`save_workload`."""
    directory = Path(directory)
    raw_config = json.loads((directory / CONFIG_FILE).read_text())
    config = WorkloadConfig(scale=raw_config["scale"],
                            seed=raw_config["seed"],
                            horizon=raw_config["horizon"])
    catalog = FileCatalog()
    for record in read_jsonl(directory / CATALOG_FILE, CatalogFile):
        catalog.files[record.file_id] = record
    users = read_jsonl(directory / USERS_FILE, User)
    requests = read_jsonl(directory / REQUESTS_FILE, RequestRecord)
    return Workload(config=config, catalog=catalog, users=users,
                    requests=requests)
