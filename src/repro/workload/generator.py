"""End-to-end synthesis of one measurement week.

:class:`WorkloadGenerator` wires the catalog, user population, and
arrival process into a :class:`Workload`: the full request trace of a
synthetic week at a configurable scale.  ``scale=1.0`` corresponds to the
paper's real dimensions (563,517 files / ~4.08 M tasks / ~784 k users);
the default experiment scale is far smaller and everything downstream is
scale-free or explicitly rescaled.

The fetch-at-most-once effect (Gummadi et al., SOSP'03) is enforced
structurally: the requests of one file go to distinct users, which is
what flattens the popularity head and makes the SE model the better fit
(paper Figures 6-7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sim.clock import WEEK
from repro.sim.randomness import RngFactory
from repro.workload.arrivals import ArrivalProcess
from repro.workload.catalog import FileCatalog
from repro.workload.popularity import PopularityClass
from repro.workload.records import CatalogFile, RequestRecord, User
from repro.workload.users import UserPopulation

#: Real-week dimensions (paper section 3).
REAL_FILE_COUNT = 563_517
REAL_TASK_COUNT = 4_084_417
REAL_USER_COUNT = 783_944
TASKS_PER_USER = REAL_TASK_COUNT / REAL_USER_COUNT   # ~5.21


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of a synthetic week."""

    scale: float = 0.01
    seed: int = 20150222        # first day of the measurement week
    horizon: float = WEEK

    @property
    def file_count(self) -> int:
        return max(1, int(round(REAL_FILE_COUNT * self.scale)))

    @property
    def user_count(self) -> int:
        return max(1, int(round(REAL_USER_COUNT * self.scale)))


@dataclass
class Workload:
    """A complete synthetic week: catalog, users, and the request trace."""

    config: WorkloadConfig
    catalog: FileCatalog
    users: list[User]
    requests: list[RequestRecord]

    @property
    def horizon(self) -> float:
        return self.config.horizon

    def user_by_id(self) -> dict[str, User]:
        return {user.user_id: user for user in self.users}

    def file_of(self, request: RequestRecord) -> CatalogFile:
        return self.catalog[request.file_id]

    def request_class_shares(self) -> dict[PopularityClass, float]:
        """Observed request share per popularity class."""
        counts: dict[PopularityClass, int] = {}
        for request in self.requests:
            klass = self.catalog[request.file_id].popularity_class
            counts[klass] = counts.get(klass, 0) + 1
        total = max(len(self.requests), 1)
        return {klass: counts.get(klass, 0) / total
                for klass in PopularityClass}


class WorkloadGenerator:
    """Deterministic synthesis of a :class:`Workload` from a config."""

    def __init__(self, config: WorkloadConfig = WorkloadConfig(),
                 catalog: Optional[FileCatalog] = None,
                 population: Optional[UserPopulation] = None,
                 arrivals: Optional[ArrivalProcess] = None):
        self.config = config
        self.catalog = catalog or FileCatalog()
        self.population = population or UserPopulation()
        self.arrivals = arrivals or ArrivalProcess(horizon=config.horizon)

    def generate(self) -> Workload:
        rng_factory = RngFactory(self.config.seed)
        self.catalog.generate(self.config.file_count,
                              rng_factory.stream("catalog"))
        self.population.generate(self.config.user_count,
                                 rng_factory.stream("users"))
        requests = self._generate_requests(rng_factory)
        return Workload(config=self.config, catalog=self.catalog,
                        users=self.population.users, requests=requests)

    def _generate_requests(self,
                           rng_factory: RngFactory) -> list[RequestRecord]:
        return build_requests(self.catalog, self.population.users,
                              self.arrivals, rng_factory)


def build_requests(catalog: FileCatalog, users: list[User],
                   arrivals: ArrivalProcess, rng_factory: RngFactory,
                   task_prefix: str = "t") -> list[RequestRecord]:
    """Expand a catalog's weekly demands into a timed request trace.

    Shared by the single-week generator and the multi-week evolution:
    one request slot per (file, demand unit), arrival times drawn from
    the arrival process, users assigned fetch-at-most-once.
    """
    assign_rng = rng_factory.stream("request-assignment")
    time_rng = rng_factory.stream("request-times")

    # One slot per (file, demand unit), shuffled so arrival times are
    # independent of file identity.  Shuffling an int64 index array
    # produces the exact same permutation (and leaves the generator in
    # the exact same state) as shuffling the Python object list the
    # scalar version used, at a fraction of the cost.
    records = list(catalog)
    demands = np.fromiter((record.weekly_demand for record in records),
                          dtype=np.int64, count=len(records))
    slot_indices = np.repeat(np.arange(len(records)), demands)
    assign_rng.shuffle(slot_indices)
    times = arrivals.sample_times(len(slot_indices), time_rng)

    # Hoist the per-record and per-user attribute reads out of the slot
    # loop; both sides are immutable for its duration.
    record_info = [(record.file_id, record.file_type, record.size,
                    record.source_url, record.weekly_demand > 1)
                   for record in records]
    user_info = [(user.user_id, user.ip_address, user.reported_bandwidth)
                 for user in users]
    protocols = [record.protocol for record in records]

    picker = BufferedIndexPicker(len(users), assign_rng)
    pick_fresh = picker.pick
    pick_distinct = picker.pick_distinct
    used_users: dict[str, set[int]] = {}
    requests: list[RequestRecord] = []
    append = requests.append
    for index, (slot, when) in enumerate(zip(slot_indices.tolist(),
                                             times.tolist())):
        file_id, file_type, size, source_url, shared = record_info[slot]
        if shared:
            seen = used_users.setdefault(file_id, set())
            user_id, ip_address, bandwidth = user_info[
                pick_distinct(seen)]
        else:
            # Single-demand file: any draw is distinct; skip the set.
            user_id, ip_address, bandwidth = user_info[pick_fresh()]
        append(RequestRecord(
            task_id=f"{task_prefix}{index:08d}",
            user_id=user_id,
            ip_address=ip_address,
            access_bandwidth=bandwidth,
            request_time=when,
            file_id=file_id,
            file_type=file_type,
            file_size=size,
            source_url=source_url,
            protocol=protocols[slot],
        ))
    return requests


#: Retries before fetch-at-most-once falls back to a repeat requester.
PICK_RETRIES = 8


def pick_distinct_index(count: int, seen: set[int],
                        rng: np.random.Generator,
                        retries: int = PICK_RETRIES) -> int:
    """Draw an index not in ``seen`` (fetch at most once per file).

    Falls back to a repeat draw only when the population is effectively
    smaller than the file's demand.  Shared by the sequential generator
    and the sharded per-file generator (``repro.scale.shardgen``), so
    both enforce the same fetch-at-most-once behaviour with the same
    number of RNG consumptions per slot.
    """
    for _attempt in range(retries):
        index = int(rng.integers(count))
        if index not in seen:
            seen.add(index)
            return index
    return int(rng.integers(count))


class BufferedIndexPicker:
    """Fetch-at-most-once index picker over a prefetched draw buffer.

    ``n`` scalar ``rng.integers(count)`` calls return the same values
    (and leave the generator in the same state) as one
    ``rng.integers(count, size=n)`` call, so prefetching a chunk and
    consuming it sequentially is bit-identical to the scalar
    :func:`pick_distinct_index` loop regardless of how many retries each
    slot burns.  The final chunk may overdraw the stream past where the
    scalar code would have stopped; that is safe because the assignment
    streams are never read again after request synthesis.
    """

    __slots__ = ("_rng", "_count", "_chunk", "_buffer", "_position")

    def __init__(self, count: int, rng: np.random.Generator,
                 chunk: int = 8192):
        if count <= 0:
            raise ValueError("count must be positive")
        self._rng = rng
        self._count = count
        self._chunk = chunk
        self._buffer: list[int] = []
        self._position = 0

    def pick(self) -> int:
        """The next raw index draw (uniform on ``[0, count)``)."""
        position = self._position
        buffer = self._buffer
        if position >= len(buffer):
            self._buffer = buffer = self._rng.integers(
                self._count, size=self._chunk).tolist()
            position = 0
        self._position = position + 1
        return buffer[position]

    def pick_distinct(self, seen: set[int],
                      retries: int = PICK_RETRIES) -> int:
        """Draw an index not in ``seen``; same semantics (and the same
        stream consumption) as :func:`pick_distinct_index`.

        The rejection loop runs directly over the prefetched batch --
        one local list walk instead of up to ``retries + 1``
        :meth:`pick` calls -- refilling mid-walk only when the batch
        runs dry.  Consumption order is identical, so the stream stays
        bit-compatible with the scalar loop.
        """
        buffer = self._buffer
        position = self._position
        length = len(buffer)
        refill = self._rng.integers
        for _attempt in range(retries):
            if position >= length:
                self._buffer = buffer = refill(
                    self._count, size=self._chunk).tolist()
                length = len(buffer)
                position = 0
            index = buffer[position]
            position += 1
            if index not in seen:
                self._position = position
                seen.add(index)
                return index
        if position >= length:
            self._buffer = buffer = refill(
                self._count, size=self._chunk).tolist()
            position = 0
        self._position = position + 1
        return buffer[position]
