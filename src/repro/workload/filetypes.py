"""File types and the type mix of offline-downloading requests.

Paper section 3: 75% of requests are for videos, 15% for software
packages, and the small-file quartile is "demo videos, pictures,
documents, and small software packages".  Type is sampled conditionally
on the file's size class so both the global mix and the small-file
composition match.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class FileType(enum.Enum):
    """Coarse content type recorded in the workload trace."""

    VIDEO = "video"
    SOFTWARE = "software"
    DOCUMENT = "document"
    IMAGE = "image"
    ARCHIVE = "archive"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_SMALL_MIX: dict[FileType, float] = {
    FileType.VIDEO: 0.33,      # demo videos
    FileType.SOFTWARE: 0.27,   # small packages
    FileType.DOCUMENT: 0.20,
    FileType.IMAGE: 0.15,
    FileType.ARCHIVE: 0.05,
}

_LARGE_MIX: dict[FileType, float] = {
    FileType.VIDEO: 0.89,      # HD movies and episodes dominate
    FileType.SOFTWARE: 0.11 * 0.91,
    FileType.ARCHIVE: 0.11 * 0.09,
    FileType.DOCUMENT: 0.0,
    FileType.IMAGE: 0.0,
}
# With 25% small files: video = .25*.33 + .75*.89 = 0.750, software =
# .25*.27 + .75*.100 = 0.143 -- the paper's 75% / 15% split.


@dataclass(frozen=True)
class FileTypeModel:
    """Samples a file's type given whether it is in the small-size class."""

    small_mix: dict[FileType, float] = field(
        default_factory=lambda: dict(_SMALL_MIX))
    large_mix: dict[FileType, float] = field(
        default_factory=lambda: dict(_LARGE_MIX))

    def __post_init__(self):
        tables = {}
        for name, mix in (("small_mix", self.small_mix),
                          ("large_mix", self.large_mix)):
            total = sum(mix.values())
            if abs(total - 1.0) > 1e-9:
                raise ValueError(f"{name} sums to {total}, expected 1")
            types = list(mix.keys())
            weights = np.array([mix[t] for t in types])
            probs = weights / weights.sum()
            cdf = probs.cumsum()
            cdf /= cdf[-1]
            tables[name == "small_mix"] = (types, cdf)
        # Frozen dataclass with dict fields (unhashable), so the
        # inverse-CDF tables live on the instance rather than in an
        # lru_cache.  The CDF mirrors Generator.choice's internal
        # construction, keeping the stream bit-identical.
        object.__setattr__(self, "_tables", tables)

    def sample(self, is_small: bool, rng: np.random.Generator) -> FileType:
        types, cdf = self._tables[is_small]
        index = cdf.searchsorted(rng.random(), side="right")
        return types[min(index, len(types) - 1)]
