"""Multi-week workload evolution.

The measured week is one frame of a running film: the cloud's storage
pool and content database carry state from every earlier week, which is
why 89% of requests hit the cache.  This module generates *successive*
weeks -- demands decay, some files go cold, new content arrives -- so a
persistent :class:`repro.cloud.XuanfengCloud` instance can be driven
across them and the cache-warming dynamics observed directly
(hit ratios rise, failure ratios fall, week over week).

Evolution model per week:

* every existing file's demand is scaled by a lognormal decay factor
  (median ``demand_decay``) -- most content cools, a few items resurge;
* files whose demand decays to zero stop being requested (they stay in
  the catalog: dead links are still in the cache);
* ``churn`` * (original file count) brand-new files enter with demands
  drawn from the popularity model -- the novelty stream;
* the user population grows by ``user_growth`` per week.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace
from typing import Iterator, Optional

import numpy as np

from repro.obs.registry import AnyRegistry, NOOP
from repro.sim.randomness import RngFactory
from repro.workload.arrivals import ArrivalProcess
from repro.workload.catalog import FileCatalog
from repro.workload.generator import (
    Workload,
    WorkloadConfig,
    WorkloadGenerator,
    build_requests,
)
from repro.workload.users import UserPopulation


@dataclass(frozen=True)
class EvolutionConfig:
    """Knobs of the week-over-week dynamics."""

    churn: float = 0.20           # new files per week / original count
    #: Median weekly demand multiplier.  With decay_sigma=0.8 the *mean*
    #: multiplier is 0.58 * exp(0.32) ~= 0.80, so combined with 20%
    #: churn the total request volume stays roughly stationary.
    demand_decay: float = 0.58
    decay_sigma: float = 0.8      # lognormal spread of the multiplier
    user_growth: float = 0.03     # new users per week / original count

    def __post_init__(self):
        if not 0.0 <= self.churn <= 1.0:
            raise ValueError("churn must be in [0, 1]")
        if self.demand_decay <= 0:
            raise ValueError("demand_decay must be positive")
        if self.user_growth < 0:
            raise ValueError("user_growth must be non-negative")


class MultiWeekGenerator:
    """Generates week 1 like :class:`WorkloadGenerator`, then evolves."""

    def __init__(self, config: WorkloadConfig = WorkloadConfig(),
                 evolution: EvolutionConfig = EvolutionConfig(),
                 arrivals: Optional[ArrivalProcess] = None):
        self.config = config
        self.evolution = evolution
        self.arrivals = arrivals or ArrivalProcess(
            horizon=config.horizon)
        self._rng_factory = RngFactory(config.seed)
        self._catalog: Optional[FileCatalog] = None
        self._population: Optional[UserPopulation] = None
        self._week = 0

    def next_week(self) -> Workload:
        """Produce the next week's workload.

        Each returned :class:`Workload` carries a *snapshot* of the
        catalog and user list, so earlier weeks stay valid after later
        evolution mutates the live state.
        """
        if self._catalog is None:
            generator = WorkloadGenerator(self.config,
                                          arrivals=self.arrivals)
            workload = generator.generate()
            self._catalog = generator.catalog
            self._population = generator.population
            self._week = 1
            return self._snapshot(workload.requests)
        self._week += 1
        return self._evolve_week()

    def _snapshot(self, requests) -> Workload:
        assert self._catalog is not None and self._population is not None
        catalog = FileCatalog(
            size_model=self._catalog.size_model,
            type_model=self._catalog.type_model,
            popularity_model=self._catalog.popularity_model,
            files={file_id: dataclass_replace(record)
                   for file_id, record in self._catalog.files.items()})
        return Workload(config=self.config, catalog=catalog,
                        users=list(self._population.users),
                        requests=requests)

    def weeks(self, count: int) -> Iterator[Workload]:
        """Yield ``count`` consecutive weeks."""
        if count <= 0:
            raise ValueError("count must be positive")
        for _ in range(count):
            yield self.next_week()

    # -- evolution ----------------------------------------------------------------

    def _evolve_week(self) -> Workload:
        assert self._catalog is not None
        assert self._population is not None
        label = f"week-{self._week}"
        decay_rng = self._rng_factory.stream(f"{label}-decay")
        novelty_rng = self._rng_factory.stream(f"{label}-novelty")
        growth_rng = self._rng_factory.stream(f"{label}-growth")

        # Cool existing demand.
        evolution = self.evolution
        for record in self._catalog:
            if record.weekly_demand <= 0:
                continue
            factor = evolution.demand_decay * float(
                np.exp(decay_rng.normal(0.0, evolution.decay_sigma)))
            record.weekly_demand = int(
                np.floor(record.weekly_demand * factor +
                         decay_rng.random()))

        # Novelty stream: brand-new files with fresh demands.
        new_files = max(1, int(round(self.config.file_count *
                                     evolution.churn)))
        self._catalog.generate(new_files, novelty_rng)

        # Population growth.
        new_users = int(round(self.config.user_count *
                              evolution.user_growth))
        if new_users:
            self._population.generate(new_users, growth_rng)

        requests = build_requests(
            self._catalog, self._population.users, self.arrivals,
            self._rng_factory.fork(label),
            task_prefix=f"w{self._week}t")
        return self._snapshot(requests)


@dataclass
class WeekStats:
    """Cache/failure trajectory entry for one simulated week."""

    week: int
    requests: int
    cache_hit_ratio: float
    request_failure_ratio: float
    pool_files: int


def run_weeks(cloud, generator: MultiWeekGenerator, count: int,
              metrics: AnyRegistry = NOOP) -> list[WeekStats]:
    """Drive one persistent cloud instance across ``count`` weeks.

    The pool and database persist, so each week starts with everything
    the previous weeks accumulated -- the mechanism behind the paper's
    89% cache-hit ratio.  With a live ``metrics`` registry the per-week
    trajectory is also recorded as ``repro_multiweek_*`` gauges labelled
    by week, so the cache-warming curve is visible in metric exports.
    """
    stats: list[WeekStats] = []
    seen_hits, seen_lookups = 0, 0
    for week, workload in enumerate(generator.weeks(count), start=1):
        result = cloud.run(workload)
        # The pool's counters are cumulative across runs; report each
        # week's own hit ratio from the deltas.
        pool_stats = cloud.pool._cache.stats
        week_hits = pool_stats.hits - seen_hits
        week_lookups = pool_stats.lookups - seen_lookups
        seen_hits, seen_lookups = pool_stats.hits, pool_stats.lookups
        entry = WeekStats(
            week=week,
            requests=len(workload.requests),
            cache_hit_ratio=week_hits / week_lookups
            if week_lookups else 0.0,
            request_failure_ratio=result.request_failure_ratio,
            pool_files=len(cloud.pool))
        metrics.gauge("repro_multiweek_cache_hit_ratio",
                      week=week).set(entry.cache_hit_ratio)
        metrics.gauge("repro_multiweek_request_failure_ratio",
                      week=week).set(entry.request_failure_ratio)
        metrics.gauge("repro_multiweek_pool_files",
                      week=week).set(entry.pool_files)
        stats.append(entry)
    return stats
