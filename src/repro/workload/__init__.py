"""Synthetic Xuanfeng workload: the substitute for the proprietary trace.

The real dataset (one week of complete Xuanfeng logs: 4,084,417 tasks,
783,944 users, 563,517 unique files) is proprietary.  This package
synthesises a statistically equivalent workload at a configurable scale:
every published marginal of section 3 -- file-size CDF, type mix,
protocol mix, SE/Zipf popularity, popularity-class shares -- is a
calibration target, and the joint structure the paper's analyses rely on
(popularity drives swarm health drives failures) is built in.
"""

from repro.workload.filetypes import FileType, FileTypeModel
from repro.workload.sizes import FileSizeModel
from repro.workload.popularity import PopularityClass, PopularityModel
from repro.workload.records import (
    CatalogFile,
    FetchRecord,
    PreDownloadRecord,
    RequestRecord,
    User,
)
from repro.workload.catalog import FileCatalog
from repro.workload.users import UserPopulation
from repro.workload.arrivals import ArrivalProcess
from repro.workload.generator import Workload, WorkloadConfig, \
    WorkloadGenerator
from repro.workload.sampler import sample_benchmark_requests
from repro.workload.multiweek import (
    EvolutionConfig,
    MultiWeekGenerator,
    WeekStats,
    run_weeks,
)
from repro.workload.traceio import (
    read_jsonl,
    write_jsonl,
    load_workload,
    save_workload,
)

__all__ = [
    "FileType",
    "FileTypeModel",
    "FileSizeModel",
    "PopularityClass",
    "PopularityModel",
    "CatalogFile",
    "User",
    "RequestRecord",
    "PreDownloadRecord",
    "FetchRecord",
    "FileCatalog",
    "UserPopulation",
    "ArrivalProcess",
    "Workload",
    "WorkloadConfig",
    "WorkloadGenerator",
    "sample_benchmark_requests",
    "MultiWeekGenerator",
    "EvolutionConfig",
    "WeekStats",
    "run_weeks",
    "read_jsonl",
    "write_jsonl",
    "load_workload",
    "save_workload",
]
