"""The synthetic user population.

Users carry the attributes the traces key on: an IP address (hence a home
ISP), a ground-truth access bandwidth, and whether they reported that
bandwidth to the service ("access bandwidth (if available)", paper
section 3; footnote 2 notes unreported bandwidths were approximated from
peak fetch speeds).

ISP shares are those of :mod:`repro.netsim.isp`: ~9.6% of users sit
outside the four majors, reproducing the ISP-barrier share of impeded
fetches, and the bandwidth model puts ~10-11% of lines below 1 Mbps,
reproducing the low-access-bandwidth share.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netsim.ip import IpAllocator
from repro.netsim.isp import IspRegistry, default_registry
from repro.netsim.link import AccessBandwidthModel
from repro.workload.records import User


class UserPopulation:
    """Generates and holds the user universe of one synthetic week."""

    def __init__(self, registry: Optional[IspRegistry] = None,
                 bandwidth_model: Optional[AccessBandwidthModel] = None,
                 report_probability: float = 0.7):
        if not 0.0 <= report_probability <= 1.0:
            raise ValueError("report_probability must be a probability")
        self.registry = registry or default_registry()
        self.bandwidth_model = bandwidth_model or AccessBandwidthModel()
        self.report_probability = report_probability
        self._allocator = IpAllocator(self.registry)
        self.users: list[User] = []

    def generate(self, count: int, rng: np.random.Generator) -> list[User]:
        """Create ``count`` users (appending to any existing population)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        start = len(self.users)
        sample_isp = self.registry.sample_isp
        allocate = self._allocator.allocate
        sample_downstream = self.bandwidth_model.sample_downstream
        random = rng.random
        report_probability = self.report_probability
        append = self.users.append
        for index in range(start, start + count):
            isp = sample_isp(rng)
            append(User(
                user_id=f"u{index:08d}",
                ip_address=allocate(isp),
                isp=isp,
                access_bandwidth=sample_downstream(rng),
                reports_bandwidth=bool(random() < report_probability),
            ))
        return self.users

    def __len__(self) -> int:
        return len(self.users)

    def sample_user(self, rng: np.random.Generator) -> User:
        if not self.users:
            raise RuntimeError("population is empty; call generate() first")
        return self.users[int(rng.integers(len(self.users)))]
