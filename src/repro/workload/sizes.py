"""The requested-file size distribution (paper Figure 5).

Calibration targets: minimum 4 B, median 115 MB, mean 390 MB, maximum
4 GB, and "up to 25% of requested files are smaller than 8 MB".

Model: a two-component mixture.

* *Small class* (25%): log-uniform on [4 B, 8 MB] -- demo videos,
  pictures, documents, small packages span six orders of magnitude.
* *Large class* (75%): lognormal truncated to [8 MB, 4 GB].  Choosing
  median 234 MB and sigma 1.65 puts the overall median at 115 MB (the
  overall median falls at the large class's 33rd percentile) and the
  overall mean at ~386 MB after the 4 GB truncation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FileSizeModel:
    """Sampler for requested-file sizes in bytes."""

    min_size: float = 4.0
    small_threshold: float = 8e6
    max_size: float = 4e9
    small_share: float = 0.25
    large_median: float = 234e6
    large_sigma: float = 1.65

    def __post_init__(self):
        if not (0 < self.min_size < self.small_threshold < self.max_size):
            raise ValueError("size thresholds must be ordered")
        if not 0.0 <= self.small_share <= 1.0:
            raise ValueError("small_share must be a probability")
        # Frozen dataclass: stash the log bounds once instead of calling
        # np.log twice per small-class draw.
        object.__setattr__(self, "_log_min", float(np.log(self.min_size)))
        object.__setattr__(self, "_log_small",
                           float(np.log(self.small_threshold)))

    def sample(self, rng: np.random.Generator) -> tuple[float, bool]:
        """Draw one file size; returns ``(bytes, is_small_class)``."""
        if rng.random() < self.small_share:
            log_size = rng.uniform(self._log_min, self._log_small)
            return float(np.exp(log_size)), True
        # Truncated lognormal via rejection; acceptance is ~97% so the
        # loop is effectively bounded.
        while True:
            size = self.large_median * float(
                np.exp(rng.normal(0.0, self.large_sigma)))
            if self.small_threshold <= size <= self.max_size:
                return size, False

    def sample_many(self, count: int,
                    rng: np.random.Generator) -> np.ndarray:
        """Vector of ``count`` sizes (class flags discarded).

        Kept as a scalar loop on purpose: the mixture interleaves a
        variable number of draws per item (rejection sampling in the
        large class), so batching would change the stream and break the
        bit-identity contract pinned by the golden digests.
        """
        return np.array([self.sample(rng)[0] for _ in range(count)])
