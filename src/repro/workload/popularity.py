"""File popularity: classes, weekly-demand sampling, and rank curves.

The paper defines three popularity classes by weekly download count
(section 4.1): unpopular ``[0, 7)``, popular ``[7, 84]``, highly popular
``(84, inf)``, with the skew that drives everything else in the study:

* 93.2% of files are unpopular but draw only 36% of requests;
* 0.84% of files are highly popular yet draw 39% of requests.

We sample each file's weekly demand from a three-component mixture whose
class shares and per-class means reproduce those four numbers exactly in
expectation (mean demand 7.25 requests/file, matching 4.08 M tasks over
563 k files):

* unpopular: truncated geometric on [1, 6], mean ~2.8;
* popular: truncated discrete power law on [7, 84], mean ~30;
* highly popular: discretised Pareto tail from 85, mean ~337.

The resulting rank-popularity curve is Zipf-like with the SE (stretched
exponential) model fitting better at the head -- the paper's Figure 6/7
comparison -- because the bounded Pareto head is flatter than a pure
power law (the "fetch-at-most-once" effect).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache

import numpy as np


class PopularityClass(enum.Enum):
    """Weekly-demand class of a file."""

    UNPOPULAR = "unpopular"
    POPULAR = "popular"
    HIGHLY_POPULAR = "highly_popular"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Class thresholds in downloads per week (paper section 4.1).
UNPOPULAR_BELOW = 7
HIGHLY_POPULAR_ABOVE = 84


def classify(weekly_demand: float) -> PopularityClass:
    """Classify a weekly download count per the paper's definitions."""
    if weekly_demand < UNPOPULAR_BELOW:
        return PopularityClass.UNPOPULAR
    if weekly_demand <= HIGHLY_POPULAR_ABOVE:
        return PopularityClass.POPULAR
    return PopularityClass.HIGHLY_POPULAR


@lru_cache(maxsize=None)
def _geometric_table(p: float) -> tuple[np.ndarray, np.ndarray]:
    """(support, normalised CDF) of the truncated geometric on [1, 6].

    The CDF is built exactly the way ``Generator.choice`` builds it
    internally (cumsum of the normalised weights, renormalised by the
    last entry), so a single ``searchsorted`` over one uniform draw
    consumes the RNG stream identically to the original per-call
    ``rng.choice``.
    """
    weights = np.array([(1 - p) ** (k - 1)
                        for k in range(1, UNPOPULAR_BELOW)])
    probs = weights / weights.sum()
    cdf = probs.cumsum()
    cdf /= cdf[-1]
    return np.arange(1, UNPOPULAR_BELOW), cdf


@lru_cache(maxsize=None)
def _powerlaw_table(exponent: float) -> tuple[np.ndarray, np.ndarray]:
    """(support, normalised CDF) of the truncated power law on [7, 84]."""
    support = np.arange(UNPOPULAR_BELOW, HIGHLY_POPULAR_ABOVE + 1)
    weights = support.astype(float) ** (-exponent)
    probs = weights / weights.sum()
    cdf = probs.cumsum()
    cdf /= cdf[-1]
    return support, cdf


@dataclass(frozen=True)
class PopularityModel:
    """Sampler of per-file weekly demand."""

    unpopular_file_share: float = 0.932
    highly_popular_file_share: float = 0.0084
    #: Truncated-geometric success probability; gives mean ~2.80 on [1,6],
    #: so unpopular files carry 0.932*2.80/7.25 = 36% of requests.
    unpopular_geom_p: float = 0.22
    #: Power-law exponent of the popular class on [7, 84]; mean ~30.3, so
    #: popular files carry ~25% of requests.
    popular_exponent: float = 1.0
    #: Lognormal tail of the highly popular class, truncated to
    #: [85, max_weekly_demand].  Median 180 / sigma 1.0 give a truncated
    #: mean ~336 (carrying ~39% of requests) with far less small-sample
    #: variance than the equivalent Pareto tail, and a flatter head --
    #: the fetch-at-most-once shape that favours the SE fit (Figure 7).
    highly_popular_median: float = 158.0
    highly_popular_sigma: float = 1.0
    #: Tail cap keeps a single file from dominating a small-scale
    #: synthetic week (the real top-file share is a fraction of a percent).
    max_weekly_demand: int = 20000

    @property
    def popular_file_share(self) -> float:
        return 1.0 - self.unpopular_file_share - \
            self.highly_popular_file_share

    def __post_init__(self):
        if self.popular_file_share <= 1e-9:
            raise ValueError("class shares leave no popular mass")
        if not 0 < self.unpopular_geom_p < 1:
            raise ValueError("unpopular_geom_p must be in (0, 1)")
        if self.highly_popular_median <= 0 or self.highly_popular_sigma <= 0:
            raise ValueError("highly popular tail parameters must be "
                             "positive")

    # -- class-level sampling -------------------------------------------------

    def sample_class(self, rng: np.random.Generator) -> PopularityClass:
        draw = rng.random()
        if draw < self.unpopular_file_share:
            return PopularityClass.UNPOPULAR
        if draw < self.unpopular_file_share + self.popular_file_share:
            return PopularityClass.POPULAR
        return PopularityClass.HIGHLY_POPULAR

    def sample_weekly_demand(self, rng: np.random.Generator,
                             klass: PopularityClass | None = None) -> int:
        """Draw one file's weekly demand (>= 1)."""
        klass = klass or self.sample_class(rng)
        if klass is PopularityClass.UNPOPULAR:
            return self._sample_truncated_geometric(rng)
        if klass is PopularityClass.POPULAR:
            return self._sample_truncated_powerlaw(rng)
        return self._sample_highly_popular(rng)

    def _sample_truncated_geometric(self, rng: np.random.Generator) -> int:
        support, cdf = _geometric_table(self.unpopular_geom_p)
        index = cdf.searchsorted(rng.random(), side="right")
        return int(support[min(index, len(support) - 1)])

    def _sample_truncated_powerlaw(self, rng: np.random.Generator) -> int:
        support, cdf = _powerlaw_table(self.popular_exponent)
        index = cdf.searchsorted(rng.random(), side="right")
        return int(support[min(index, len(support) - 1)])

    def _sample_highly_popular(self, rng: np.random.Generator) -> int:
        lo = HIGHLY_POPULAR_ABOVE + 1
        while True:
            draw = self.highly_popular_median * float(
                np.exp(rng.normal(0.0, self.highly_popular_sigma)))
            if lo <= draw <= self.max_weekly_demand:
                return int(np.floor(draw))

    # -- expectations (for tests and calibration) ------------------------------

    def class_mean_demands(self) -> dict[PopularityClass, float]:
        """Analytic mean weekly demand per class."""
        from scipy.stats import norm

        p = self.unpopular_geom_p
        ks = np.arange(1, UNPOPULAR_BELOW)
        wu = (1 - p) ** (ks - 1)
        mean_u = float((ks * wu).sum() / wu.sum())

        support = np.arange(UNPOPULAR_BELOW, HIGHLY_POPULAR_ABOVE + 1)
        wp = support.astype(float) ** (-self.popular_exponent)
        mean_p = float((support * wp).sum() / wp.sum())

        # Truncated-lognormal mean on [lo, hi]; the -0.5 accounts for the
        # floor() discretisation in the sampler.
        med, sigma = self.highly_popular_median, self.highly_popular_sigma
        lo, hi = HIGHLY_POPULAR_ABOVE + 1, self.max_weekly_demand
        a, b = np.log(lo / med) / sigma, np.log(hi / med) / sigma
        mass = norm.cdf(b) - norm.cdf(a)
        mean_h = float(med * np.exp(sigma ** 2 / 2) *
                       (norm.cdf(b - sigma) - norm.cdf(a - sigma)) /
                       mass) - 0.5

        return {PopularityClass.UNPOPULAR: mean_u,
                PopularityClass.POPULAR: mean_p,
                PopularityClass.HIGHLY_POPULAR: mean_h}

    def expected_mean_demand(self) -> float:
        """Analytic mean weekly demand per file, ~7.25 at defaults."""
        means = self.class_mean_demands()
        return (self.unpopular_file_share *
                means[PopularityClass.UNPOPULAR] +
                self.popular_file_share * means[PopularityClass.POPULAR] +
                self.highly_popular_file_share *
                means[PopularityClass.HIGHLY_POPULAR])

    def expected_request_shares(self) -> dict[PopularityClass, float]:
        """Analytic share of requests per class, ~(0.36, 0.25, 0.39)."""
        means = self.class_mean_demands()
        shares = {PopularityClass.UNPOPULAR: self.unpopular_file_share,
                  PopularityClass.POPULAR: self.popular_file_share,
                  PopularityClass.HIGHLY_POPULAR:
                      self.highly_popular_file_share}
        total = self.expected_mean_demand()
        return {klass: shares[klass] * means[klass] / total
                for klass in PopularityClass}


def rank_popularity_curve(demands: np.ndarray) -> tuple[np.ndarray,
                                                        np.ndarray]:
    """Sorted (rank, popularity) arrays for Figure 6/7 style fitting."""
    sorted_demands = np.sort(np.asarray(demands))[::-1]
    ranks = np.arange(1, len(sorted_demands) + 1)
    return ranks, sorted_demands
