"""Unbiased benchmark sampling (paper section 5.1).

The smart-AP benchmarks replay "1000 real offline downloading requests
issued by Unicom users" sampled from the workload trace; each selected
record must carry the user's access-bandwidth information (so the replay
can throttle the AP's line to match), and user ID / IP / request time are
ignored during replay.
"""

from __future__ import annotations

import numpy as np

from repro.netsim.isp import ISP
from repro.workload.generator import Workload
from repro.workload.records import RequestRecord


def sample_benchmark_requests(workload: Workload, count: int = 1000,
                              isp: ISP = ISP.UNICOM,
                              rng: np.random.Generator | None = None,
                              seed: int = 20150301) -> list[RequestRecord]:
    """Randomly sample ``count`` replayable requests from ``isp`` users.

    Only requests with reported access bandwidth qualify (the replay
    needs it).  Sampling is without replacement when the eligible pool is
    large enough, mirroring the paper's unbiased sample.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if rng is None:
        rng = np.random.default_rng(seed)
    users = workload.user_by_id()
    eligible = [request for request in workload.requests
                if request.access_bandwidth is not None
                and users[request.user_id].isp is isp]
    if not eligible:
        raise ValueError(f"workload has no replayable requests from {isp}")
    if len(eligible) >= count:
        indices = rng.choice(len(eligible), size=count, replace=False)
    else:
        indices = rng.choice(len(eligible), size=count, replace=True)
    return [eligible[int(index)] for index in sorted(indices)]
