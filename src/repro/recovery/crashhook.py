"""Test-only deterministic crash hook for durable-map workers.

Exercising the recovery paths hermetically needs a way to make a
*specific* worker die on a *specific* attempt -- and never again -- so a
test (or the CI kill-resume job) can assert that the requeue/resume
machinery reproduces the uninterrupted result bit-for-bit.  Mirroring
``repro.faults``' determinism contract, the gate is pure data: the
``REPRO_RECOVERY_CRASH`` environment variable names checkpoint keys,
attempt numbers, and a crash mode, and the hook fires iff the worker's
``(key, attempt)`` matches -- no randomness, no shared state, and
inherited unchanged by spawn-context worker processes.

Syntax (comma-separated hooks)::

    REPRO_RECOVERY_CRASH="<key>:<attempt>[:<mode>][,...]"

    REPRO_RECOVERY_CRASH="shard-0003:1:kill"    # SIGKILL shard 3, try 1
    REPRO_RECOVERY_CRASH="shard-0001:1,shard-0002:2:exit"

Modes:

``kill``  (default) ``SIGKILL`` the worker process -- surfaces in the
          parent as ``BrokenProcessPool``, the exact production failure
          a preempted or OOM-killed worker produces;
``exit``  ``os._exit(3)`` -- an abrupt exit that also breaks the pool;
``hang``  sleep for an hour -- exercises the per-shard watchdog timeout;
``raise`` raise ``RuntimeError`` -- an ordinary worker exception (which
          the executor deliberately does *not* retry).
"""

from __future__ import annotations

import os
import signal
import time
from typing import Optional

ENV_VAR = "REPRO_RECOVERY_CRASH"

MODES = ("kill", "exit", "hang", "raise")


def parse_hooks(raw: str) -> dict[tuple[str, int], str]:
    """Parse the env-var syntax into ``{(key, attempt): mode}``."""
    hooks: dict[tuple[str, int], str] = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        if len(fields) == 2:
            key, attempt, mode = fields[0], fields[1], "kill"
        elif len(fields) == 3:
            key, attempt, mode = fields
        else:
            raise ValueError(
                f"{ENV_VAR}: bad hook {part!r} "
                "(want key:attempt[:mode])")
        if mode not in MODES:
            raise ValueError(f"{ENV_VAR}: unknown mode {mode!r} "
                             f"(want one of {MODES})")
        hooks[(key, int(attempt))] = mode
    return hooks


def maybe_crash(key: str, attempt: int,
                environ: Optional[dict] = None) -> None:
    """Fire the configured crash for ``(key, attempt)``, if any.

    Called by the durable-map worker wrapper at the start of every
    out-of-process attempt; a no-op unless :data:`ENV_VAR` is set and
    names this exact key and attempt.
    """
    raw = (environ if environ is not None else os.environ).get(ENV_VAR)
    if not raw:
        return
    mode = parse_hooks(raw).get((key, attempt))
    if mode is None:
        return
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "exit":
        os._exit(3)
    elif mode == "hang":
        time.sleep(3600.0)
    elif mode == "raise":
        raise RuntimeError(
            f"crash hook: injected failure for {key} attempt {attempt}")
