"""repro.recovery -- durable, resumable, worker-failure-tolerant runs.

The paper's thesis is that long downloads fail midway and the cure is
checkpointed, delegatable transfers; this subsystem applies the same
discipline to the harness itself:

* :mod:`~repro.recovery.atomic` -- the one shared tmp+fsync+rename
  writer every emitted artifact goes through;
* :mod:`~repro.recovery.rundir` -- run directories: an atomically
  written manifest (plan identity, seeds, code digest) plus per-item
  result checkpoints (pickle + SHA-256), where a digest mismatch means
  *recompute*, never *merge*;
* :mod:`~repro.recovery.durable` -- :func:`durable_map`, the
  failure-tolerant process-pool map under ``repro.scale``: crashed
  workers (``BrokenProcessPool``) and watchdog-expired hangs requeue
  with a bounded attempt budget, SIGINT/SIGTERM checkpoint and raise
  :class:`RunInterrupted`, and ``--resume`` recomputes only what is
  missing or corrupt -- producing output bit-identical to an
  uninterrupted run (the per-entity RNG-fork determinism makes this
  provable, and tests prove it);
* :mod:`~repro.recovery.crashhook` -- the env-var-gated deterministic
  crash/hang injector (``REPRO_RECOVERY_CRASH``) that lets tests and
  the CI kill-resume job exercise all of the above hermetically.
"""

from repro.recovery.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    sha256_bytes,
    sha256_file,
)
from repro.recovery.durable import (
    DurableOutcome,
    RecoveryConfig,
    RunInterrupted,
    ShardLostError,
    durable_map,
    worker_identity,
)
from repro.recovery.rundir import (
    CorruptCheckpoint,
    RunDir,
    RunDirError,
    package_code_digest,
)

__all__ = [
    "CorruptCheckpoint",
    "DurableOutcome",
    "RecoveryConfig",
    "RunDir",
    "RunDirError",
    "RunInterrupted",
    "ShardLostError",
    "atomic_write_bytes",
    "atomic_write_text",
    "durable_map",
    "package_code_digest",
    "sha256_bytes",
    "sha256_file",
    "worker_identity",
]
