"""Durable, worker-failure-tolerant map over picklable work items.

:func:`durable_map` is the recovery-aware core under
``repro.scale.executor`` (and the AP/experiments fan-outs): it maps a
module-level worker over keyed payloads, inline or on a spawn-context
process pool, and survives exactly the failures that kill a plain
``ProcessPoolExecutor`` run:

* **a crashed worker** (SIGKILL, OOM, preemption) surfaces as
  ``BrokenProcessPool`` -- instead of aborting, the pool is rebuilt and
  the unfinished items are requeued with a bounded per-item attempt
  budget; only items actually observed running are charged an attempt;
* **a hung worker** trips the per-item watchdog (``shard_timeout``):
  the stuck pool's workers are killed, which funnels into the same
  requeue path;
* **SIGINT/SIGTERM** checkpoint state and raise :class:`RunInterrupted`
  so the process can exit with a resumable run directory;
* with a :class:`RecoveryConfig`, every finished item is immediately
  checkpointed (pickle + SHA-256, tmp/fsync/rename) into the run
  directory, and a resume reloads every valid checkpoint and recomputes
  only the missing or corrupt ones.

Because every worker in this repository is deterministic given its
payload (the per-entity RNG-fork contract of ``repro.scale``), a
resumed map's outputs are **bit-identical** to an uninterrupted run's:
caching is pickling, and recomputation regenerates the same bytes.

Without a :class:`RecoveryConfig` the map still refuses to die with a
raw ``BrokenProcessPool`` traceback: an item whose attempt budget is
exhausted falls back to an in-process rerun (reported on stderr), so a
flaky worker costs wall-clock, never the run.  Ordinary worker
*exceptions* are never retried -- they are deterministic bugs and
propagate, exactly as the pre-recovery executor behaved.
"""

from __future__ import annotations

import functools
import signal
import sys
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

import multiprocessing

from repro.obs.registry import AnyRegistry, NOOP
from repro.recovery.atomic import sha256_bytes
from repro.recovery.crashhook import maybe_crash
from repro.recovery.rundir import (
    STATUS_CORRUPT,
    STATUS_OK,
    RunDir,
    RunDirError,
)

#: Attempt budget used when no :class:`RecoveryConfig` is given: one
#: original try plus this many requeues before the in-process fallback.
DEFAULT_MAX_RETRIES = 2

#: Seconds between scheduler ticks (interrupt checks + watchdog scans).
_TICK = 0.1


@dataclass(frozen=True)
class RecoveryConfig:
    """Durability knobs for one sharded execution.

    ``run_dir`` is the checkpoint directory (created on first use);
    ``resume`` requires it to exist and reuses its valid checkpoints;
    ``shard_timeout`` is the per-item watchdog in wall seconds (``None``
    disables it); ``max_shard_retries`` is how many *requeues* a lost
    item gets before the run aborts as resumable-failed.
    """

    run_dir: Path
    resume: bool = False
    shard_timeout: Optional[float] = None
    max_shard_retries: int = DEFAULT_MAX_RETRIES


class RunInterrupted(RuntimeError):
    """The map was stopped by SIGINT/SIGTERM after checkpointing.

    The run directory named by :attr:`run_dir` holds every completed
    item; re-running with ``resume`` finishes the rest.
    """

    def __init__(self, signum: Optional[int] = None,
                 run_dir: Optional[Path] = None,
                 completed: int = 0, total: int = 0):
        self.signum = signum
        self.run_dir = run_dir
        self.completed = completed
        self.total = total
        name = signal.Signals(signum).name if signum is not None \
            else "stop request"
        super().__init__(
            f"interrupted by {name} with {completed}/{total} items "
            f"checkpointed")


class ShardLostError(RuntimeError):
    """An item exhausted its attempt budget under a recovery config."""

    def __init__(self, key: str, attempts: int,
                 run_dir: Optional[Path] = None):
        self.key = key
        self.attempts = attempts
        self.run_dir = run_dir
        super().__init__(
            f"item {key} lost its worker {attempts} time(s); attempt "
            f"budget exhausted")


@dataclass(frozen=True)
class DurableOutcome:
    """Results of one durable map, in input-key order.

    ``walls`` are per-item worker wall seconds (0.0 for items reused
    from checkpoints); ``reused`` names the checkpoints a resume
    loaded; ``retries`` counts requeued attempts across all items.
    """

    results: list[Any]
    walls: list[float]
    reused: tuple[str, ...] = ()
    retries: int = 0


def worker_identity(worker: Callable) -> str:
    """A stable string naming a worker callable for run manifests.

    ``functools.partial`` workers fold a digest of their bound
    arguments in, so the same base function with a different fault
    plan (say) is a different run identity.
    """
    base = worker
    extra = ""
    if isinstance(worker, functools.partial):
        base = worker.func
        bound = repr((worker.args, sorted(worker.keywords.items())))
        extra = "#" + sha256_bytes(bound.encode())[:12]
    return f"{base.__module__}.{base.__qualname__}{extra}"


def _durable_call(worker: Callable, key: str, attempt: int,
                  payload: Any, crash_enabled: bool = True
                  ) -> tuple[str, float, Any]:
    """The spawn-picklable per-attempt wrapper: crash hook + timing."""
    if crash_enabled:
        maybe_crash(key, attempt)
    started = time.perf_counter()
    result = worker(payload)
    return key, time.perf_counter() - started, result


class _InterruptGuard:
    """SIGINT/SIGTERM -> cooperative stop flag, installed around a map.

    Handlers are only installed from the main thread (Python forbids
    otherwise) and only when requested; the previous handlers are
    restored on exit so nested users (pytest, the CLI) are unaffected.
    ``should_stop`` is the deterministic test hook for the same path.
    """

    def __init__(self, install: bool,
                 should_stop: Optional[Callable[[], bool]] = None):
        self._install = install
        self._should_stop = should_stop
        self._previous: dict[int, Any] = {}
        self.signum: Optional[int] = None

    def __enter__(self) -> "_InterruptGuard":
        if self._install and threading.current_thread() \
                is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._previous[signum] = signal.signal(
                        signum, self._handle)
                except (ValueError, OSError):   # pragma: no cover
                    pass
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)

    def _handle(self, signum, frame) -> None:
        self.signum = signum

    def check(self) -> None:
        if self.signum is not None:
            raise RunInterrupted(signum=self.signum)
        if self._should_stop is not None and self._should_stop():
            raise RunInterrupted()


def _open_run_dir(recovery: RecoveryConfig, identity: dict[str, Any],
                  keys: Sequence[str]) -> RunDir:
    run_dir = RunDir(recovery.run_dir)
    if run_dir.exists:
        if not recovery.resume:
            raise RunDirError(
                f"{run_dir.path} already holds a run; pass resume=True "
                "(--resume) to continue it or pick a fresh --run-dir")
        run_dir = RunDir.open(recovery.run_dir)
        for warning in run_dir.verify_identity(identity):
            print(f"warning: {warning}", file=sys.stderr)
        if list(run_dir.manifest.get("keys", [])) != list(keys):
            raise RunDirError(
                f"{run_dir.path}: manifest keys do not match this "
                "plan's items")
        return run_dir
    if recovery.resume:
        raise RunDirError(
            f"{recovery.run_dir} has no manifest; nothing to resume")
    return RunDir.create(recovery.run_dir, identity, keys)


def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """Forcibly kill a pool's worker processes (watchdog expiry).

    Uses the executor's private process table -- the only handle the
    stdlib exposes -- guarded so a future Python that renames it
    degrades to abandoning the pool instead of crashing the parent.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:   # pragma: no cover - already-dead worker
            pass


def durable_map(keys: Sequence[str], payloads: Sequence[Any],
                worker: Callable, *, jobs: int = 1,
                recovery: Optional[RecoveryConfig] = None,
                identity: Optional[dict[str, Any]] = None,
                metrics: AnyRegistry = NOOP,
                should_stop: Optional[Callable[[], bool]] = None
                ) -> DurableOutcome:
    """Map ``worker`` over keyed payloads with failure tolerance.

    ``keys`` are the stable checkpoint names (unique, filesystem-safe);
    ``payloads[i]`` is the argument for ``keys[i]``.  Results come back
    in key order regardless of scheduling.  See the module docstring
    for the failure semantics.
    """
    keys = list(keys)
    payloads = list(payloads)
    if len(keys) != len(payloads):
        raise ValueError("keys and payloads must align")
    if len(set(keys)) != len(keys):
        raise ValueError("checkpoint keys must be unique")

    run_dir: Optional[RunDir] = None
    results: dict[str, Any] = {}
    walls: dict[str, float] = {key: 0.0 for key in keys}
    reused: list[str] = []
    if recovery is not None:
        run_dir = _open_run_dir(recovery, identity or {}, keys)
        for key in keys:
            status = run_dir.checkpoint_status(key)
            if status == STATUS_OK:
                results[key] = run_dir.load_checkpoint(key)
                reused.append(key)
            elif status == STATUS_CORRUPT:
                metrics.counter(
                    "repro_recovery_corrupt_checkpoints_total").inc()
                print(f"warning: {run_dir.checkpoint_path(key)} failed "
                      "its digest check; recomputing", file=sys.stderr)
        if reused:
            metrics.counter(
                "repro_recovery_checkpoints_reused_total"
                ).inc(len(reused))
        run_dir.write_state("running", completed=len(results),
                            total=len(keys))

    remaining = [(key, payload) for key, payload in zip(keys, payloads)
                 if key not in results]
    max_retries = recovery.max_shard_retries if recovery is not None \
        else DEFAULT_MAX_RETRIES
    timeout = recovery.shard_timeout if recovery is not None else None
    retries = 0

    guard = _InterruptGuard(install=recovery is not None,
                            should_stop=should_stop)
    with guard:
        try:
            if remaining and (jobs <= 1 or len(remaining) <= 1):
                _run_inline(remaining, worker, results, walls, run_dir,
                            metrics, guard)
            elif remaining:
                retries = _run_pool(
                    remaining, worker, jobs, results, walls, run_dir,
                    metrics, guard, timeout, max_retries,
                    durable=recovery is not None)
        except RunInterrupted as error:
            error.run_dir = recovery.run_dir if recovery else None
            error.completed = len(results)
            error.total = len(keys)
            if run_dir is not None:
                run_dir.write_state("interrupted",
                                    completed=len(results),
                                    total=len(keys))
                metrics.counter("repro_recovery_interrupts_total").inc()
            raise
        except ShardLostError:
            if run_dir is not None:
                run_dir.write_state("failed", completed=len(results),
                                    total=len(keys))
            raise
        except Exception:
            if run_dir is not None:
                run_dir.write_state("failed", completed=len(results),
                                    total=len(keys))
            raise
    if run_dir is not None:
        run_dir.write_state("complete", completed=len(keys),
                            total=len(keys))
    return DurableOutcome(results=[results[key] for key in keys],
                          walls=[walls[key] for key in keys],
                          reused=tuple(reused), retries=retries)


def _checkpoint(run_dir: Optional[RunDir], key: str, result: Any,
                metrics: AnyRegistry) -> None:
    if run_dir is None:
        return
    run_dir.write_checkpoint(key, result)
    metrics.counter("repro_recovery_checkpoints_written_total").inc()


def _run_inline(remaining: list[tuple[str, Any]], worker: Callable,
                results: dict[str, Any], walls: dict[str, float],
                run_dir: Optional[RunDir], metrics: AnyRegistry,
                guard: _InterruptGuard) -> None:
    """The no-pool path: sequential, interrupt-checked, checkpointed.

    The crash hook is disabled here -- an injected SIGKILL would take
    the coordinating process (and the test runner) down with it.
    """
    for key, payload in remaining:
        guard.check()
        _key, wall, result = _durable_call(worker, key, 1, payload,
                                           crash_enabled=False)
        results[key] = result
        walls[key] = wall
        _checkpoint(run_dir, key, result, metrics)


def _run_pool(remaining: list[tuple[str, Any]], worker: Callable,
              jobs: int, results: dict[str, Any],
              walls: dict[str, float], run_dir: Optional[RunDir],
              metrics: AnyRegistry, guard: _InterruptGuard,
              timeout: Optional[float], max_retries: int,
              durable: bool) -> int:
    """The process-pool path with requeue-and-retry; returns retries."""
    payload_by_key = dict(remaining)
    attempts = {key: 0 for key, _payload in remaining}
    queue = deque(remaining)
    context = multiprocessing.get_context("spawn")
    retries = 0

    while queue:
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, len(queue)), mp_context=context)
        futures: dict[Any, str] = {}
        for key, payload in queue:
            attempts[key] += 1
            futures[pool.submit(_durable_call, worker, key,
                                attempts[key], payload,
                                True)] = key
        queue.clear()

        started_at: dict[str, float] = {}
        timed_out: set[str] = set()
        broken = False
        try:
            pending = set(futures)
            while pending and not broken:
                done, pending = wait(pending, timeout=_TICK,
                                     return_when=FIRST_COMPLETED)
                for future in done:
                    key = futures[future]
                    try:
                        _key, wall, result = future.result()
                    except BrokenProcessPool:
                        broken = True
                    else:
                        results[key] = result
                        walls[key] = wall
                        _checkpoint(run_dir, key, result, metrics)
                guard.check()
                now = time.perf_counter()
                for future, key in futures.items():
                    if future in pending and key not in started_at \
                            and future.running():
                        started_at[key] = now
                if timeout is not None:
                    expired = [key for future, key in futures.items()
                               if future in pending
                               and key in started_at
                               and now - started_at[key] > timeout]
                    if expired:
                        timed_out.update(expired)
                        metrics.counter(
                            "repro_recovery_shard_timeouts_total"
                            ).inc(len(expired))
                        print(f"warning: {', '.join(sorted(expired))} "
                              f"exceeded the {timeout:.0f}s watchdog; "
                              "killing the worker pool and requeueing",
                              file=sys.stderr)
                        _kill_pool_workers(pool)
                        broken = True
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

        unfinished = sorted(key for key in futures.values()
                            if key not in results)
        if not unfinished:
            continue
        metrics.counter("repro_recovery_pool_rebuilds_total").inc()
        # Only items actually observed running (or hung) are charged the
        # lost attempt; queued bystanders get their attempt refunded.
        # If nothing was ever observed running, charge everyone so a
        # pathologically fast-dying pool still terminates.
        charged = {key for key in unfinished
                   if key in started_at or key in timed_out} \
            or set(unfinished)
        for key in unfinished:
            if key not in charged:
                attempts[key] -= 1
        lost = ", ".join(sorted(charged))
        print(f"warning: worker pool broke; lost {lost} "
              f"({len(unfinished)} item(s) requeued)", file=sys.stderr)
        for key in unfinished:
            if attempts[key] <= max_retries:
                if key in charged:
                    retries += 1
                    metrics.counter(
                        "repro_recovery_shard_retries_total").inc()
                queue.append((key, payload_by_key[key]))
            elif durable:
                raise ShardLostError(key, attempts[key],
                                     run_dir=run_dir.path
                                     if run_dir else None)
            else:
                # Pre-recovery fallback: never die with a raw
                # BrokenProcessPool -- finish the lost item here, in
                # process, where nothing can kill it.
                print(f"warning: {key} exhausted its pool attempts; "
                      "re-running in-process", file=sys.stderr)
                metrics.counter(
                    "repro_recovery_inline_fallbacks_total").inc()
                _key, wall, result = _durable_call(
                    worker, key, attempts[key], payload_by_key[key],
                    crash_enabled=False)
                results[key] = result
                walls[key] = wall
                _checkpoint(run_dir, key, result, metrics)
    return retries
