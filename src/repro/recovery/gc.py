"""Garbage collection for durable run directories.

``repro runs gc`` sweeps a root directory of runs (anything holding a
``manifest.json``) and reclaims the ones nothing will ever resume:

* ``complete`` runs are always *eligible* -- their results have been
  consumed; the checkpoints are dead weight;
* ``running`` / ``interrupted`` / ``failed`` runs are eligible only
  once *stale*: their ``state.json`` (or manifest) has not been touched
  for ``--stale-hours``.  A fresh interrupted run is somebody's
  resumable work and is never collected.

Of the eligible runs the newest ``--keep-last`` are retained (a
complete run is often tomorrow's baseline), the rest are deleted --
but only with ``--delete``; the default is a dry run that prints what
would go.
"""

from __future__ import annotations

import json
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.recovery.rundir import MANIFEST_FILE, STATE_FILE

#: Non-complete runs younger than this are presumed resumable.
DEFAULT_STALE_HOURS = 24.0


@dataclass
class RunInfo:
    """One discovered run directory."""

    path: Path
    status: str
    mtime: float            # newest of state.json / manifest.json
    bytes: int

    def age_hours(self, now: float) -> float:
        return max(0.0, (now - self.mtime) / 3600.0)


def _dir_bytes(path: Path) -> int:
    total = 0
    for item in path.rglob("*"):
        try:
            if item.is_file():
                total += item.stat().st_size
        except OSError:
            continue
    return total


def _run_status(path: Path) -> str:
    state_path = path / STATE_FILE
    if not state_path.exists():
        return "unknown"
    try:
        return str(json.loads(state_path.read_text())
                   .get("status", "unknown"))
    except (OSError, json.JSONDecodeError):
        return "corrupt"


def discover_runs(root: Path) -> list[RunInfo]:
    """Every direct subdirectory of ``root`` that is a run dir."""
    if not root.is_dir():
        return []
    runs = []
    for child in sorted(root.iterdir()):
        manifest = child / MANIFEST_FILE
        if not (child.is_dir() and manifest.exists()):
            continue
        mtime = manifest.stat().st_mtime
        state_path = child / STATE_FILE
        if state_path.exists():
            mtime = max(mtime, state_path.stat().st_mtime)
        runs.append(RunInfo(path=child, status=_run_status(child),
                            mtime=mtime, bytes=_dir_bytes(child)))
    return runs


def eligible(run: RunInfo, now: float,
             stale_hours: float = DEFAULT_STALE_HOURS) -> bool:
    """May this run be collected at all?"""
    if run.status == "complete":
        return True
    return run.age_hours(now) >= stale_hours


def plan_gc(runs: list[RunInfo], *, keep_last: int,
            stale_hours: float = DEFAULT_STALE_HOURS,
            now: Optional[float] = None
            ) -> tuple[list[RunInfo], list[RunInfo]]:
    """Split runs into (kept, doomed).

    Ineligible runs are always kept; of the eligible ones the
    ``keep_last`` newest (by state mtime) survive.
    """
    if keep_last < 0:
        raise ValueError("keep_last must be >= 0")
    clock = time.time() if now is None else now
    candidates = sorted(
        (run for run in runs if eligible(run, clock, stale_hours)),
        key=lambda run: run.mtime, reverse=True)
    kept_eligible = candidates[:keep_last]
    doomed = candidates[keep_last:]
    kept = [run for run in runs if run not in doomed]
    return kept, doomed


def collect(doomed: list[RunInfo], *, delete: bool) -> int:
    """Delete (or, dry-run, just total up) the doomed runs; returns
    bytes reclaimed."""
    reclaimed = 0
    for run in doomed:
        if delete:
            shutil.rmtree(run.path, ignore_errors=True)
        reclaimed += run.bytes
    return reclaimed
