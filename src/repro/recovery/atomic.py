"""Atomic file writes: tmp file + fsync + rename in the same directory.

Every artifact this repository emits (metrics JSONL, EXPERIMENTS.md,
``BENCH_*.json``, chaos reports, run-dir manifests and checkpoints) used
to be written with a plain truncate-then-write, so a crash -- or a
SIGKILL'd CI box -- mid-write would destroy the *previous* good copy
along with the new one.  This module is the one shared fix: write the
bytes to a temporary file in the destination's directory, flush and
fsync them to disk, then :func:`os.replace` over the target.  On POSIX
the rename is atomic, so readers only ever observe the old complete
file or the new complete file, never a torn mixture.

Kept free of any ``repro`` imports so every layer (obs, faults, perf,
experiments, recovery) can use it without cycles.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Union


def sha256_bytes(data: bytes) -> str:
    """Hex SHA-256 of a byte string."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: Union[str, Path],
                chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 of a file's content, streamed in chunks."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``; returns the path.

    The temporary file lives in the destination directory (``rename``
    is only atomic within one filesystem) and is fsynced before the
    rename, so after this returns the new content is durable against
    both process crashes and power loss.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        # Never leave *.tmp litter behind a failed or interrupted write.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: Union[str, Path], text: str,
                      encoding: str = "utf-8") -> Path:
    """Atomically replace ``path`` with ``text`` (see
    :func:`atomic_write_bytes`)."""
    return atomic_write_bytes(path, text.encode(encoding))
