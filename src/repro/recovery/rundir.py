"""Durable run directories: manifest + checksummed per-item checkpoints.

A *run directory* is the on-disk identity of one sharded execution::

    <run-dir>/
        manifest.json               what this run is (identity, keys,
                                    code/config digests) -- written once,
                                    atomically, before any work starts
        state.json                  coarse liveness: running /
                                    interrupted / failed / complete
        checkpoints/<key>.pkl       one pickled result per finished item
        checkpoints/<key>.sha256    content digest of the pickle

Everything is written through :mod:`repro.recovery.atomic`
(tmp + fsync + rename), so a crash at any instant leaves either no file
or a complete one.  A checkpoint only counts as *valid* when its pickle
hashes to the sidecar digest; a torn, truncated, or hand-corrupted
checkpoint is detected by digest mismatch and recomputed -- never
merged.

The manifest's ``identity`` is the caller-supplied dict of everything
that determines the run's output (plan parameters, seeds, worker id);
resuming verifies it verbatim so a run directory can never be resumed
against a different plan.  The ``code_digest`` (SHA-256 over the
``repro`` package sources) is advisory: a mismatch warns -- the
determinism contract may still hold across an edit -- but is surfaced so
a surprising resume diff is explainable.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Any, Iterable, Optional, Union

from repro.recovery.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    sha256_bytes,
)

MANIFEST_FILE = "manifest.json"
STATE_FILE = "state.json"
CHECKPOINTS_DIR = "checkpoints"

#: ``checkpoint_status`` results.
STATUS_OK = "ok"
STATUS_MISSING = "missing"
STATUS_CORRUPT = "corrupt"


class RunDirError(RuntimeError):
    """A run directory is unusable for the requested operation."""


class CorruptCheckpoint(RunDirError):
    """A checkpoint's pickle does not match its recorded digest."""


def package_code_digest() -> str:
    """SHA-256 over every ``*.py`` source of the ``repro`` package.

    Stable across processes and platforms (sorted relative paths, raw
    bytes), cheap enough to compute once per run (a few hundred small
    files), and recorded in the manifest so resumes can flag that the
    code changed underneath a half-finished run.
    """
    import hashlib

    import repro
    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class RunDir:
    """One durable run's directory of manifest, state, and checkpoints."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._manifest: Optional[dict[str, Any]] = None

    # -- creation / opening ------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.path / MANIFEST_FILE

    @property
    def exists(self) -> bool:
        return self.manifest_path.exists()

    @classmethod
    def create(cls, path: Union[str, Path], identity: dict[str, Any],
               keys: Iterable[str]) -> "RunDir":
        """Initialise a fresh run directory (refuses to clobber one)."""
        run_dir = cls(path)
        if run_dir.exists:
            raise RunDirError(
                f"{run_dir.path} already holds a run manifest; resume "
                "it or choose a fresh directory")
        from repro import __version__
        manifest = {
            "format": 1,
            "identity": dict(identity),
            "keys": list(keys),
            "code_digest": package_code_digest(),
            "repro_version": __version__,
        }
        (run_dir.path / CHECKPOINTS_DIR).mkdir(parents=True,
                                               exist_ok=True)
        atomic_write_text(run_dir.manifest_path,
                          json.dumps(manifest, indent=2, sort_keys=True)
                          + "\n")
        run_dir._manifest = manifest
        return run_dir

    @classmethod
    def open(cls, path: Union[str, Path]) -> "RunDir":
        """Open an existing run directory; raises if there is none."""
        run_dir = cls(path)
        if not run_dir.exists:
            raise RunDirError(
                f"{run_dir.path} has no {MANIFEST_FILE}; nothing to "
                "resume")
        run_dir.manifest   # parse eagerly so corruption fails here
        return run_dir

    @property
    def manifest(self) -> dict[str, Any]:
        if self._manifest is None:
            try:
                self._manifest = json.loads(
                    self.manifest_path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                raise RunDirError(
                    f"{self.manifest_path}: unreadable manifest "
                    f"({error})") from error
        return self._manifest

    def verify_identity(self, identity: dict[str, Any]) -> list[str]:
        """Check a resume matches this run; returns advisory warnings.

        Identity (plan, seeds, worker) mismatches are fatal -- resuming
        a different run would merge checkpoints from another universe.
        A code-digest mismatch is returned as a warning string instead.
        """
        recorded = self.manifest.get("identity")
        # Round-trip through JSON so float/tuple representations compare
        # the way they were persisted.
        offered = json.loads(json.dumps(dict(identity)))
        if recorded != offered:
            raise RunDirError(
                f"{self.path}: manifest identity mismatch -- this run "
                f"dir was created for {recorded!r}, not {offered!r}")
        warnings = []
        current = package_code_digest()
        if self.manifest.get("code_digest") != current:
            warnings.append(
                f"{self.path}: the repro sources changed since this "
                "run started (code digest "
                f"{self.manifest.get('code_digest', '?')[:12]} -> "
                f"{current[:12]}); resuming anyway")
        return warnings

    # -- checkpoints -------------------------------------------------------------

    def checkpoint_path(self, key: str) -> Path:
        return self.path / CHECKPOINTS_DIR / f"{key}.pkl"

    def digest_path(self, key: str) -> Path:
        return self.path / CHECKPOINTS_DIR / f"{key}.sha256"

    def write_checkpoint(self, key: str, result: Any) -> None:
        """Durably persist one item's result (pickle + digest sidecar).

        The payload lands before its digest, so every partial state a
        crash can leave behind reads back as missing-or-corrupt (and is
        recomputed), never as silently valid.
        """
        payload = pickle.dumps(result,
                               protocol=pickle.HIGHEST_PROTOCOL)
        atomic_write_bytes(self.checkpoint_path(key), payload)
        atomic_write_text(self.digest_path(key),
                          sha256_bytes(payload) + "\n")

    def checkpoint_status(self, key: str) -> str:
        """``ok`` / ``missing`` / ``corrupt`` for one item's checkpoint."""
        payload_path = self.checkpoint_path(key)
        digest_path = self.digest_path(key)
        if not payload_path.exists() or not digest_path.exists():
            return STATUS_MISSING
        recorded = digest_path.read_text().strip()
        if sha256_bytes(payload_path.read_bytes()) != recorded:
            return STATUS_CORRUPT
        return STATUS_OK

    def load_checkpoint(self, key: str) -> Any:
        """Load a checkpoint, verifying its digest first."""
        status = self.checkpoint_status(key)
        if status != STATUS_OK:
            raise CorruptCheckpoint(
                f"{self.checkpoint_path(key)}: checkpoint is {status}")
        return pickle.loads(self.checkpoint_path(key).read_bytes())

    def completed_keys(self, keys: Iterable[str]) -> list[str]:
        """The subset of ``keys`` with a valid checkpoint on disk."""
        return [key for key in keys
                if self.checkpoint_status(key) == STATUS_OK]

    # -- coarse run state --------------------------------------------------------

    def write_state(self, status: str, **extra: Any) -> None:
        payload = {"status": status, **extra}
        atomic_write_text(self.path / STATE_FILE,
                          json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")

    def state(self) -> dict[str, Any]:
        path = self.path / STATE_FILE
        if not path.exists():
            return {"status": "unknown"}
        return json.loads(path.read_text())
