"""repro.serve -- the production ODR serving tier.

The paper's ODR is "a public web service ... on a low-end virtual
machine"; this package is what it takes to serve the same decision
endpoint at scale:

* :class:`~repro.serve.server.AsyncOdrServer` -- one asyncio loop,
  keep-alive connections, same-tick batched decision evaluation,
  per-endpoint obs metrics plus a Prometheus ``/metrics`` endpoint,
  graceful drain;
* :class:`~repro.serve.admission.AdmissionController` -- bounded
  admission: over-cap requests shed with ``503 + Retry-After`` derived
  from the EWMA service time, every accepted/rejected request counted;
* :class:`~repro.serve.batching.DecisionBatcher` -- coalesces requests
  arriving in one event-loop tick into a single
  :meth:`~repro.core.webapp.OdrWebApp.handle_batch` pass;
* :mod:`~repro.serve.workers` -- N ``SO_REUSEPORT`` worker processes
  sharing one port;
* :class:`~repro.serve.supervisor.WorkerSupervisor` -- the parent that
  keeps the pool at capacity: per-worker health probes over private
  admin listeners, backoff restarts with a restart-storm breaker,
  rolling restarts;
* :mod:`~repro.serve.avail` (``python -m repro.serve.avail``) -- the
  worker-kill availability campaign (supervised vs unsupervised pool
  under load), written to ``BENCH_avail.json``;
* :class:`~repro.serve.chaos.ServeChaos` -- a fault-plan gate anchored
  at server start, so chaos campaigns cover the serving tier;
* :mod:`~repro.serve.bench` (``python -m repro.serve.bench``) -- the
  saturation-ramp comparison against the legacy threaded tier,
  written to ``BENCH_serve.json``.

The CLI lives in ``python -m repro.serve`` (also ``repro serve``).
"""

from repro.serve.admission import (
    DEFAULT_MAX_INFLIGHT,
    AdmissionController,
)
from repro.serve.batching import DecisionBatcher
from repro.serve.chaos import ServeChaos, load_serve_chaos
from repro.serve.server import (
    AsyncOdrServer,
    AsyncServerThread,
    endpoint_label,
    run_async_server,
)
from repro.serve.supervisor import (
    SupervisorConfig,
    SupervisorThread,
    WorkerSupervisor,
)

__all__ = [
    "DEFAULT_MAX_INFLIGHT",
    "AdmissionController",
    "AsyncOdrServer",
    "AsyncServerThread",
    "DecisionBatcher",
    "ServeChaos",
    "SupervisorConfig",
    "SupervisorThread",
    "WorkerSupervisor",
    "endpoint_label",
    "load_serve_chaos",
    "run_async_server",
]
