"""Bounded admission control for the serving tier.

A production decision endpoint must shed load *before* queueing
collapses its latency, not after.  :class:`AdmissionController` caps the
number of requests allowed past the front door at once; everything over
the cap is rejected immediately with ``503 + Retry-After`` instead of
joining an unbounded backlog.  The ``Retry-After`` hint is computed from
an EWMA of observed service time: roughly how long the current in-flight
population needs to drain.

The controller is the single place that accounts for *every* request
that reaches the server -- admitted or rejected -- through three obs
instruments:

* ``repro_serve_admitted_total{endpoint}``   counter
* ``repro_serve_rejected_total{endpoint, reason}`` counter
* ``repro_serve_inflight``                   gauge

plus a per-endpoint latency histogram
(``repro_serve_latency_seconds{endpoint}``) observed on release.  Tests
assert the invariant ``admitted + rejected == requests sent``.

Thread-safe: the asyncio tier calls it from one loop thread, the legacy
threaded tier from many handler threads.
"""

from __future__ import annotations

import math
import threading
from typing import Optional

from repro.obs.registry import NOOP, AnyRegistry

#: Default cap on concurrently admitted requests.  Sized for the
#: decision endpoint: decisions are sub-millisecond, so hundreds in
#: flight means the server is queueing, not working.
DEFAULT_MAX_INFLIGHT = 128

#: EWMA smoothing for the observed service time.
EWMA_ALPHA = 0.2

#: Clamp for the Retry-After hint (seconds).
RETRY_AFTER_MIN = 1
RETRY_AFTER_MAX = 30

#: Queueing-delay budget the adaptive cap defends: with ``n`` requests
#: in flight each taking ``ewma`` seconds, the newest waits roughly
#: ``n * ewma``, so admission tightens to ``target / ewma`` slots when
#: the backend slows down.  With the optimistic 1 ms prior this works
#: out to 1000 slots -- far above the default cap, so a fresh
#: controller behaves exactly like the fixed-cap one.
TARGET_QUEUE_DELAY_SECONDS = 1.0

#: The adaptive cap never drops below this many slots: a single slow
#: outlier must degrade concurrency, not strangle the server.
ADAPTIVE_MIN_INFLIGHT = 8

#: Status of a deadline shed.  504 Gateway Timeout is the closest HTTP
#: phrase for "this answer would arrive after it stopped mattering";
#: it is deliberately distinct from the 503 load shed so clients (and
#: the loadgen scorecard) can separate "server full" from "too late".
DEADLINE_STATUS = 504


def deadline_response(stage: str, remaining_ms: Optional[float] = None
                      ) -> tuple[int, str, str, None, dict[str, str]]:
    """The full Response tuple of a deadline shed at ``stage``.

    ``stage`` names where the budget ran out: ``admission`` (predicted
    queue wait already exceeds the remaining budget), ``batch`` (the
    entry expired waiting for its coalesced tick), or ``execute`` (the
    deadline passed while the work sat on the executor queue).
    """
    import json
    payload: dict[str, object] = {
        "error": "deadline exceeded",
        "detail": f"request budget exhausted at the {stage} stage",
        "stage": stage,
    }
    if remaining_ms is not None:
        payload["remaining_ms"] = round(remaining_ms, 3)
    return (DEADLINE_STATUS, "application/json", json.dumps(payload),
            None, {})


class AdmissionController:
    """Queue-depth cap with an EWMA-derived Retry-After hint.

    The configured ``max_inflight`` is a hard ceiling; the *effective*
    cap additionally adapts downward when the EWMA service time grows
    (see :data:`TARGET_QUEUE_DELAY_SECONDS`), so a slow backend sheds
    load at the concurrency it can actually drain within the delay
    budget instead of queueing up to the static limit.
    """

    def __init__(self, max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 metrics: AnyRegistry = NOOP):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self._metrics = metrics
        self._lock = threading.Lock()
        self._inflight = 0
        self._ewma_seconds = 0.001   # optimistic prior: a fast backend
        self._inflight_gauge = metrics.gauge("repro_serve_inflight")
        self._effective_gauge = metrics.gauge(
            "repro_serve_effective_max_inflight")
        # Plain cumulative counters mirrored off the obs instruments:
        # the supervisor reads these through the admin ``/statz``
        # endpoint to sense shed pressure for elastic scaling, without
        # parsing Prometheus text.
        self.admitted_count = 0
        self.shed_saturated = 0
        self.shed_deadline_count = 0
        self.shed_other = 0

    def _effective_cap_locked(self) -> int:
        adaptive = int(TARGET_QUEUE_DELAY_SECONDS / self._ewma_seconds) \
            if self._ewma_seconds > 0.0 else self.max_inflight
        return min(self.max_inflight,
                   max(ADAPTIVE_MIN_INFLIGHT, adaptive))

    @property
    def effective_max_inflight(self) -> int:
        """The adaptive admission cap currently in force."""
        with self._lock:
            return self._effective_cap_locked()

    # -- admission ---------------------------------------------------------------

    def try_admit(self, endpoint: str) -> bool:
        """Admit one request, or refuse because the server is full."""
        with self._lock:
            if self._inflight >= self._effective_cap_locked():
                self.shed_saturated += 1
                self._metrics.counter("repro_serve_rejected_total",
                                      endpoint=endpoint,
                                      reason="saturated").inc()
                return False
            self._inflight += 1
            self.admitted_count += 1
            self._inflight_gauge.set(float(self._inflight))
        self._metrics.counter("repro_serve_admitted_total",
                              endpoint=endpoint).inc()
        return True

    def reject(self, endpoint: str, reason: str) -> None:
        """Account for a shed request refused for a non-depth reason
        (e.g. an injected fault window or a malformed request line)."""
        with self._lock:
            self.shed_other += 1
        self._metrics.counter("repro_serve_rejected_total",
                              endpoint=endpoint, reason=reason).inc()

    # -- deadline budgets --------------------------------------------------------

    def predicted_wait_seconds(self) -> float:
        """The EWMA queue-wait estimate: with ``n`` requests in flight
        each taking ``ewma`` seconds, the newest waits roughly their
        sum before its own work starts."""
        with self._lock:
            return self._inflight * self._ewma_seconds

    def deadline_allows(self, remaining_seconds: float) -> bool:
        """Can a request with this much budget left still make it?

        Sheds pessimistically: if the predicted queue wait alone eats
        the remaining budget the decision would come back expired, so
        answering ``504`` *now* is strictly cheaper for both sides.
        """
        return remaining_seconds > self.predicted_wait_seconds()

    def shed_deadline(self, endpoint: str, stage: str) -> None:
        """Account for a request shed because its deadline is hopeless.

        Counted under ``rejected_total`` (so ``admitted + rejected ==
        sent`` still holds) *and* under the dedicated deadline-shed
        counter, with a stage label -- separate from 503 load sheds.
        """
        with self._lock:
            self.shed_deadline_count += 1
        self._metrics.counter("repro_serve_rejected_total",
                              endpoint=endpoint,
                              reason="deadline").inc()
        self.count_deadline_shed(stage)

    def count_deadline_shed(self, stage: str) -> None:
        """Bump the deadline-shed counter for post-admission stages
        (batch expiry, executor no-op) that already hold a slot."""
        self._metrics.counter("repro_serve_deadline_sheds_total",
                              stage=stage).inc()

    def release(self, endpoint: str, latency_seconds: float,
                status: int) -> None:
        """Finish one admitted request: free its slot, record latency."""
        with self._lock:
            self._inflight -= 1
            self._inflight_gauge.set(float(self._inflight))
            if latency_seconds >= 0.0:
                self._ewma_seconds += EWMA_ALPHA * (
                    latency_seconds - self._ewma_seconds)
            self._effective_gauge.set(
                float(self._effective_cap_locked()))
        self._metrics.counter("repro_serve_responses_total",
                              endpoint=endpoint,
                              status=f"{status // 100}xx").inc()
        self._metrics.histogram("repro_serve_latency_seconds",
                                endpoint=endpoint).observe(
            latency_seconds)

    # -- views -------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def ewma_service_seconds(self) -> float:
        with self._lock:
            return self._ewma_seconds

    def stats(self) -> dict[str, int]:
        """Cumulative admission accounting, as the ``/statz`` payload.

        ``sheds`` is the pressure signal the elastic supervisor scales
        on: saturation (503) plus deadline (504-at-admission) sheds --
        both mean the worker is refusing work it was offered.
        """
        with self._lock:
            return {
                "admitted": self.admitted_count,
                "shed_saturated": self.shed_saturated,
                "shed_deadline": self.shed_deadline_count,
                "shed_other": self.shed_other,
                "sheds": self.shed_saturated + self.shed_deadline_count,
                "inflight": self._inflight,
                "effective_max_inflight": self._effective_cap_locked(),
            }

    def retry_after(self) -> int:
        """Seconds a shed client should wait: the time the admitted
        population needs to drain at the observed service rate."""
        with self._lock:
            drain = self._inflight * self._ewma_seconds
        return int(min(RETRY_AFTER_MAX,
                       max(RETRY_AFTER_MIN, math.ceil(drain))))

    def shed_body(self) -> tuple[int, str, dict[str, str]]:
        """(status, JSON body, headers) of the saturation response."""
        import json
        retry_after = self.retry_after()
        cap = self.effective_max_inflight
        body = json.dumps(
            {"error": "server saturated",
             "detail": f"admission queue full "
                       f"({cap} in flight); retry later",
             "retry_after_seconds": retry_after})
        return 503, body, {"Retry-After": str(retry_after)}


def optional_admission(max_inflight: Optional[int],
                       metrics: AnyRegistry = NOOP
                       ) -> Optional[AdmissionController]:
    """An AdmissionController, or None when admission is disabled
    (``max_inflight`` of 0 or None means 'unbounded')."""
    if not max_inflight:
        return None
    return AdmissionController(max_inflight, metrics=metrics)
