"""The availability chaos matrix: does self-healing actually help?

``python -m repro.serve.avail`` runs one seeded campaign per fault
kind in the serve-domain chaos taxonomy -- ``worker_kill``,
``correlated_kill``, ``probe_blackhole``, ``admin_slowloris``,
``conn_reset`` -- against a SO_REUSEPORT pool under closed-loop load,
in supervised and unsupervised variants (plus an elastic-off variant
where that axis matters), and gates each scenario on:

* **recovery** -- the supervised pool must return to full health
  within the recovery budget after every injected fault (time-to-
  healthy measured from the supervisor's own event log);
* **margin** -- the supervised campaign's hard error rate (transport
  failures + non-shed 5xx) must be at least ``margin_factor`` (10x)
  lower than the unsupervised one for the wedge/correlated kinds, and
  beat it by the legacy absolute margin for ``worker_kill``;
* **post-recovery** -- a verification step against the recovered pool
  must complete with zero hard errors.

A final ``shed_pressure`` scenario drives a deliberately undersized
pool (tiny ``max_inflight``) hard enough to shed and gates on the
elastic supervisor actually scaling up (peak pool size > initial)
while the static one stays fixed.

Kill kinds are delivered by the harness (SIGKILL from the parent, on
the plan's schedule, anchored at load start); wedge kinds are
*self-applied* by the workers through
:class:`~repro.serve.chaos.WorkerChaos` (anchored at the supervisor's
epoch), which is what stresses the supervisor's probe path: a wedged
worker still accepts connections, so only the bounded probe pass --
hung sockets counting as misses -- notices and restarts it.

Plans are :class:`~repro.faults.plan.FaultPlan` JSON like every other
chaos schedule in the repo, validated against the pool size at load
time.  Results land in ``BENCH_avail.json``; the exit code is the
gate.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.faults.plan import (
    SERVE_KILL_KINDS,
    SERVE_KINDS,
    WEDGE_KINDS,
    FaultPlan,
    FaultSpec,
    correlated_slots,
    serve_slot_of,
    validate_serve_plan,
)
from repro.loadgen.client import TargetSet
from repro.loadgen.replay import LoadGenerator, StepScorecard
from repro.serve.supervisor import (
    SupervisorConfig,
    SupervisorThread,
    WorkerSupervisor,
)

#: Per-fault budget for the pool to probe fully healthy again: spawn
#: cost (~2 s for a spawn-context worker) + backoff + one probe pass.
DEFAULT_RECOVERY_BUDGET = 12.0

#: ``worker_kill`` keeps its PR-era absolute margin: the supervised
#: campaign must beat the unsupervised one by at least this much hard
#: error rate.
DEFAULT_ERROR_RATE_MARGIN = 0.10

#: The new kinds gate on a *ratio*: unsupervised hard error rate must
#: be at least this many times the supervised one.
DEFAULT_MARGIN_FACTOR = 10.0

#: Smoke campaigns are too short for the full 10x separation (the
#: supervised pool's fixed ~2 s detection window is a bigger slice of
#: a short run), so CI smoke gates on a reduced ratio.
SMOKE_MARGIN_FACTOR = 3.0

DEFAULT_KILL_SEED = 20150667

#: Every matrix fault scenario, in presentation order.
MATRIX_KINDS: tuple[str, ...] = SERVE_KINDS

#: The kinds the CI chaos-matrix smoke runs.
SMOKE_KINDS: tuple[str, ...] = ("correlated_kill", "probe_blackhole")

#: Wedge windows open this many seconds after the *supervisor's*
#: epoch -- late enough that pool startup, trace loading, and prewarm
#: are done and the wedge lands mid-load.
WEDGE_START = 6.0


# -- plan builders ---------------------------------------------------------------


def default_kill_plan(workers: int,
                      seed: int = DEFAULT_KILL_SEED,
                      first_kill: float = 2.0,
                      spacing: float = 2.5) -> FaultPlan:
    """Kill every slot once, staggered.

    Killing *all* slots is the point: an unsupervised pool ends with
    zero listeners (every later connection refused), while a supervised
    one climbs back after each kill -- which makes the error-rate
    margin a property of the design, not of load timing.
    """
    return FaultPlan(name="avail-kill", seed=seed, specs=tuple(
        FaultSpec("worker_kill", f"serve:worker-{rank}",
                  first_kill + rank * spacing, 0.5)
        for rank in range(workers)))


def correlated_kill_plan(workers: int,
                         seed: int = DEFAULT_KILL_SEED,
                         start: float = 2.0) -> FaultPlan:
    """One window SIGKILLing the whole pool at once (count=workers)."""
    return FaultPlan(name="avail-correlated", seed=seed, specs=(
        FaultSpec("correlated_kill", "serve:*", start, 0.5,
                  count=workers),))


def wedge_plan(kind: str, seed: int = DEFAULT_KILL_SEED,
               start: float = WEDGE_START, slot: int = 0) -> FaultPlan:
    """One wedge window on one slot.

    One slot, not all: SO_REUSEPORT keeps steering roughly half of new
    connections at a wedged-but-listening worker, so a single wedge
    already poisons the pool until supervision kills it -- while the
    surviving worker keeps absorbing load, which is what separates the
    supervised and unsupervised hard-error rates.
    """
    if kind not in WEDGE_KINDS:
        raise ValueError(f"{kind!r} is not a wedge kind: {WEDGE_KINDS}")
    return FaultPlan(name=f"avail-{kind}", seed=seed, specs=(
        FaultSpec(kind, f"serve:worker-{slot}", start, 1.0),))


def plan_for_kind(kind: str, workers: int,
                  seed: int = DEFAULT_KILL_SEED) -> FaultPlan:
    if kind == "worker_kill":
        return default_kill_plan(workers, seed)
    if kind == "correlated_kill":
        return correlated_kill_plan(workers, seed)
    return wedge_plan(kind, seed)


# -- schedules and event analysis ------------------------------------------------


def _kill_schedule(plan: FaultPlan, workers: int
                   ) -> list[tuple[float, list[int]]]:
    """[(start, slots)] of the plan's harness-delivered kills.

    ``worker_kill`` yields one slot per window; ``correlated_kill``
    yields the whole deterministic group (see
    :func:`~repro.faults.plan.correlated_slots`) so every member dies
    inside the same window.  Wedge kinds are self-applied by the
    workers and do not appear here.
    """
    schedule: list[tuple[float, list[int]]] = []
    for spec in plan.specs_of(SERVE_KILL_KINDS):
        if spec.kind == "correlated_kill":
            schedule.append((spec.start,
                             correlated_slots(spec=spec, plan=plan,
                                              workers=workers)))
            continue
        slot = serve_slot_of(spec.target)
        if slot is not None and 0 <= slot < workers:
            schedule.append((spec.start, [slot]))
    return sorted(schedule)


def _time_to_healthy(events: list[dict]) -> list[dict]:
    """Pair each worker exit with the slot's next ready event."""
    recoveries = []
    for position, record in enumerate(events):
        if record["event"] != "worker_exit":
            continue
        healthy_at = None
        for later in events[position + 1:]:
            if later["event"] == "ready" \
                    and later.get("slot") == record.get("slot"):
                healthy_at = later["t"]
                break
        recoveries.append({
            "slot": record.get("slot"),
            "killed_at": record["t"],
            "healthy_at": healthy_at,
            "time_to_healthy":
                round(healthy_at - record["t"], 3)
                if healthy_at is not None else None,
        })
    return recoveries


# -- one campaign ----------------------------------------------------------------


def _run_campaign(supervised: bool, plan: Optional[FaultPlan], *,
                  workers: int, paths: list[str], rps: float,
                  duration: float, deadline_ms: Optional[float],
                  load_workers: int, recovery_budget: float,
                  elastic: bool = False,
                  max_workers: Optional[int] = None,
                  max_inflight: int = 128,
                  client_timeout: float = 2.0,
                  quiet: bool = True,
                  label: str = "") -> dict[str, Any]:
    """One campaign under load; returns its result block.

    When the plan carries wedge specs (or front-door chaos kinds like
    ``vm_stall``) it is written to a temp file and handed to the
    workers as their ``--faults`` plan (wedges are self-applied, on
    the supervisor's epoch); kill specs are delivered by this
    harness's killer thread, anchored at load start.
    """
    from repro.obs import MetricsRegistry
    metrics = MetricsRegistry()
    config = SupervisorConfig(
        probe_interval=0.15, probe_timeout=0.4, backoff_base=0.1,
        max_workers=(max_workers or workers * 2) if elastic else None,
        pressure_polls=2, quiet_polls=12, scale_cooldown=0.6)
    faults_path: Optional[str] = None
    cleanup: Optional[Path] = None
    if plan is not None and plan.specs_of(
            WEDGE_KINDS + ("vm_stall", "isp_degrade", "server_crash")):
        handle = tempfile.NamedTemporaryFile(
            mode="w", suffix=".json", prefix="avail-plan-",
            delete=False)
        handle.write(plan.to_json())
        handle.close()
        faults_path = handle.name
        cleanup = Path(faults_path)
    supervisor = WorkerSupervisor(
        workers, config=config, metrics=metrics,
        max_inflight=max_inflight, faults=faults_path,
        auto_restart=supervised, quiet=True)
    runner = SupervisorThread(supervisor).start(timeout=60.0)
    kills: list[dict] = []
    stop_killer = threading.Event()
    schedule = _kill_schedule(plan, workers) if plan is not None else []

    def killer(t0: float) -> None:
        for start, slots in schedule:
            wait = t0 + start - time.monotonic()
            if wait > 0 and stop_killer.wait(wait):
                return
            for slot in slots:
                pid = supervisor.pid_of(slot)
                if pid is not None:
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pid = None
                kills.append({"t": round(start, 3), "slot": slot,
                              "pid": pid})

    card: StepScorecard
    verify_card: Optional[StepScorecard] = None
    recovered = False
    try:
        # Fresh connections, deliberately: a keep-alive session pool
        # pins nearly all traffic to whichever worker its hot
        # connection reached, hiding a wedged sibling entirely.  New
        # arrivals are what availability is about.
        targets = TargetSet.from_urls([runner.url],
                                      timeout=client_timeout,
                                      fresh=True)
        with LoadGenerator(targets, paths, workers=load_workers,
                           deadline_ms=deadline_ms) as generator:
            generator.prewarm()
            killer_thread = threading.Thread(
                target=killer, args=(time.monotonic(),),
                name="avail-killer", daemon=True)
            killer_thread.start()
            card = generator.run_step(rps, duration)
            stop_killer.set()
            killer_thread.join(5.0)
        if supervised:
            deadline = time.monotonic() + recovery_budget
            while time.monotonic() < deadline:
                if supervisor.healthy_workers >= workers:
                    recovered = True
                    break
                time.sleep(0.1)
            if recovered:
                # Post-recovery proof on a fresh session pool (the
                # campaign pool holds connections to dead or wedged
                # PIDs): the recovered pool must answer with zero hard
                # errors -- for wedge campaigns this also proves the
                # epoch anchoring, because a replacement that
                # re-adopted the wedge window would fail it.
                verify_targets = TargetSet.from_urls(
                    [runner.url], timeout=client_timeout, fresh=True)
                with LoadGenerator(verify_targets, paths,
                                   workers=load_workers,
                                   deadline_ms=deadline_ms
                                   ) as verifier:
                    verifier.prewarm()
                    verify_card = verifier.run_step(
                        max(10.0, rps / 4), 2.0)
    finally:
        runner.stop()
        if cleanup is not None:
            cleanup.unlink(missing_ok=True)

    events = list(supervisor.events)
    recoveries = _time_to_healthy(events)
    result: dict[str, Any] = {
        "label": label,
        "supervised": supervised,
        "elastic": elastic,
        "workers": workers,
        "max_workers": config.max_workers,
        "kills": kills,
        "load": card.to_dict(),
        "recoveries": recoveries,
        "recovered_full_health": recovered if supervised else False,
        "restarts": supervisor.restarts_total,
        "degraded": supervisor.degraded,
        "peak_pool_size": supervisor.peak_pool_size,
        "final_pool_size": supervisor.pool_size,
        "events": events,
    }
    if verify_card is not None:
        result["post_recovery"] = verify_card.to_dict()
    if not quiet:
        print(f"avail: {label}: "
              f"hard_error_rate={card.hard_error_rate:.4f} "
              f"restarts={supervisor.restarts_total} "
              f"peak_pool={supervisor.peak_pool_size} "
              f"kills={len(kills)}", flush=True)
    return result


# -- scenarios -------------------------------------------------------------------


def _kind_params(kind: str, smoke: bool) -> dict[str, Any]:
    """Load shape per fault kind.

    Wedge campaigns run a short client timeout (hung requests block a
    load worker for exactly one timeout) and longer durations (the
    supervised pool's ~2 s detection window must be a small fraction of
    the run for the margin ratio to be meaningful).
    """
    if kind == "worker_kill":
        return dict(rps=40.0 if smoke else 60.0,
                    duration=6.0 if smoke else 8.0,
                    client_timeout=2.0, load_workers=4)
    if kind == "correlated_kill":
        return dict(rps=30.0 if smoke else 40.0,
                    duration=14.0 if smoke else 35.0,
                    client_timeout=2.0, load_workers=4)
    if kind in ("probe_blackhole", "admin_slowloris"):
        # admin_slowloris detection is the slowest of the taxonomy
        # (every probe pass burns a full timeout on the dribbled
        # response), so its campaign runs longest: the margin ratio
        # compares a fixed detection window against the run length.
        duration = 45.0 if kind == "admin_slowloris" else 30.0
        return dict(rps=24.0, duration=12.0 if smoke else duration,
                    client_timeout=0.75, load_workers=6)
    return dict(rps=40.0, duration=10.0 if smoke else 20.0,
                client_timeout=2.0, load_workers=4)


def _kind_gate(kind: str, campaigns: dict[str, dict], *,
               recovery_budget: float, margin: float,
               margin_factor: float) -> dict[str, Any]:
    """One fault scenario's verdict."""
    sup = campaigns["supervised"]
    unsup = campaigns["unsupervised"]
    sup_rate = sup["load"]["hard_error_rate"]
    unsup_rate = unsup["load"]["hard_error_rate"]
    recovery_times = [entry["time_to_healthy"]
                      for entry in sup["recoveries"]]
    recovered_within_budget = (
        sup["recovered_full_health"]
        and bool(recovery_times)
        and all(t is not None and t <= recovery_budget
                for t in recovery_times))
    if kind == "worker_kill":
        margin_met = unsup_rate - sup_rate >= margin
    else:
        # Ratio gate; a zero supervised rate passes as long as the
        # unsupervised pool actually broke.
        margin_met = unsup_rate > 0.0 \
            and unsup_rate >= margin_factor * sup_rate
    post = sup.get("post_recovery")
    post_clean = post is not None and post["hard_errors"] == 0
    gate: dict[str, Any] = {
        "recovery_budget_seconds": recovery_budget,
        "recovered_within_budget": recovered_within_budget,
        "supervised_hard_error_rate": sup_rate,
        "unsupervised_hard_error_rate": unsup_rate,
        "margin_met": margin_met,
        "post_recovery_clean": post_clean,
    }
    if kind == "worker_kill":
        gate["error_rate_margin"] = margin
        static = campaigns.get("supervised_static")
        if static is not None:
            static_times = [entry["time_to_healthy"]
                            for entry in static["recoveries"]]
            gate["static_recovered_within_budget"] = (
                static["recovered_full_health"]
                and bool(static_times)
                and all(t is not None and t <= recovery_budget
                        for t in static_times))
    else:
        gate["margin_factor"] = margin_factor
    gate["passed"] = bool(
        gate["recovered_within_budget"] and gate["margin_met"]
        and gate["post_recovery_clean"]
        and gate.get("static_recovered_within_budget", True))
    return gate


def _run_kind_scenario(kind: str, plan: FaultPlan, *, workers: int,
                       paths: list[str],
                       deadline_ms: Optional[float], smoke: bool,
                       recovery_budget: float, margin: float,
                       margin_factor: float,
                       quiet: bool) -> dict[str, Any]:
    params = _kind_params(kind, smoke)
    common = dict(workers=workers, paths=paths, rps=params["rps"],
                  duration=params["duration"],
                  deadline_ms=deadline_ms,
                  load_workers=params["load_workers"],
                  client_timeout=params["client_timeout"],
                  recovery_budget=recovery_budget, quiet=quiet)
    campaigns = {
        "supervised": _run_campaign(
            True, plan, elastic=True,
            label=f"{kind}/supervised+elastic", **common),
    }
    if kind == "worker_kill":
        # The elastic-off axis, shown where it is cheapest: restarts
        # must work identically with a fixed pool.
        campaigns["supervised_static"] = _run_campaign(
            True, plan, elastic=False,
            label=f"{kind}/supervised", **common)
    campaigns["unsupervised"] = _run_campaign(
        False, plan, elastic=False,
        label=f"{kind}/unsupervised", **common)
    return {
        "name": kind,
        "kind": kind,
        "plan": {"name": plan.name, "seed": plan.seed,
                 "specs": [spec.to_dict()
                           for spec in plan.specs_of(SERVE_KINDS)]},
        "campaigns": campaigns,
        "gate": _kind_gate(kind, campaigns,
                           recovery_budget=recovery_budget,
                           margin=margin,
                           margin_factor=margin_factor),
    }


def _run_shed_scenario(*, workers: int, paths: list[str],
                       deadline_ms: Optional[float],
                       recovery_budget: float,
                       quiet: bool) -> dict[str, Any]:
    """Elastic scale-up under admission-shed pressure.

    A deliberately undersized pool (``max_inflight=1`` per worker)
    under load sheds on saturation; the elastic supervisor must notice
    (via /statz deltas) and grow the pool, the static one must not.
    A ``vm_stall`` window covering the whole run pins the per-decision
    service time at ~50 ms: a warmed-up decision is sub-millisecond,
    which would make saturation (and therefore this scenario's
    verdict) a race against the page cache rather than a property of
    the load.
    """
    stall = FaultPlan(name="shed-pressure-stall", seed=1, specs=(
        FaultSpec("vm_stall", "*", 0.001, 3600.0),))
    common = dict(workers=workers, paths=paths, rps=80.0,
                  duration=6.0, deadline_ms=deadline_ms,
                  load_workers=8, client_timeout=2.0, max_inflight=1,
                  recovery_budget=recovery_budget, quiet=quiet)
    campaigns = {
        "elastic": _run_campaign(True, stall, elastic=True,
                                 max_workers=workers * 2,
                                 label="shed_pressure/elastic",
                                 **common),
        "static": _run_campaign(True, stall, elastic=False,
                                label="shed_pressure/static",
                                **common),
    }
    scale_up = campaigns["elastic"]["peak_pool_size"] > workers
    static_fixed = campaigns["static"]["peak_pool_size"] == workers
    gate = {
        "scale_up_observed": scale_up,
        "peak_pool_size": campaigns["elastic"]["peak_pool_size"],
        "initial_pool_size": workers,
        "static_pool_fixed": static_fixed,
        "passed": bool(scale_up and static_fixed),
    }
    return {"name": "shed_pressure", "kind": None, "plan": None,
            "campaigns": campaigns, "gate": gate}


# -- the matrix ------------------------------------------------------------------


def _matrix_rows(scenarios: list[dict]) -> list[dict]:
    """The flat one-row-per-campaign view of the matrix."""
    rows = []
    for scenario in scenarios:
        for label, campaign in scenario["campaigns"].items():
            rows.append({
                "scenario": scenario["name"],
                "campaign": label,
                "supervised": campaign["supervised"],
                "elastic": campaign["elastic"],
                "hard_error_rate":
                    campaign["load"]["hard_error_rate"],
                "recovered": campaign["recovered_full_health"],
                "restarts": campaign["restarts"],
                "peak_pool_size": campaign["peak_pool_size"],
            })
    return rows


def run_matrix(*, workers: int = 2,
               deadline_ms: Optional[float] = 500.0,
               kinds: Optional[Sequence[str]] = None,
               plan: Optional[FaultPlan] = None,
               recovery_budget: float = DEFAULT_RECOVERY_BUDGET,
               margin: float = DEFAULT_ERROR_RATE_MARGIN,
               margin_factor: float = DEFAULT_MARGIN_FACTOR,
               smoke: bool = False, shed: bool = True,
               trace_scale: float = 0.01, trace_seed: int = 7,
               trace_limit: int = 4000,
               quiet: bool = False) -> dict[str, Any]:
    """The full scenario matrix plus the gate, as the BENCH payload.

    ``plan`` (when given) replaces the built-in schedule of the
    scenario whose kind its serve specs carry; plans are validated
    against the pool size before any process is spawned.
    """
    from repro.loadgen.trace import load_or_generate_paths
    if kinds is None:
        kinds = SMOKE_KINDS if smoke else MATRIX_KINDS
    for kind in kinds:
        if kind not in SERVE_KINDS:
            raise ValueError(f"unknown matrix kind {kind!r}; "
                             f"known: {SERVE_KINDS}")
    plan_kinds: set[str] = set()
    if plan is not None:
        validate_serve_plan(plan, workers)
        plan_kinds = {spec.kind
                      for spec in plan.specs_of(SERVE_KINDS)}
    paths = load_or_generate_paths(None, trace_scale, trace_seed,
                                   limit=trace_limit)
    scenarios: list[dict] = []
    for kind in kinds:
        kind_plan = plan if plan is not None and kind in plan_kinds \
            else plan_for_kind(kind, workers)
        validate_serve_plan(kind_plan, workers)
        scenarios.append(_run_kind_scenario(
            kind, kind_plan, workers=workers, paths=paths,
            deadline_ms=deadline_ms, smoke=smoke,
            recovery_budget=recovery_budget, margin=margin,
            margin_factor=margin_factor, quiet=quiet))
    if shed and not smoke:
        scenarios.append(_run_shed_scenario(
            workers=workers, paths=paths, deadline_ms=deadline_ms,
            recovery_budget=recovery_budget, quiet=quiet))
    verdicts = {scenario["name"]: scenario["gate"]["passed"]
                for scenario in scenarios}
    gate = {
        "recovery_budget_seconds": recovery_budget,
        "error_rate_margin": margin,
        "margin_factor": margin_factor,
        "scenarios": verdicts,
        "passed": bool(verdicts) and all(verdicts.values()),
    }
    return {
        "bench": "serve-availability-matrix",
        "config": {
            "workers": workers, "deadline_ms": deadline_ms,
            "kinds": list(kinds), "smoke": smoke,
        },
        "scenarios": scenarios,
        "matrix": _matrix_rows(scenarios),
        "gate": gate,
    }


# -- CLI -------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.avail",
        description="Availability chaos matrix: one campaign per "
                    "serve-domain fault kind, supervised vs "
                    "unsupervised (and elastic vs static) pools under "
                    "closed-loop load, with per-scenario recovery and "
                    "error-margin gates.")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--deadline-ms", type=float, default=500.0,
                        help="per-request budget stamped by the load "
                             "generator (default %(default)s)")
    parser.add_argument("--kinds", default=None,
                        help="comma-separated fault kinds to run "
                             "(default: the full matrix, or the smoke "
                             "subset with --smoke)")
    parser.add_argument("--plan", metavar="FILE", default=None,
                        help="fault plan JSON overriding the built-in "
                             "schedule of the matching kind; "
                             "validated against --workers at load "
                             "time")
    parser.add_argument("--recovery-budget", type=float,
                        default=DEFAULT_RECOVERY_BUDGET)
    parser.add_argument("--margin", type=float,
                        default=DEFAULT_ERROR_RATE_MARGIN,
                        help="worker_kill absolute hard-error-rate "
                             "margin (default %(default)s)")
    parser.add_argument("--margin-factor", type=float, default=None,
                        help="required unsupervised/supervised hard-"
                             "error ratio for the new kinds (default "
                             f"{DEFAULT_MARGIN_FACTOR:g}, "
                             f"{SMOKE_MARGIN_FACTOR:g} with --smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI sizing: correlated_kill + "
                             "probe_blackhole only, short campaigns, "
                             "reduced margin factor")
    parser.add_argument("--no-shed", action="store_true",
                        help="skip the shed_pressure elastic scenario")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write BENCH_avail.json here (atomic)")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    margin_factor = args.margin_factor if args.margin_factor \
        is not None else (SMOKE_MARGIN_FACTOR if args.smoke
                          else DEFAULT_MARGIN_FACTOR)
    kinds = [kind.strip() for kind in args.kinds.split(",")] \
        if args.kinds else None
    plan = FaultPlan.from_file(args.plan) if args.plan else None
    result = run_matrix(
        workers=args.workers, deadline_ms=args.deadline_ms,
        kinds=kinds, plan=plan,
        recovery_budget=args.recovery_budget, margin=args.margin,
        margin_factor=margin_factor, smoke=args.smoke,
        shed=not args.no_shed, quiet=args.quiet)
    rendered = json.dumps(result, indent=2, sort_keys=True)
    if args.out:
        from repro.recovery.atomic import atomic_write_text
        atomic_write_text(Path(args.out), rendered + "\n")
        if not args.quiet:
            print(f"avail: results written to {args.out}", flush=True)
    else:
        print(rendered)
    gate = result["gate"]
    if not args.quiet:
        verdict = "PASS" if gate["passed"] else "FAIL"
        scenarios = " ".join(
            f"{name}={'ok' if passed else 'FAIL'}"
            for name, passed in sorted(gate["scenarios"].items()))
        print(f"avail: {verdict} -- {scenarios}", flush=True)
    return 0 if gate["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
