"""The availability chaos gate: does supervision actually help?

``python -m repro.serve.avail`` runs the same seeded worker-kill
campaign twice against a 2+ worker SO_REUSEPORT pool under closed-loop
load -- once with the :class:`~repro.serve.supervisor.WorkerSupervisor`
restarting dead workers, once with restarts disabled -- and gates on
the difference:

* the supervised pool must return to full health within the recovery
  budget after every kill (time-to-healthy measured from the
  supervisor's own event log);
* the supervised campaign's hard error rate (transport failures +
  non-shed 5xx) must beat the unsupervised one by at least the margin;
* a post-recovery verification step against the supervised pool must
  complete with zero hard errors.

The kill schedule is a :class:`~repro.faults.plan.FaultPlan` of
``worker_kill`` specs (targets like ``serve:worker-0``), so campaigns
are seeded, replayable JSON like every other chaos schedule in the
repo.  Results land in ``BENCH_avail.json``; the exit code is the gate.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.faults.plan import FaultPlan, FaultSpec, SERVE_KINDS
from repro.loadgen.client import TargetSet
from repro.loadgen.replay import LoadGenerator, StepScorecard
from repro.serve.supervisor import (
    SupervisorConfig,
    SupervisorThread,
    WorkerSupervisor,
    slot_of_target,
)

#: Per-kill budget for the pool to probe fully healthy again: spawn
#: cost (~2 s for a spawn-context worker) + backoff + one probe pass.
DEFAULT_RECOVERY_BUDGET = 12.0

#: The supervised campaign must beat the unsupervised one by at least
#: this much hard error rate.
DEFAULT_ERROR_RATE_MARGIN = 0.10

DEFAULT_KILL_SEED = 20150667


def default_kill_plan(workers: int,
                      seed: int = DEFAULT_KILL_SEED,
                      first_kill: float = 2.0,
                      spacing: float = 2.5) -> FaultPlan:
    """Kill every slot once, staggered.

    Killing *all* slots is the point: an unsupervised pool ends with
    zero listeners (every later connection refused), while a supervised
    one climbs back after each kill -- which makes the error-rate
    margin a property of the design, not of load timing.
    """
    return FaultPlan(name="avail-kill", seed=seed, specs=tuple(
        FaultSpec("worker_kill", f"serve:worker-{rank}",
                  first_kill + rank * spacing, 0.5)
        for rank in range(workers)))


def _kill_schedule(plan: FaultPlan, workers: int
                   ) -> list[tuple[float, int]]:
    """[(start, slot)] of the plan's worker kills, in order."""
    schedule = []
    for spec in plan.specs_of(SERVE_KINDS):
        slot = slot_of_target(spec.target)
        if slot is not None and 0 <= slot < workers:
            schedule.append((spec.start, slot))
    return sorted(schedule)


def _time_to_healthy(events: list[dict]) -> list[dict]:
    """Pair each worker exit with the slot's next ready event."""
    recoveries = []
    for position, record in enumerate(events):
        if record["event"] != "worker_exit":
            continue
        healthy_at = None
        for later in events[position + 1:]:
            if later["event"] == "ready" \
                    and later.get("slot") == record.get("slot"):
                healthy_at = later["t"]
                break
        recoveries.append({
            "slot": record.get("slot"),
            "killed_at": record["t"],
            "healthy_at": healthy_at,
            "time_to_healthy":
                round(healthy_at - record["t"], 3)
                if healthy_at is not None else None,
        })
    return recoveries


def _run_campaign(supervised: bool, plan: FaultPlan, *,
                  workers: int, paths: list[str], rps: float,
                  duration: float, deadline_ms: Optional[float],
                  load_workers: int, recovery_budget: float,
                  quiet: bool) -> dict[str, Any]:
    """One kill campaign under load; returns its result block."""
    from repro.obs import MetricsRegistry
    metrics = MetricsRegistry()
    config = SupervisorConfig(probe_interval=0.25, backoff_base=0.1)
    supervisor = WorkerSupervisor(
        workers, config=config, metrics=metrics,
        auto_restart=supervised, quiet=True)
    runner = SupervisorThread(supervisor).start(timeout=60.0)
    kills: list[dict] = []
    stop_killer = threading.Event()

    def killer(t0: float) -> None:
        for start, slot in _kill_schedule(plan, workers):
            wait = t0 + start - time.monotonic()
            if wait > 0 and stop_killer.wait(wait):
                return
            pid = supervisor.pid_of(slot)
            if pid is not None:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pid = None
            kills.append({"t": round(start, 3), "slot": slot,
                          "pid": pid})

    card: StepScorecard
    verify_card: Optional[StepScorecard] = None
    recovered = False
    try:
        targets = TargetSet.from_urls([runner.url], timeout=2.0)
        with LoadGenerator(targets, paths, workers=load_workers,
                           deadline_ms=deadline_ms) as generator:
            generator.prewarm()
            killer_thread = threading.Thread(
                target=killer, args=(time.monotonic(),),
                name="avail-killer", daemon=True)
            killer_thread.start()
            card = generator.run_step(rps, duration)
            stop_killer.set()
            killer_thread.join(5.0)
        if supervised:
            deadline = time.monotonic() + recovery_budget
            while time.monotonic() < deadline:
                if supervisor.healthy_workers == workers:
                    recovered = True
                    break
                time.sleep(0.1)
            if recovered:
                # Post-recovery proof on a fresh session pool (the
                # campaign pool holds connections to dead PIDs): the
                # recovered pool must answer with zero hard errors.
                verify_targets = TargetSet.from_urls([runner.url],
                                                    timeout=2.0)
                with LoadGenerator(verify_targets, paths,
                                   workers=load_workers,
                                   deadline_ms=deadline_ms
                                   ) as verifier:
                    verifier.prewarm()
                    verify_card = verifier.run_step(
                        max(10.0, rps / 4), 2.0)
    finally:
        runner.stop()

    events = list(supervisor.events)
    recoveries = _time_to_healthy(events)
    result: dict[str, Any] = {
        "supervised": supervised,
        "workers": workers,
        "kills": kills,
        "load": card.to_dict(),
        "recoveries": recoveries,
        "recovered_full_health": recovered if supervised else False,
        "restarts": supervisor.restarts_total,
        "degraded": supervisor.degraded,
        "events": events,
    }
    if verify_card is not None:
        result["post_recovery"] = verify_card.to_dict()
    if not quiet:
        mode = "supervised" if supervised else "unsupervised"
        print(f"avail: {mode} campaign: "
              f"hard_error_rate={card.hard_error_rate:.4f} "
              f"restarts={supervisor.restarts_total} "
              f"kills={len(kills)}", flush=True)
    return result


def run_gate(*, workers: int = 2, rps: float = 60.0,
             duration: float = 8.0,
             deadline_ms: Optional[float] = 500.0,
             load_workers: int = 4,
             plan: Optional[FaultPlan] = None,
             recovery_budget: float = DEFAULT_RECOVERY_BUDGET,
             margin: float = DEFAULT_ERROR_RATE_MARGIN,
             trace_scale: float = 0.01, trace_seed: int = 7,
             trace_limit: int = 4000,
             quiet: bool = False) -> dict[str, Any]:
    """Both campaigns plus the gate verdict, as the BENCH payload."""
    from repro.loadgen.trace import load_or_generate_paths
    plan = plan if plan is not None else default_kill_plan(workers)
    paths = load_or_generate_paths(None, trace_scale, trace_seed,
                                   limit=trace_limit)
    campaigns = {}
    for supervised in (True, False):
        label = "supervised" if supervised else "unsupervised"
        campaigns[label] = _run_campaign(
            supervised, plan, workers=workers, paths=paths, rps=rps,
            duration=duration, deadline_ms=deadline_ms,
            load_workers=load_workers,
            recovery_budget=recovery_budget, quiet=quiet)

    sup, unsup = campaigns["supervised"], campaigns["unsupervised"]
    sup_rate = sup["load"]["hard_error_rate"]
    unsup_rate = unsup["load"]["hard_error_rate"]
    recovery_times = [entry["time_to_healthy"]
                      for entry in sup["recoveries"]]
    recovered_within_budget = (
        sup["recovered_full_health"]
        and bool(recovery_times)
        and all(t is not None and t <= recovery_budget
                for t in recovery_times))
    post = sup.get("post_recovery")
    post_clean = post is not None and post["hard_errors"] == 0
    gate = {
        "recovery_budget_seconds": recovery_budget,
        "recovered_within_budget": recovered_within_budget,
        "error_rate_margin": margin,
        "supervised_hard_error_rate": sup_rate,
        "unsupervised_hard_error_rate": unsup_rate,
        "margin_met": unsup_rate - sup_rate >= margin,
        "post_recovery_clean": post_clean,
    }
    gate["passed"] = bool(gate["recovered_within_budget"]
                          and gate["margin_met"]
                          and gate["post_recovery_clean"])
    return {
        "bench": "serve-availability",
        "plan": {"name": plan.name, "seed": plan.seed,
                 "kills": [spec.to_dict()
                           for spec in plan.specs_of(SERVE_KINDS)]},
        "config": {
            "workers": workers, "rps": rps, "duration": duration,
            "deadline_ms": deadline_ms,
            "load_workers": load_workers,
        },
        "campaigns": campaigns,
        "gate": gate,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.avail",
        description="Worker-kill availability campaign: supervised "
                    "vs unsupervised pool under closed-loop load, "
                    "with a recovery + error-rate gate.")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--rps", type=float, default=60.0)
    parser.add_argument("--duration", type=float, default=8.0)
    parser.add_argument("--deadline-ms", type=float, default=500.0,
                        help="per-request budget stamped by the load "
                             "generator (default %(default)s)")
    parser.add_argument("--load-workers", type=int, default=4)
    parser.add_argument("--plan", metavar="FILE", default=None,
                        help="worker_kill fault plan JSON; the "
                             "built-in kill-every-slot schedule when "
                             "omitted")
    parser.add_argument("--recovery-budget", type=float,
                        default=DEFAULT_RECOVERY_BUDGET)
    parser.add_argument("--margin", type=float,
                        default=DEFAULT_ERROR_RATE_MARGIN)
    parser.add_argument("--smoke", action="store_true",
                        help="short smoke sizing for CI "
                             "(6 s campaign, 40 rps)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write BENCH_avail.json here (atomic)")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        args.rps = min(args.rps, 40.0)
        args.duration = min(args.duration, 6.0)
    plan = FaultPlan.from_file(args.plan) if args.plan else None
    result = run_gate(
        workers=args.workers, rps=args.rps, duration=args.duration,
        deadline_ms=args.deadline_ms, load_workers=args.load_workers,
        plan=plan, recovery_budget=args.recovery_budget,
        margin=args.margin, quiet=args.quiet)
    rendered = json.dumps(result, indent=2, sort_keys=True)
    if args.out:
        from repro.recovery.atomic import atomic_write_text
        atomic_write_text(Path(args.out), rendered + "\n")
        if not args.quiet:
            print(f"avail: results written to {args.out}", flush=True)
    else:
        print(rendered)
    gate = result["gate"]
    if not args.quiet:
        verdict = "PASS" if gate["passed"] else "FAIL"
        print(f"avail: {verdict} -- recovered_within_budget="
              f"{gate['recovered_within_budget']} margin_met="
              f"{gate['margin_met']} post_recovery_clean="
              f"{gate['post_recovery_clean']}", flush=True)
    return 0 if gate["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
