"""``python -m repro.serve`` -- run the ODR serving tier.

Engines:

* ``async`` (default) -- the asyncio tier: keep-alive connections,
  bounded admission control, same-tick batched decision evaluation,
  ``/metrics``; with ``--workers N`` it becomes N ``SO_REUSEPORT``
  processes sharing the port.
* ``thread`` -- the legacy ``ThreadingHTTPServer`` tier (PR 5
  semantics), kept as the baseline the bench harness compares against.

Examples::

    python -m repro.serve --port 8034                  # async, 1 loop
    python -m repro.serve --workers 4                  # SO_REUSEPORT x4
    python -m repro.serve --engine thread              # legacy tier
    python -m repro.serve --faults examples/serve_chaos_plan.json
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.serve.admission import DEFAULT_MAX_INFLIGHT


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run the ODR decision service "
                    "(async serving tier or the legacy threaded one).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8034,
                        help="0 picks a free port and prints it "
                             "(default %(default)s)")
    parser.add_argument("--engine", choices=("async", "thread"),
                        default="async",
                        help="serving engine (default %(default)s)")
    parser.add_argument("--workers", type=int, default=1,
                        help="async engine only: SO_REUSEPORT worker "
                             "processes (default %(default)s)")
    parser.add_argument("--max-inflight", type=int,
                        default=DEFAULT_MAX_INFLIGHT,
                        help="admission-control cap on concurrent "
                             "requests; the excess is shed with "
                             "503 + Retry-After (default %(default)s)")
    parser.add_argument("--policy", default="odr",
                        help="default routing policy (a registry "
                             "strategy name, e.g. delay-aware); "
                             "requests may override per call with "
                             "?policy=... (default %(default)s)")
    parser.add_argument("--no-batch", action="store_true",
                        help="disable same-tick coalescing of /decide "
                             "requests")
    parser.add_argument("--supervise", action="store_true",
                        help="run the worker pool under the parent "
                             "supervisor: per-worker health probes, "
                             "backoff restarts, restart-storm "
                             "breaker (needs --workers >= 2)")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="with --supervise: elastic-capacity "
                             "ceiling -- the supervisor grows the pool "
                             "toward this size under sustained "
                             "admission/deadline shed pressure and "
                             "shrinks back after a quiet window "
                             "(default: fixed pool)")
    parser.add_argument("--no-resilience", action="store_true",
                        help="disable the backend circuit breaker")
    parser.add_argument("--faults", metavar="PLAN", default=None,
                        help="inject a fault plan into the serving "
                             "tier (windows anchored at server start)")
    parser.add_argument("--grace", type=float, default=10.0,
                        help="drain grace on SIGTERM/SIGINT, seconds "
                             "(default %(default)s)")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.backends.registry import strategy_names
    if args.policy not in strategy_names():
        build_parser().error(
            f"unknown --policy {args.policy!r}; "
            f"known: {', '.join(strategy_names())}")
    if args.engine == "thread":
        if args.workers > 1:
            build_parser().error("--workers needs --engine async")
        from repro.core.webapp import make_server, run_server
        from repro.faults.policies import ResiliencePolicies
        policies = None if args.no_resilience else ResiliencePolicies()
        server = make_server(args.port, policies=policies,
                             default_policy=args.policy)
        if not args.quiet:
            print(f"ODR (thread) listening on "
                  f"http://{server.host}:{server.port}/ "
                  f"(Ctrl-C or SIGTERM to stop)", flush=True)
        return run_server(server, grace=args.grace, quiet=args.quiet)

    if args.max_workers is not None and not args.supervise:
        build_parser().error("--max-workers needs --supervise "
                             "(elastic capacity is a supervisor "
                             "feature)")
    if args.faults and args.workers > 1:
        # Serve-domain targets reference concrete slots: fail a typo'd
        # plan here, at load time, not mid-campaign.
        from repro.faults.plan import FaultPlan, validate_serve_plan
        try:
            validate_serve_plan(FaultPlan.from_file(args.faults),
                                args.workers)
        except ValueError as error:
            build_parser().error(f"--faults: {error}")

    if args.supervise:
        if args.workers < 2:
            build_parser().error("--supervise needs --workers >= 2")
        if args.max_workers is not None \
                and args.max_workers < args.workers:
            build_parser().error("--max-workers must be >= --workers")
        from repro.serve.supervisor import run_supervised_pool
        return run_supervised_pool(
            args.workers, args.host, args.port,
            max_inflight=args.max_inflight, batch=not args.no_batch,
            resilience=not args.no_resilience, faults=args.faults,
            default_policy=args.policy, quiet=args.quiet,
            max_workers=args.max_workers)

    if args.workers > 1:
        from repro.serve.workers import run_worker_pool
        return run_worker_pool(
            args.workers, args.host, args.port,
            max_inflight=args.max_inflight, batch=not args.no_batch,
            resilience=not args.no_resilience, faults=args.faults,
            default_policy=args.policy, quiet=args.quiet)

    from repro.faults.policies import ResiliencePolicies
    from repro.obs import MetricsRegistry
    from repro.serve.chaos import load_serve_chaos
    from repro.serve.server import AsyncOdrServer, run_async_server
    metrics = MetricsRegistry()
    policies = None if args.no_resilience else ResiliencePolicies()
    server = AsyncOdrServer(
        host=args.host, port=args.port, policies=policies,
        metrics=metrics, max_inflight=args.max_inflight,
        batch=not args.no_batch,
        chaos=load_serve_chaos(args.faults, metrics=metrics),
        default_policy=args.policy)
    return run_async_server(server, grace=args.grace, quiet=args.quiet)


if __name__ == "__main__":
    raise SystemExit(main())
