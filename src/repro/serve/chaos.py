"""Fault-plan middleware for the serving tier.

Chaos campaigns (PR 4) cover the replay paths; this adapter extends
them to the live HTTP service so a loadgen scorecard can be taken
*under* a fault plan.  The serving tier runs on wall time, so the
adapter anchors the plan's clock at server start: a window with
``start: 5, duration: 10`` is active between 5 and 15 seconds of server
uptime -- which keeps campaign plans short, replayable, and independent
of when the campaign was launched.

Kind semantics at the front door (entity domain as in
:mod:`repro.faults.plan`):

* ``server_crash``  -- the decision backend is dark: requests fail with
  an injected 500 (the breaker and the load generator see real errors);
* ``isp_degrade``   -- the path to the backend is degraded: responses
  are delayed by ``BASE_DELAY * (1/severity - 1)``, capped;
* ``vm_stall``      -- a wedged backend VM: a fixed stall per request.

Everything else in the taxonomy shapes the batch-replay layers and is
ignored here -- except the serve-domain *wedge* kinds, which a
supervised worker applies to itself through :class:`WorkerChaos`:

* ``probe_blackhole`` -- the process is hung: every listener (admin and
  data) still accepts connections via the kernel backlog but nothing is
  ever read or answered;
* ``admin_slowloris`` -- the write path has degraded to a crawl:
  responses go out byte-at-a-time with seconds between bytes, on every
  listener (the admin port is merely where the supervisor notices);
* ``conn_reset``     -- corrupted socket state: accepted connections
  are reset mid-request, admin probes included.

Wedges are *process states*: a worker alive when the window opens
adopts the fault and keeps it until the process dies, and a replacement
started later is clean (see :mod:`repro.faults.plan`).  Their clock is
the supervisor's epoch (one ``time.monotonic()`` origin shared by the
whole pool), so a restarted worker agrees with its siblings about when
a window opened instead of re-anchoring it at its own birth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs.registry import NOOP, AnyRegistry

#: The entity name the serving tier presents to target matching; plans
#: aimed at the front door use ``"*"`` or ``"isp:*"`` targets (or the
#: concrete ``isp:frontend``).
SERVE_ENTITY = "frontend"

#: Base delay (seconds) scaled by the degradation severity.
BASE_DELAY = 0.005

#: Cap on one injected delay so a harsh plan cannot wedge the loop.
MAX_DELAY = 0.5

#: Fixed per-request stall while a vm_stall window is active.
STALL_DELAY = 0.05

#: Seconds between bytes of a slow-lorised response (scaled by the
#: spec's severity).  Deliberately above any sane client timeout: the
#: point is that per-recv socket timeouts never fire because *some*
#: byte always eventually arrives -- only a total-time budget catches
#: it.
SLOWLORIS_BYTE_DELAY = 2.0

#: How long a blackholed connection is parked before being dropped; in
#: practice the process is SIGKILLed long before this.
BLACKHOLE_HANG = 3600.0


@dataclass(frozen=True)
class ChaosVerdict:
    """What the fault plan says about one request: fail and/or delay."""

    fail: bool = False
    delay: float = 0.0
    kind: str = ""

    @property
    def clean(self) -> bool:
        return not self.fail and self.delay <= 0.0


class ServeChaos:
    """Wall-clock fault gate evaluated per admitted request."""

    def __init__(self, injector: FaultInjector,
                 entity: str = SERVE_ENTITY,
                 clock: Callable[[], float] = time.monotonic,
                 metrics: AnyRegistry = NOOP):
        self.injector = injector
        self.entity = entity
        self._clock = clock
        self._origin = clock()
        self._metrics = metrics

    def now(self) -> float:
        """Seconds since the server (and therefore the plan) started."""
        return self._clock() - self._origin

    def unready(self) -> bool:
        """Is the front door inside an injected-failure window?

        Readiness probes (``/healthz``) answer 503 while this holds, so
        supervisors and load balancers steer traffic away *before* the
        chaos gate starts failing real requests.
        """
        return self.injector.active("server_crash", self.entity,
                                    self.now()) is not None

    def verdict(self) -> ChaosVerdict:
        now = self.now()
        crash = self.injector.active("server_crash", self.entity, now)
        if crash is not None:
            self.injector.impact(crash)
            return ChaosVerdict(fail=True, kind="server_crash")
        delay = 0.0
        kind = ""
        factor = self.injector.factor("isp_degrade", self.entity, now)
        if factor < 1.0:
            delay = min(MAX_DELAY, BASE_DELAY * (1.0 / factor - 1.0))
            kind = "isp_degrade"
        stall = self.injector.active("vm_stall", self.entity, now)
        if stall is not None:
            delay += STALL_DELAY * stall.severity
            kind = "vm_stall" if not kind else f"{kind}+vm_stall"
        if delay > 0.0:
            self._metrics.counter("repro_serve_chaos_delays_total",
                                  kind=kind).inc()
        return ChaosVerdict(delay=delay, kind=kind)

    def injected_500(self) -> tuple[int, str, dict[str, str]]:
        """(status, body, headers) of a fault-window failure."""
        import json
        self._metrics.counter("repro_serve_chaos_failures_total").inc()
        return 500, json.dumps(
            {"error": "internal error",
             "detail": "injected fault: decision backend dark "
                       "(server_crash window)"}), {}


class WorkerChaos:
    """Self-applied process-state faults of one supervised worker.

    ``epoch`` is the pool-wide ``time.monotonic()`` origin the plan's
    serve windows are measured from (Linux's CLOCK_MONOTONIC is
    system-wide, so parent and workers share it); when None the worker
    anchors at its own start, which is the right thing for a plain
    unsupervised ``--faults`` run.
    """

    def __init__(self, injector: FaultInjector, rank: int,
                 epoch: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic,
                 metrics: AnyRegistry = NOOP):
        self.injector = injector
        self.entity = f"worker-{rank}"
        self._clock = clock
        self._origin = clock() if epoch is None else epoch
        self._born = self._clock() - self._origin
        self._metrics = metrics
        self._reported: set[str] = set()

    def now(self) -> float:
        return self._clock() - self._origin

    def wedge(self) -> Optional[FaultSpec]:
        """The wedge this process carries right now, or None.

        Adoption follows :meth:`FaultInjector.wedged`: only windows
        that opened during this process's lifetime apply, and they
        never clear -- a wedge outlives its window until the process is
        restarted.
        """
        spec = self.injector.wedged(self.entity, self._born, self.now())
        if spec is not None and spec.key not in self._reported:
            self._reported.add(spec.key)
            self._metrics.counter("repro_serve_wedges_total",
                                  kind=spec.kind).inc()
        return spec


def load_serve_chaos(plan_path: Optional[Union[str, Path]],
                     metrics: AnyRegistry = NOOP
                     ) -> Optional[ServeChaos]:
    """Build the gate from ``--faults PLAN``; None when chaos is off."""
    if plan_path is None:
        return None
    plan = FaultPlan.from_file(plan_path)
    return ServeChaos(FaultInjector(plan, metrics=metrics),
                      metrics=metrics)


def load_worker_chaos(plan_path: Optional[Union[str, Path]],
                      rank: Optional[int],
                      epoch: Optional[float] = None,
                      metrics: AnyRegistry = NOOP
                      ) -> Optional[WorkerChaos]:
    """The wedge gate of one worker, or None when the plan has no
    serve-domain wedge specs (the common case costs nothing)."""
    from repro.faults.plan import WEDGE_KINDS
    if plan_path is None or rank is None:
        return None
    plan = FaultPlan.from_file(plan_path)
    if not plan.specs_of(WEDGE_KINDS):
        return None
    return WorkerChaos(FaultInjector(plan, metrics=metrics), rank,
                       epoch=epoch, metrics=metrics)
