"""Multi-worker serving: N event loops sharing one port.

One asyncio loop saturates one core; the way past that without a load
balancer is ``SO_REUSEPORT``: every worker process binds the same
``(host, port)`` and the kernel distributes accepted connections across
them.  Workers are plain OS processes (spawn-safe entry point below),
each running its own :class:`~repro.serve.server.AsyncOdrServer` with
its own app state.

State caveat, documented rather than hidden: each worker has an
independent content database, breaker, and metrics registry -- exactly
like independent replicas behind a kernel load balancer.  The paper's
ODR is stateless per request (auxiliary info rides in the cookie), so
decisions do not change across workers; only per-worker popularity
seeding differs until every worker has seen a file once.
"""

from __future__ import annotations

import multiprocessing
import signal
import socket
from typing import Optional


def _worker_main(host: str, port: int, max_inflight: int,
                 batch: bool, resilience: bool,
                 faults: Optional[str], quiet: bool,
                 default_policy: str = "odr") -> None:
    """Spawn-safe worker entry: one async server on a shared port."""
    from repro.faults.policies import ResiliencePolicies
    from repro.obs import MetricsRegistry
    from repro.serve.chaos import load_serve_chaos
    from repro.serve.server import AsyncOdrServer, run_async_server

    metrics = MetricsRegistry()
    policies = ResiliencePolicies() if resilience else None
    server = AsyncOdrServer(
        host=host, port=port, policies=policies, metrics=metrics,
        max_inflight=max_inflight, batch=batch,
        chaos=load_serve_chaos(faults, metrics=metrics),
        reuse_port=True, default_policy=default_policy)
    raise SystemExit(run_async_server(server, quiet=quiet,
                                      announce=False))


def probe_reuse_port(host: str = "127.0.0.1") -> int:
    """Reserve a concrete port usable with SO_REUSEPORT.

    Workers must agree on a non-zero port before binding; this binds
    port 0 once *with* SO_REUSEPORT to learn a free port that later
    worker binds can share.
    """
    if not hasattr(socket, "SO_REUSEPORT"):
        raise OSError("SO_REUSEPORT unsupported on this platform")
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    probe.bind((host, 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def run_worker_pool(workers: int, host: str, port: int, *,
                    max_inflight: int, batch: bool = True,
                    resilience: bool = True,
                    faults: Optional[str] = None,
                    default_policy: str = "odr",
                    quiet: bool = False) -> int:
    """Run ``workers`` SO_REUSEPORT processes; SIGTERM fans out.

    Returns 0 when every worker drained cleanly, else the worst worker
    exit code.
    """
    if workers < 2:
        raise ValueError("run_worker_pool needs >= 2 workers; use "
                         "run_async_server for one")
    if port == 0:
        port = probe_reuse_port(host)
    context = multiprocessing.get_context("spawn")
    pool = [context.Process(
        target=_worker_main,
        args=(host, port, max_inflight, batch, resilience,
              faults, quiet, default_policy),
        name=f"odr-worker-{rank}", daemon=False)
        for rank in range(workers)]
    for process in pool:
        process.start()
    if not quiet:
        print(f"ODR (async x{workers} via SO_REUSEPORT) listening on "
              f"http://{host}:{port}/ (Ctrl-C or SIGTERM to stop)",
              flush=True)

    def _forward(signum, _frame):   # noqa: ARG001 - signal API
        for process in pool:
            if process.is_alive() and process.pid is not None:
                try:
                    import os
                    os.kill(process.pid, signal.SIGTERM)
                except ProcessLookupError:   # pragma: no cover - race
                    pass

    previous = {signum: signal.signal(signum, _forward)
                for signum in (signal.SIGINT, signal.SIGTERM)}
    try:
        for process in pool:
            process.join()
    except KeyboardInterrupt:   # pragma: no cover - interactive
        _forward(signal.SIGINT, None)
        for process in pool:
            process.join()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return max((process.exitcode or 0) for process in pool)
