"""Multi-worker serving: N event loops sharing one port.

One asyncio loop saturates one core; the way past that without a load
balancer is ``SO_REUSEPORT``: every worker process binds the same
``(host, port)`` and the kernel distributes accepted connections across
them.  Workers are plain OS processes (spawn-safe entry point below),
each running its own :class:`~repro.serve.server.AsyncOdrServer` with
its own app state.

State caveat, documented rather than hidden: each worker has an
independent content database, breaker, and metrics registry -- exactly
like independent replicas behind a kernel load balancer.  The paper's
ODR is stateless per request (auxiliary info rides in the cookie), so
decisions do not change across workers; only per-worker popularity
seeding differs until every worker has seen a file once.

Supervised workers (see :mod:`repro.serve.supervisor`) additionally
bind a private *admin* listener and report its port back through a
pipe: the shared SO_REUSEPORT address load-balances, so a health probe
of one specific worker needs its own door.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import time
from typing import Any, Optional

#: Test hook: ``"rank:exitcode"`` makes the worker of that rank exit
#: with that code right after start -- the supervised twin of the
#: ``REPRO_RECOVERY_CRASH`` crash-hook used by the recovery tests.
CRASH_ENV = "REPRO_SERVE_WORKER_CRASH"

#: How long the pool waits for a SIGTERMed worker to drain before the
#: SIGKILL escalation.
DEFAULT_JOIN_TIMEOUT = 15.0


def _maybe_crash(rank: Optional[int]) -> None:
    spec = os.environ.get(CRASH_ENV, "")
    if not spec or rank is None:
        return
    crash_rank, _sep, code = spec.partition(":")
    try:
        if int(crash_rank) == rank:
            raise SystemExit(int(code or "9"))
    except ValueError:
        return   # malformed hook: ignore rather than kill the pool


def _worker_main(host: str, port: int, max_inflight: int,
                 batch: bool, resilience: bool,
                 faults: Optional[str], quiet: bool,
                 default_policy: str = "odr",
                 rank: Optional[int] = None,
                 admin_pipe: Optional[Any] = None,
                 chaos_epoch: Optional[float] = None) -> None:
    """Spawn-safe worker entry: one async server on a shared port.

    ``chaos_epoch`` is the pool-wide ``time.monotonic()`` origin that
    serve-domain fault windows are measured from (the supervisor's
    start), so a restarted worker agrees with its siblings about when a
    window opened instead of re-anchoring the plan at its own birth.
    """
    _maybe_crash(rank)
    from repro.faults.policies import ResiliencePolicies
    from repro.obs import MetricsRegistry
    from repro.serve.chaos import load_serve_chaos, load_worker_chaos
    from repro.serve.server import AsyncOdrServer, run_async_server

    metrics = MetricsRegistry()
    policies = ResiliencePolicies() if resilience else None
    server = AsyncOdrServer(
        host=host, port=port, policies=policies, metrics=metrics,
        max_inflight=max_inflight, batch=batch,
        chaos=load_serve_chaos(faults, metrics=metrics),
        worker_chaos=load_worker_chaos(faults, rank, epoch=chaos_epoch,
                                       metrics=metrics),
        reuse_port=True, default_policy=default_policy,
        admin_port=0 if admin_pipe is not None else None)

    def report_started() -> None:
        if admin_pipe is None:
            return
        try:
            admin_pipe.send({"rank": rank, "pid": os.getpid(),
                             "admin_port": server.admin_port})
        finally:
            admin_pipe.close()

    raise SystemExit(run_async_server(server, quiet=quiet,
                                      announce=False,
                                      on_started=report_started))


def probe_reuse_port(host: str = "127.0.0.1") -> int:
    """Reserve a concrete port usable with SO_REUSEPORT.

    Workers must agree on a non-zero port before binding; this binds
    port 0 once *with* SO_REUSEPORT to learn a free port that later
    worker binds can share.
    """
    if not hasattr(socket, "SO_REUSEPORT"):
        raise OSError("SO_REUSEPORT unsupported on this platform")
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    probe.bind((host, 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def terminate_pool(pool: list, *, join_timeout: float,
                   quiet: bool = False) -> dict[str, int]:
    """SIGTERM every live worker, join with a timeout, escalate to
    SIGKILL for stragglers.  Returns ``{name: exitcode}``."""
    for process in pool:
        if process.is_alive() and process.pid is not None:
            try:
                os.kill(process.pid, signal.SIGTERM)
            except ProcessLookupError:   # pragma: no cover - race
                pass
    deadline = time.monotonic() + join_timeout
    for process in pool:
        process.join(max(0.0, deadline - time.monotonic()))
    killed = []
    for process in pool:
        if process.is_alive():
            killed.append(process.name)
            process.kill()
            process.join(5.0)
    if killed and not quiet:
        print(f"escalated to SIGKILL after {join_timeout:g}s: "
              f"{', '.join(killed)}", flush=True)
    return {process.name: (process.exitcode
                           if process.exitcode is not None else -9)
            for process in pool}


def summarize_exits(exit_codes: dict[str, int]) -> str:
    """One line per worker for the CLI shutdown summary."""
    def describe(code: int) -> str:
        if code == 0:
            return "clean drain"
        if code < 0:
            return f"killed by signal {-code}"
        return f"exit code {code}"
    return "\n".join(f"  {name}: {describe(code)}"
                     for name, code in sorted(exit_codes.items()))


def run_worker_pool(workers: int, host: str, port: int, *,
                    max_inflight: int, batch: bool = True,
                    resilience: bool = True,
                    faults: Optional[str] = None,
                    default_policy: str = "odr",
                    quiet: bool = False,
                    join_timeout: float = DEFAULT_JOIN_TIMEOUT) -> int:
    """Run ``workers`` SO_REUSEPORT processes; SIGTERM fans out.

    Shutdown is two-stage: the stop signal is forwarded to every worker
    (graceful drain), the join waits ``join_timeout`` seconds, and
    stragglers are SIGKILLed so the pool never wedges on one worker.
    Returns 0 when every worker drained cleanly, else the worst worker
    exit code (SIGKILLed workers report 137-style negative codes).
    """
    if workers < 2:
        raise ValueError("run_worker_pool needs >= 2 workers; use "
                         "run_async_server for one")
    if port == 0:
        port = probe_reuse_port(host)
    context = multiprocessing.get_context("spawn")
    chaos_epoch = time.monotonic()
    pool = [context.Process(
        target=_worker_main,
        args=(host, port, max_inflight, batch, resilience,
              faults, quiet, default_policy, rank, None, chaos_epoch),
        name=f"odr-worker-{rank}", daemon=False)
        for rank in range(workers)]
    for process in pool:
        process.start()
    if not quiet:
        print(f"ODR (async x{workers} via SO_REUSEPORT) listening on "
              f"http://{host}:{port}/ (Ctrl-C or SIGTERM to stop)",
              flush=True)

    stopping = {"flag": False}

    def _forward(signum, _frame):   # noqa: ARG001 - signal API
        stopping["flag"] = True

    previous = {signum: signal.signal(signum, _forward)
                for signum in (signal.SIGINT, signal.SIGTERM)}
    exit_codes: dict[str, int] = {}
    try:
        # Poll rather than block in join(): the signal handler only
        # flips a flag, so the loop stays responsive to SIGTERM and a
        # worker that dies on its own is noticed within a tick.
        while not stopping["flag"] \
                and any(process.is_alive() for process in pool):
            time.sleep(0.1)
    except KeyboardInterrupt:   # pragma: no cover - interactive
        stopping["flag"] = True
    finally:
        exit_codes = terminate_pool(pool, join_timeout=join_timeout,
                                    quiet=quiet)
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    if not quiet:
        print("worker pool shut down:\n"
              + summarize_exits(exit_codes), flush=True)
    return max((abs(code) for code in exit_codes.values()),
               default=0) if any(exit_codes.values()) else 0
