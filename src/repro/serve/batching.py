"""Same-tick request coalescing for the asyncio serving tier.

Under load, many ``/decide`` requests become readable in the same event
-loop iteration.  Handling them one by one pays the decision pipeline's
fixed costs (breaker admission, clock read, allocator/database lock)
once *per request*; the :class:`DecisionBatcher` pays them once per
*tick*: every request submitted while the loop is busy is queued, and a
``call_soon`` drain evaluates the whole queue through
:meth:`~repro.core.webapp.OdrWebApp.handle_batch` in one pass.

Latency cost is bounded by construction: the drain callback is
scheduled the moment the first request of a tick arrives, so an idle
server still answers in the same iteration -- batching only *appears*
when concurrency does.

Deadline budgets propagate through the batcher: an entry whose
``X-Deadline-Ms`` budget has already expired is answered ``504``
*before* dispatch (no decision work for an answer nobody waits for),
and the executor pass re-checks each entry when it actually starts, so
work whose deadline lapsed while queued on the thread pool is no-opped
instead of evaluated.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from repro.core.webapp import OdrWebApp, Response
from repro.obs.registry import NOOP, AnyRegistry
from repro.serve.admission import deadline_response

#: Upper bound on one coalesced pass, so a drain never monopolises the
#: loop; the remainder re-schedules itself onto the next tick.
DEFAULT_MAX_BATCH = 512


class DecisionBatcher:
    """Coalesces concurrently-arriving requests into one batch pass."""

    def __init__(self, app: OdrWebApp, metrics: AnyRegistry = NOOP,
                 max_batch: int = DEFAULT_MAX_BATCH):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.app = app
        self.max_batch = max_batch
        self._metrics = metrics
        self._pending: list[tuple[str, str, Optional[float],
                                  asyncio.Future]] = []
        self._drain_scheduled = False
        self.batches = 0
        self.batched_requests = 0
        self.expired = 0

    def submit(self, path: str, cookie_header: str,
               deadline: Optional[float] = None
               ) -> "asyncio.Future[Response]":
        """Queue one request; the future resolves with its Response.

        ``deadline`` is an absolute ``time.monotonic()`` instant after
        which the caller no longer wants the answer.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((path, cookie_header, deadline, future))
        if not self._drain_scheduled:
            self._drain_scheduled = True
            loop.call_soon(self._drain)
        return future

    def _expire(self, future: asyncio.Future, stage: str) -> None:
        self.expired += 1
        self._metrics.counter("repro_serve_deadline_sheds_total",
                              stage=stage).inc()
        if not future.done():
            future.set_result(deadline_response(stage))

    def _drain(self) -> None:
        batch = self._pending[:self.max_batch]
        del self._pending[:self.max_batch]
        if self._pending:
            # Oversized tick: keep draining next iteration.
            asyncio.get_running_loop().call_soon(self._drain)
        else:
            self._drain_scheduled = False
        if not batch:
            return
        # Expired entries are answered here, before dispatch: they hold
        # an admission slot but cost no decision work.
        now = time.monotonic()
        live = []
        for path, cookie, deadline, future in batch:
            if deadline is not None and now > deadline:
                self._expire(future, "batch")
            else:
                live.append((path, cookie, deadline, future))
        if not live:
            return
        self.batches += 1
        self.batched_requests += len(live)
        self._metrics.histogram("repro_serve_batch_size").observe(
            float(len(live)))
        # handle_batch is synchronous; evaluating it on the loop would
        # stall every connection for the whole pass, so it runs on the
        # default executor while the loop collects the next batch.
        task = asyncio.ensure_future(self._evaluate(live))
        task.add_done_callback(lambda _task: None)

    def _execute_batch(self, items: list[tuple[str, str,
                                               Optional[float]]]
                       ) -> list[Optional[Response]]:
        """Executor-side pass: no-op entries that expired while queued
        on the thread pool, evaluate the rest in one handle_batch."""
        now = time.monotonic()
        responses: list[Optional[Response]] = [None] * len(items)
        live_index: list[int] = []
        live_requests: list[tuple[str, str, Optional[float]]] = []
        for position, (path, cookie, deadline) in enumerate(items):
            if deadline is not None and now > deadline:
                responses[position] = deadline_response("execute")
                self.expired += 1
                self._metrics.counter(
                    "repro_serve_deadline_sheds_total",
                    stage="execute").inc()
            else:
                live_index.append(position)
                # The deadline rides into handle_batch so the policy
                # layer can rank against the remaining budget.
                live_requests.append((path, cookie, deadline))
        if live_requests:
            for position, response in zip(
                    live_index, self.app.handle_batch(live_requests)):
                responses[position] = response
        return responses

    async def _evaluate(self, batch: list[tuple[str, str,
                                                Optional[float],
                                                asyncio.Future]]
                        ) -> None:
        loop = asyncio.get_running_loop()
        try:
            responses = await loop.run_in_executor(
                None, self._execute_batch,
                [(path, cookie, deadline)
                 for path, cookie, deadline, _future in batch])
        except Exception as error:   # noqa: BLE001 - boundary
            for _path, _cookie, _deadline, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        for (_path, _cookie, _deadline, future), response \
                in zip(batch, responses):
            if not future.done():
                future.set_result(response)

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches \
            else 0.0

    @property
    def pending(self) -> int:
        return len(self._pending)


def optional_batcher(app: OdrWebApp, enabled: bool,
                     metrics: AnyRegistry = NOOP
                     ) -> Optional[DecisionBatcher]:
    return DecisionBatcher(app, metrics=metrics) if enabled else None
