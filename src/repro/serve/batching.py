"""Same-tick request coalescing for the asyncio serving tier.

Under load, many ``/decide`` requests become readable in the same event
-loop iteration.  Handling them one by one pays the decision pipeline's
fixed costs (breaker admission, clock read, allocator/database lock)
once *per request*; the :class:`DecisionBatcher` pays them once per
*tick*: every request submitted while the loop is busy is queued, and a
``call_soon`` drain evaluates the whole queue through
:meth:`~repro.core.webapp.OdrWebApp.handle_batch` in one pass.

Latency cost is bounded by construction: the drain callback is
scheduled the moment the first request of a tick arrives, so an idle
server still answers in the same iteration -- batching only *appears*
when concurrency does.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.core.webapp import OdrWebApp, Response
from repro.obs.registry import NOOP, AnyRegistry

#: Upper bound on one coalesced pass, so a drain never monopolises the
#: loop; the remainder re-schedules itself onto the next tick.
DEFAULT_MAX_BATCH = 512


class DecisionBatcher:
    """Coalesces concurrently-arriving requests into one batch pass."""

    def __init__(self, app: OdrWebApp, metrics: AnyRegistry = NOOP,
                 max_batch: int = DEFAULT_MAX_BATCH):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.app = app
        self.max_batch = max_batch
        self._metrics = metrics
        self._pending: list[tuple[str, str, asyncio.Future]] = []
        self._drain_scheduled = False
        self.batches = 0
        self.batched_requests = 0

    def submit(self, path: str, cookie_header: str
               ) -> "asyncio.Future[Response]":
        """Queue one request; the future resolves with its Response."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((path, cookie_header, future))
        if not self._drain_scheduled:
            self._drain_scheduled = True
            loop.call_soon(self._drain)
        return future

    def _drain(self) -> None:
        batch = self._pending[:self.max_batch]
        del self._pending[:self.max_batch]
        if self._pending:
            # Oversized tick: keep draining next iteration.
            asyncio.get_running_loop().call_soon(self._drain)
        else:
            self._drain_scheduled = False
        if not batch:
            return
        self.batches += 1
        self.batched_requests += len(batch)
        self._metrics.histogram("repro_serve_batch_size").observe(
            float(len(batch)))
        # handle_batch is synchronous; evaluating it on the loop would
        # stall every connection for the whole pass, so it runs on the
        # default executor while the loop collects the next batch.
        task = asyncio.ensure_future(self._evaluate(batch))
        task.add_done_callback(lambda _task: None)

    async def _evaluate(self, batch: list[tuple[str, str,
                                                asyncio.Future]]
                        ) -> None:
        loop = asyncio.get_running_loop()
        try:
            responses = await loop.run_in_executor(
                None, self.app.handle_batch,
                [(path, cookie) for path, cookie, _future in batch])
        except Exception as error:   # noqa: BLE001 - boundary
            for _path, _cookie, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        for (_path, _cookie, future), response in zip(batch, responses):
            if not future.done():
                future.set_result(response)

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches \
            else 0.0

    @property
    def pending(self) -> int:
        return len(self._pending)


def optional_batcher(app: OdrWebApp, enabled: bool,
                     metrics: AnyRegistry = NOOP
                     ) -> Optional[DecisionBatcher]:
    return DecisionBatcher(app, metrics=metrics) if enabled else None
