"""``python -m repro.serve.bench`` -- async vs threaded saturation ramp.

Boots each serving engine as its own subprocess (so the load generator
never shares a GIL with the tier it is measuring), replays the same
trace slice through the same stepped ramp against both, and writes the
side-by-side scorecards to ``BENCH_serve.json``:

* ``engines.async`` / ``engines.thread`` -- the full per-step SLO
  scorecard of each tier (see :func:`repro.loadgen.ramp.scorecard`);
* ``saturation`` -- each tier's saturation RPS (highest achieved
  throughput among SLO-healthy steps) and the async/thread ratio;
* ``so_reuseport`` (with ``--workers N``) -- the async tier ramped
  again as an N-process ``SO_REUSEPORT`` pool, recorded as the
  pool-over-single-loop scaling ratio.

The legacy tier answers ``Connection: close`` on every response, so
each request pays a fresh TCP handshake; the async tier keeps
connections alive, batches same-tick decisions, and sheds overload
instead of queueing it -- the ramp makes that difference a number.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.loadgen.client import TargetSet
from repro.loadgen.ramp import (
    DEFAULT_ACHIEVED_FLOOR,
    baseline_p99,
    ramp_rates,
    scorecard,
    step_healthy,
)
from repro.loadgen.replay import LoadGenerator
from repro.loadgen.trace import load_or_generate_paths

#: How long to wait for a freshly launched engine's /healthz.
BOOT_TIMEOUT = 15.0


def free_port(host: str = "127.0.0.1") -> int:
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def wait_healthy(host: str, port: int,
                 timeout: float = BOOT_TIMEOUT) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            connection = http.client.HTTPConnection(host, port,
                                                    timeout=1.0)
            connection.request("GET", "/healthz")
            healthy = connection.getresponse().status == 200
            connection.close()
            if healthy:
                return True
        except OSError:
            time.sleep(0.05)
    return False


class EngineProcess:
    """One serving engine running as a child process."""

    def __init__(self, engine: str, port: int, *,
                 workers: int = 1, max_inflight: int = 128,
                 host: str = "127.0.0.1"):
        self.engine = engine
        self.host = host
        self.port = port
        command = [sys.executable, "-m", "repro.serve",
                   "--engine", engine, "--host", host,
                   "--port", str(port), "--quiet"]
        if engine == "async":
            command += ["--max-inflight", str(max_inflight)]
            if workers > 1:
                command += ["--workers", str(workers)]
        environment = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = src if not existing \
            else f"{src}{os.pathsep}{existing}"
        self.process = subprocess.Popen(
            command, env=environment,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def wait_ready(self) -> None:
        if not wait_healthy(self.host, self.port):
            self.stop()
            raise RuntimeError(
                f"{self.engine} engine never became healthy on "
                f"port {self.port}")

    def stop(self, grace: float = 5.0) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()

    def __enter__(self) -> "EngineProcess":
        self.wait_ready()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def ramp_engine(engine: str, paths: list[str], rates: list[float],
                duration: float, *,
                workers: int = 1, max_inflight: int = 128,
                loadgen_workers: int = 8,
                max_concurrency: int = 64,
                achieved_floor: float = DEFAULT_ACHIEVED_FLOOR,
                settle: float = 0.25,
                quiet: bool = False) -> dict[str, Any]:
    """Boot ``engine`` in a subprocess and ramp it to saturation."""
    with EngineProcess(engine, free_port(), workers=workers,
                       max_inflight=max_inflight) as child:
        targets = TargetSet.from_urls(
            [child.url], max_concurrency=max_concurrency)
        with LoadGenerator(targets, paths,
                           workers=loadgen_workers) as generator:
            generator.prewarm()
            cards = []
            for rate in rates:
                card = generator.run_step(rate, duration)
                cards.append(card)
                healthy = step_healthy(
                    card, achieved_floor,
                    baseline_p99_ms=baseline_p99(cards))
                if not quiet:
                    p95 = card.latency.quantile(0.95) \
                        if card.latency.count else float("nan")
                    print(f"  [{engine}] {card.offered_rps:8.1f} "
                          f"offered | {card.achieved_rps:8.1f} "
                          f"achieved | p95 {p95:8.2f} ms | "
                          f"err {card.error_rate:.4f} | "
                          f"{'ok' if healthy else 'SATURATED'}",
                          flush=True)
                if not healthy:
                    break
                time.sleep(settle)
    return scorecard(cards, achieved_floor=achieved_floor,
                     meta={"engine": engine, "workers": workers,
                           "max_inflight": max_inflight})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.bench",
        description="Saturation-ramp comparison of the async serving "
                    "tier against the legacy threaded one.")
    parser.add_argument("--engines", default="async,thread",
                        help="comma-separated engines to ramp "
                             "(default %(default)s)")
    parser.add_argument("--workers", type=int, default=1,
                        help="with N > 1: ramp the async engine a "
                             "second time as N SO_REUSEPORT worker "
                             "processes and record the scaling ratio "
                             "(default %(default)s)")
    parser.add_argument("--max-inflight", type=int, default=128)
    parser.add_argument("--ramp-start", type=float, default=50.0)
    parser.add_argument("--ramp-stop", type=float, default=1600.0)
    parser.add_argument("--ramp-steps", type=int, default=6)
    parser.add_argument("--duration", type=float, default=4.0,
                        help="seconds per ramp step "
                             "(default %(default)s)")
    parser.add_argument("--loadgen-workers", type=int, default=16)
    parser.add_argument("--max-concurrency", type=int, default=64,
                        help="per-target in-flight cap on the load "
                             "generator side (default %(default)s)")
    parser.add_argument("--achieved-floor", type=float,
                        default=DEFAULT_ACHIEVED_FLOOR)
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--limit", type=int, default=5000)
    parser.add_argument("--trace", metavar="DIR", default=None)
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    engines = [name.strip() for name in args.engines.split(",")
               if name.strip()]
    for engine in engines:
        if engine not in ("async", "thread"):
            build_parser().error(f"unknown engine {engine!r}")

    paths = load_or_generate_paths(args.trace, args.scale, args.seed,
                                   limit=args.limit)
    rates = ramp_rates(args.ramp_start, args.ramp_stop,
                       args.ramp_steps)
    if not args.quiet:
        print(f"bench: {len(paths)} trace paths, ramp "
              f"{[round(rate, 1) for rate in rates]} rps x "
              f"{args.duration}s", flush=True)

    results: dict[str, Any] = {}
    for engine in engines:
        if not args.quiet:
            print(f"bench: ramping {engine} engine", flush=True)
        results[engine] = ramp_engine(
            engine, paths, rates, args.duration,
            max_inflight=args.max_inflight,
            loadgen_workers=args.loadgen_workers,
            max_concurrency=args.max_concurrency,
            achieved_floor=args.achieved_floor,
            quiet=args.quiet)
    if args.workers > 1 and "async" in engines:
        # The SO_REUSEPORT pass: same async tier, N worker processes
        # sharing the port.  Its scorecard lands beside the single-loop
        # one so the scaling ratio is a recorded number, not a claim.
        pool_name = f"async_x{args.workers}"
        if not args.quiet:
            print(f"bench: ramping {pool_name} "
                  f"(SO_REUSEPORT worker pool)", flush=True)
        results[pool_name] = ramp_engine(
            "async", paths, rates, args.duration,
            workers=args.workers, max_inflight=args.max_inflight,
            loadgen_workers=args.loadgen_workers,
            max_concurrency=args.max_concurrency,
            achieved_floor=args.achieved_floor,
            quiet=args.quiet)

    saturation = {name: results[name]["saturation_rps"]
                  for name in results}
    document: dict[str, Any] = {
        "engines": results,
        "saturation": saturation,
        "ramp": {
            "rates_rps": [round(rate, 3) for rate in rates],
            "duration_seconds": args.duration,
            "achieved_floor": args.achieved_floor,
        },
        "trace": {"dir": args.trace, "scale": args.scale,
                  "seed": args.seed, "limit": args.limit,
                  "paths": len(paths)},
        "loadgen": {"workers": args.loadgen_workers,
                    "max_concurrency": args.max_concurrency},
    }
    if "async" in saturation and "thread" in saturation \
            and saturation["thread"] > 0:
        document["saturation"]["async_over_thread"] = round(
            saturation["async"] / saturation["thread"], 3)
    if args.workers > 1 and "async" in saturation:
        pool = saturation.get(f"async_x{args.workers}", 0.0)
        document["so_reuseport"] = {
            "workers": args.workers,
            "single_loop_rps": saturation["async"],
            "pool_rps": pool,
            "scaling": round(pool / saturation["async"], 3)
            if saturation["async"] > 0 else None,
        }

    from repro.recovery.atomic import atomic_write_text
    atomic_write_text(Path(args.out),
                      json.dumps(document, indent=2, sort_keys=True)
                      + "\n")
    if not args.quiet:
        print(f"bench: wrote {args.out}")
        for engine in engines:
            print(f"bench: {engine} saturation "
                  f"{saturation[engine]} rps", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
