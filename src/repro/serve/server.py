"""The asyncio ODR serving tier.

One event loop, keep-alive connections, and no thread per request: the
three properties the legacy ``ThreadingHTTPServer`` tier lacks.  The
request path is::

    connection loop (keep-alive) -> admission control -> chaos gate
        -> same-tick batcher -> OdrWebApp.handle_batch

* **Connection reuse** -- HTTP/1.1 keep-alive; a load generator's
  session pool pays the TCP handshake once per worker, not once per
  request (the legacy tier answers ``Connection: close`` per request,
  which is most of why it saturates earlier).
* **Bounded admission** -- :class:`~repro.serve.admission.
  AdmissionController` caps in-flight requests; the excess is shed with
  ``503 + Retry-After`` derived from the EWMA service time.  The
  application-level circuit breaker (PR 4) still guards the decision
  backend underneath.
* **Batched evaluation** -- requests arriving in the same loop tick are
  coalesced into one :meth:`~repro.core.webapp.OdrWebApp.handle_batch`
  pass (one breaker check, one lock scope for the batch).
* **Obs** -- per-endpoint request/response counters, an in-flight
  gauge, streaming latency histograms, and a ``/metrics`` endpoint
  rendering the registry in Prometheus text format.
* **Graceful drain** -- ``drain()`` stops accepting, lets in-flight
  requests finish (bounded by a grace period), then closes idle
  keep-alive connections; the same semantics the threaded tier's
  ``run_server`` has.

The server also runs multi-process: with ``reuse_port=True`` several
workers bind the same ``(host, port)`` through ``SO_REUSEPORT`` and the
kernel load-balances accepted connections (see
:mod:`repro.serve.workers`).
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from http import HTTPStatus
from typing import Callable, Optional

from repro.cloud.database import ContentDatabase
from repro.core.webapp import OdrWebApp, Response
from repro.faults.policies import ResiliencePolicies
from repro.obs.exporters import render_prometheus
from repro.obs.registry import NOOP, AnyRegistry
from repro.serve.admission import DEFAULT_MAX_INFLIGHT, \
    AdmissionController, deadline_response
from repro.serve.batching import DecisionBatcher
from repro.serve.chaos import BLACKHOLE_HANG, SLOWLORIS_BYTE_DELAY, \
    ServeChaos, WorkerChaos

#: Cap on one request head (request line + headers).
MAX_REQUEST_BYTES = 32 * 1024

#: Endpoints with their own metric label; anything else is "other".
KNOWN_ENDPOINTS = ("/decide", "/healthz", "/metrics", "/statz", "/")


def endpoint_label(path: str) -> str:
    bare = path.split("?", 1)[0]
    if bare in ("", "/", "/index.html"):
        return "/"
    return bare if bare in KNOWN_ENDPOINTS else "other"


def _reason(status: int) -> str:
    try:
        return HTTPStatus(status).phrase
    except ValueError:
        return "Unknown"


class AsyncOdrServer:
    """The asyncio serving tier around one :class:`OdrWebApp`."""

    def __init__(self, app: Optional[OdrWebApp] = None,
                 host: str = "127.0.0.1", port: int = 0, *,
                 database: Optional[ContentDatabase] = None,
                 policies: Optional[ResiliencePolicies] = None,
                 metrics: AnyRegistry = NOOP,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 batch: bool = True,
                 chaos: Optional[ServeChaos] = None,
                 worker_chaos: Optional[WorkerChaos] = None,
                 reuse_port: bool = False,
                 default_policy: str = "odr",
                 admin_port: Optional[int] = None):
        self.app = app if app is not None else OdrWebApp(
            database, policies=policies, metrics=metrics,
            default_policy=default_policy)
        self.host = host
        self._requested_port = port
        self.metrics = metrics
        self.admission = AdmissionController(max_inflight,
                                             metrics=metrics)
        self.batcher = DecisionBatcher(self.app, metrics=metrics) \
            if batch else None
        self.chaos = chaos
        self.worker_chaos = worker_chaos
        self.reuse_port = reuse_port
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._connection_tasks: set[asyncio.Task] = set()
        self._handling = 0
        self._draining = False
        self.port: int = port
        # A second, private listener for supervision: with SO_REUSEPORT
        # the shared port load-balances across workers, so a probe of a
        # *specific* worker needs its own address.
        self._requested_admin_port = admin_port
        self.admin_port: Optional[int] = None
        self._admin_server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the bound
        port afterwards (even when constructed with port 0)."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self.reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):   # pragma: no cover
                sock.close()
                raise OSError("SO_REUSEPORT unsupported on this platform")
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.host, self._requested_port))
        self.port = sock.getsockname()[1]
        self._server = await asyncio.start_server(
            self._client_connected, sock=sock,
            limit=MAX_REQUEST_BYTES)
        if self._requested_admin_port is not None:
            # The admin listener is a control plane: its probes bypass
            # data-plane admission (see _respond), so a saturated
            # worker still answers /healthz and serves /statz -- which
            # is exactly when the supervisor most needs both.
            self._admin_server = await asyncio.start_server(
                lambda reader, writer: self._client_connected(
                    reader, writer, admin=True),
                host=self.host,
                port=self._requested_admin_port,
                limit=MAX_REQUEST_BYTES)
            self.admin_port = \
                self._admin_server.sockets[0].getsockname()[1]

    @property
    def inflight_requests(self) -> int:
        return self._handling

    @property
    def connections(self) -> int:
        return len(self._writers)

    async def drain(self, grace: float = 10.0) -> bool:
        """Stop accepting, wait out in-flight requests, close idle
        connections.  True when everything finished within ``grace``."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._admin_server is not None:
            self._admin_server.close()
            await self._admin_server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace
        while self._handling > 0 and loop.time() < deadline:
            await asyncio.sleep(0.005)
        drained = self._handling == 0
        # Idle keep-alive connections are parked in readuntil(); closing
        # the transport unblocks their loops.
        for writer in list(self._writers):
            writer.close()
        # Let the connection tasks run to completion so loop teardown
        # never cancels one mid-wait_closed (which asyncio logs).
        me = asyncio.current_task()
        pending = {task for task in self._connection_tasks
                   if task is not me}
        if pending:
            await asyncio.wait(pending, timeout=1.0)
        return drained

    async def serve_until(self, stop: asyncio.Event,
                          grace: float = 10.0) -> bool:
        """Run until ``stop`` is set, then drain; True on clean drain."""
        if self._server is None:
            await self.start()
        await stop.wait()
        return await self.drain(grace)

    # -- connection handling -----------------------------------------------------

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter,
                                admin: bool = False) -> None:
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
            task.add_done_callback(self._connection_tasks.discard)
        try:
            await self._connection_loop(reader, writer, admin=admin)
        except (ConnectionError, asyncio.IncompleteReadError,
                BrokenPipeError):
            pass   # client went away; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    def _wedge_kind(self) -> Optional[str]:
        """The process-state fault this worker carries, or None."""
        if self.worker_chaos is None:
            return None
        spec = self.worker_chaos.wedge()
        return spec.kind if spec is not None else None

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter,
                               admin: bool = False) -> None:
        while not self._draining:
            if self._wedge_kind() == "probe_blackhole":
                # A hung process: the kernel backlog keeps accepting,
                # but nothing is ever read or answered -- on the data
                # port and the admin port alike.  Park the connection;
                # only a supervisor restart ends this.
                await asyncio.sleep(BLACKHOLE_HANG)
                return
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except asyncio.IncompleteReadError:
                return          # clean close between requests
            except asyncio.LimitOverrunError:
                await self._write_simple(writer, 431,
                                         "request head too large",
                                         keep_alive=False)
                return
            request = self._parse_head(head)
            if request is None:
                await self._write_simple(writer, 400,
                                         "malformed request",
                                         keep_alive=False)
                return
            method, path, cookie, keep_alive, deadline_ms = request
            if self._wedge_kind() == "conn_reset":
                # Corrupted socket state: the request was read, then
                # the connection dies with a reset mid-request.  Probes
                # see it too -- which is how the supervisor notices.
                writer.transport.abort()
                return
            if method != "GET":
                await self._write_simple(writer, 405,
                                         f"method {method} not allowed",
                                         keep_alive=keep_alive)
                continue
            keep_alive = keep_alive and not self._draining
            deadline = time.monotonic() + deadline_ms / 1e3 \
                if deadline_ms is not None else None
            self._handling += 1
            try:
                response = await self._respond(path, cookie, deadline,
                                               admin=admin)
                await self._write_response(writer, response, keep_alive)
            finally:
                self._handling -= 1
            if not keep_alive:
                return

    @staticmethod
    def _parse_head(head: bytes
                    ) -> Optional[tuple[str, str, str, bool,
                                        Optional[float]]]:
        """(method, path, cookie header, keep-alive, deadline budget in
        ms) or None when the request line is unparseable."""
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError:   # pragma: no cover - latin-1 total
            return None
        lines = text.split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            return None
        method, path, version = parts
        cookie = ""
        connection = ""
        deadline_ms: Optional[float] = None
        for line in lines[1:]:
            name, _sep, value = line.partition(":")
            lowered = name.strip().lower()
            if lowered == "cookie":
                cookie = value.strip()
            elif lowered == "connection":
                connection = value.strip().lower()
            elif lowered == "x-deadline-ms":
                try:
                    deadline_ms = float(value.strip())
                except ValueError:
                    deadline_ms = None   # malformed budget: best effort
        keep_alive = version != "HTTP/1.0" \
            if connection == "" else connection != "close"
        return method, path, cookie, keep_alive, deadline_ms

    # -- request dispatch --------------------------------------------------------

    def _unready_reason(self) -> Optional[str]:
        """Why ``/healthz`` should answer 503, or None when ready.

        Readiness is stricter than liveness: a draining server and one
        inside an injected-failure window are both still *alive* but
        should not receive new traffic, so probes steer load balancers
        (and the worker supervisor) away before requests start failing.
        """
        if self._draining:
            return "draining"
        if self.chaos is not None and self.chaos.unready():
            return "fault-window"
        return None

    def _guarded_handle(self, path: str, cookie: str,
                        deadline: Optional[float]) -> Response:
        """Executor-side handle with a deadline no-op guard (the
        un-batched twin of the batcher's execute-stage check)."""
        if deadline is not None and time.monotonic() > deadline:
            self.admission.count_deadline_shed("execute")
            return deadline_response("execute")
        return self.app.handle(path, cookie, deadline=deadline)

    async def _respond(self, path: str, cookie: str,
                       deadline: Optional[float] = None,
                       admin: bool = False) -> Response:
        endpoint = endpoint_label(path)
        self.metrics.counter("repro_serve_requests_total",
                             endpoint=endpoint).inc()
        if not admin:
            if deadline is not None and endpoint == "/decide":
                # Shed before admission when the predicted queue wait
                # already exceeds the remaining budget: the answer
                # would come back expired, so 504 now is cheaper for
                # both sides.
                remaining = deadline - time.monotonic()
                if not self.admission.deadline_allows(remaining):
                    self.admission.shed_deadline(endpoint, "admission")
                    return deadline_response("admission",
                                             remaining * 1e3)
            if not self.admission.try_admit(endpoint):
                status, body, headers = self.admission.shed_body()
                return status, "application/json", body, None, headers
        started = time.perf_counter()
        status = 500
        try:
            if endpoint == "/healthz":
                reason = self._unready_reason()
                if reason is not None:
                    status = 503
                    body = json.dumps({"status": reason,
                                       "ready": False})
                    return status, "application/json", body, None, \
                        {"Retry-After": "1"}
            if self.chaos is not None and endpoint == "/decide":
                verdict = self.chaos.verdict()
                if verdict.delay > 0.0:
                    await asyncio.sleep(verdict.delay)
                if verdict.fail:
                    status, body, headers = self.chaos.injected_500()
                    return status, "application/json", body, None, \
                        headers
            if endpoint == "/statz":
                # Plain-JSON admission accounting for the supervisor's
                # elastic-capacity controller (cheaper to poll and to
                # parse than the full Prometheus rendering).
                response: Response = (200, "application/json",
                                      json.dumps(
                                          self.admission.stats()),
                                      None, {})
            elif endpoint == "/metrics":
                response = (200,
                            "text/plain; version=0.0.4",
                            render_prometheus(self.metrics),
                            None, {})
            elif self.batcher is not None and endpoint == "/decide":
                response = await self.batcher.submit(path, cookie,
                                                     deadline)
            else:
                # The app is synchronous; running it on the loop would
                # let one slow decision block every connection (and
                # make the admission cap unreachable).
                response = await asyncio.get_running_loop() \
                    .run_in_executor(None, self._guarded_handle, path,
                                     cookie, deadline)
            status = response[0]
            return response
        finally:
            # Admin traffic never took a slot, so it releases none --
            # and stays out of the data plane's latency histograms.
            if not admin:
                self.admission.release(endpoint,
                                       time.perf_counter() - started,
                                       status)

    # -- response encoding -------------------------------------------------------

    async def _write_response(self, writer: asyncio.StreamWriter,
                              response: Response,
                              keep_alive: bool) -> None:
        status, content_type, body, set_cookie, headers = response
        payload = body.encode()
        head = [f"HTTP/1.1 {status} {_reason(status)}",
                f"Content-Type: {content_type}"
                + ("; charset=utf-8" if ";" not in content_type
                   else ""),
                f"Content-Length: {len(payload)}",
                "Connection: "
                + ("keep-alive" if keep_alive else "close")]
        if set_cookie:
            head.append(f"Set-Cookie: {set_cookie}")
        for name, value in headers.items():
            head.append(f"{name}: {value}")
        data = "\r\n".join(head).encode("latin-1") + b"\r\n\r\n" \
            + payload
        if self._wedge_kind() == "admin_slowloris":
            await self._write_slowloris(writer, data)
            return
        writer.write(data)
        await writer.drain()

    async def _write_slowloris(self, writer: asyncio.StreamWriter,
                               data: bytes) -> None:
        """The slow-lorised write path: one byte, then a long pause.

        Every per-recv socket timeout on the other side is defeated by
        construction (a byte always arrives eventually); only a caller
        with a *total-time* budget -- like the supervisor's probe pass
        -- classifies this worker as dead.
        """
        spec = self.worker_chaos.wedge() \
            if self.worker_chaos is not None else None
        delay = SLOWLORIS_BYTE_DELAY * \
            (spec.severity if spec is not None else 1.0)
        for position in range(len(data)):
            writer.write(data[position:position + 1])
            await writer.drain()
            await asyncio.sleep(delay)

    async def _write_simple(self, writer: asyncio.StreamWriter,
                            status: int, detail: str,
                            keep_alive: bool) -> None:
        import json
        self.admission.reject(endpoint_label("other"),
                              reason=f"http_{status}")
        await self._write_response(
            writer,
            (status, "application/json",
             json.dumps({"error": detail}), None, {}),
            keep_alive)


# -- running the loop (CLI, tests, bench) ----------------------------------------


def run_async_server(server: AsyncOdrServer, *,
                     grace: float = 10.0,
                     install_signals: bool = True,
                     quiet: bool = False,
                     announce: bool = True,
                     on_started: Optional[Callable[[], None]] = None
                     ) -> int:
    """Run one server on a fresh event loop until SIGINT/SIGTERM.

    The asyncio twin of :func:`repro.core.webapp.run_server`: 0 on a
    clean drain, 1 when requests were still in flight at the deadline.
    ``on_started`` fires once the ports are bound -- supervised workers
    use it to report their admin port back to the parent.
    """
    import signal

    async def main() -> bool:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        if install_signals:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, stop.set)
                except (NotImplementedError, RuntimeError):
                    pass   # non-main thread or exotic platform
        await server.start()
        if on_started is not None:
            on_started()
        if announce and not quiet:
            print(f"ODR (async) listening on "
                  f"http://{server.host}:{server.port}/ "
                  f"(Ctrl-C or SIGTERM to stop)", flush=True)
        drained = await server.serve_until(stop, grace)
        if not drained and not quiet:
            print(f"ODR drain timed out after {grace:g}s with "
                  f"{server.inflight_requests} request(s) in flight")
        return drained

    try:
        return 0 if asyncio.run(main()) else 1
    except KeyboardInterrupt:   # pragma: no cover - interactive
        return 0


class AsyncServerThread:
    """An :class:`AsyncOdrServer` on a background thread's event loop.

    What tests, the load generator's self-tests, and the in-process
    bench harness use: ``start()`` returns once the port is bound,
    ``stop()`` drains and joins.
    """

    def __init__(self, server: AsyncOdrServer, grace: float = 10.0):
        self.server = server
        self.grace = grace
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._drained = True
        self._thread = threading.Thread(target=self._run,
                                        name="odr-async", daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await self.server.start()
            self._started.set()
            self._drained = await self.server.serve_until(
                self._stop, self.grace)

        asyncio.run(main())

    def start(self, timeout: float = 5.0) -> "AsyncServerThread":
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("async server failed to start in time")
        return self

    @property
    def url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    @property
    def drained(self) -> bool:
        """Did the last drain finish with no requests in flight?"""
        return self._drained

    def stop(self, timeout: float = 10.0) -> bool:
        """Drain and join; True when the drain was clean."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)
        return self._drained

    def __enter__(self) -> "AsyncServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
