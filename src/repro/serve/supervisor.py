"""Worker supervision for the SO_REUSEPORT serving pool.

:func:`~repro.serve.workers.run_worker_pool` runs N workers but treats
them as a flat set: a worker that dies takes its share of the listen
queue with it and nothing brings it back.  The
:class:`WorkerSupervisor` is the parent that owns the pool and keeps it
at target capacity:

* **Liveness** -- the supervisor reaps worker exits (exit codes kept);
  a dead worker is restarted automatically.
* **Readiness** -- every supervised worker binds a private *admin*
  listener next to the shared port (the kernel load-balances the shared
  address, so probing one specific worker needs its own door) and
  reports it back through a pipe; the supervisor probes ``/healthz``
  there on a period.  A worker answering 503 (draining, fault window)
  is *unready* but alive -- not a restart trigger; a worker that stops
  answering entirely is restarted after ``probe_failures`` consecutive
  misses.
* **Backoff + breaker** -- restarts back off exponentially (with a
  deterministic seeded jitter), and a restart storm trips a circuit
  breaker: more than ``restart_budget`` restarts of one slot within
  ``restart_window`` seconds and the supervisor gives that slot up,
  reporting degraded capacity instead of flapping forever.
* **Rolling restart** -- start a replacement on the shared port,
  confirm it healthy, then SIGTERM-and-drain the old worker; capacity
  never dips below N-as-configured during the roll.
* **Elastic capacity** -- with a ``max_workers`` ceiling configured,
  the supervisor reads each worker's admission accounting off the
  admin ``/statz`` endpoint during the probe pass.  Sustained shed
  pressure (saturation 503s plus deadline 504s, ``pressure_polls``
  consecutive pressured passes) grows the pool by one slot, up to the
  ceiling; a quiet hysteresis window (``quiet_polls`` passes without
  sheds) drains the newest extra slot and shrinks back.  The breaker,
  rolling restarts, and degraded-capacity reporting all operate on the
  *current* slot set, so they compose with a moving pool size.

Probes run concurrently on short-lived threads under one total-time
budget per pass: a blackholed admin port (accepts, never answers) or a
slow-lorised one (a byte per epoch, defeating per-recv timeouts) costs
one ``probe_timeout`` for the whole pass instead of stalling the
supervisor loop, and still counts toward the 3-miss restart trigger.

Every transition lands in a structured event log and in obs
instruments: ``repro_serve_worker_restarts_total{reason}``, the
``repro_serve_pool_healthy_workers`` / ``repro_serve_pool_size``
gauges, and ``repro_serve_pool_scale_events_total{direction}``.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.registry import NOOP, AnyRegistry
from repro.serve.workers import _worker_main, probe_reuse_port

#: Slot states.  starting -> ready <-> unready; any -> backoff ->
#: starting; backoff -> failed (breaker tripped); ready -> retiring
#: (elastic scale-down drain); stopped on shutdown.
STATES = ("starting", "ready", "unready", "backoff", "failed",
          "retiring", "stopped")


def slot_of_target(target: str) -> Optional[int]:
    """``"serve:worker-1"`` -> ``1``; None for other targets.

    The entity grammar fault plans use to aim ``worker_kill`` specs at
    one pool slot (see :mod:`repro.faults.plan` domains).
    """
    prefix = "serve:worker-"
    if not target.startswith(prefix):
        return None
    try:
        return int(target[len(prefix):])
    except ValueError:
        return None


@dataclass
class SupervisorConfig:
    """Tunables; the defaults suit tests and smoke runs."""

    probe_interval: float = 0.5     #: seconds between /healthz passes
    probe_timeout: float = 1.0      #: one probe's socket timeout
    probe_failures: int = 3         #: consecutive misses before restart
    start_timeout: float = 10.0     #: spawn -> admin-port report budget
    backoff_base: float = 0.25      #: first restart delay, seconds
    backoff_cap: float = 5.0        #: delay ceiling
    restart_budget: int = 5         #: restarts tolerated per window...
    restart_window: float = 30.0    #: ...of this many seconds
    drain_grace: float = 5.0        #: SIGTERM -> SIGKILL escalation
    seed: int = 0                   #: jitter determinism
    #: Elastic-capacity ceiling; None (or <= the base pool size) keeps
    #: the pool fixed, i.e. elastic scaling off.
    max_workers: Optional[int] = None
    pressure_polls: int = 2         #: pressured passes before scale-up
    quiet_polls: int = 12           #: shed-free passes before scale-down
    shed_threshold: int = 1         #: sheds per pass that count as pressure
    scale_cooldown: float = 1.0     #: min seconds between scale events


@dataclass
class _Slot:
    """One worker position in the pool."""

    rank: int
    process: Any = None
    pipe: Any = None                 #: parent end, until report arrives
    pid: Optional[int] = None
    admin_port: Optional[int] = None
    state: str = "starting"
    started_at: float = 0.0
    probe_misses: int = 0
    restart_attempt: int = 0         #: consecutive failed starts
    restart_at: float = 0.0          #: backoff expiry (monotonic)
    restart_times: deque = field(default_factory=deque)
    exit_codes: list = field(default_factory=list)
    shed_seen: Optional[int] = None  #: last cumulative /statz shed count
    retire_at: float = 0.0           #: scale-down SIGTERM time (monotonic)


class WorkerSupervisor:
    """Parent process (or thread) owning a supervised worker pool."""

    def __init__(self, workers: int, host: str = "127.0.0.1",
                 port: int = 0, *,
                 config: Optional[SupervisorConfig] = None,
                 metrics: AnyRegistry = NOOP,
                 max_inflight: int = 128, batch: bool = True,
                 resilience: bool = True,
                 faults: Optional[str] = None,
                 default_policy: str = "odr",
                 auto_restart: bool = True,
                 quiet: bool = True):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.host = host
        self.port = port if port != 0 else probe_reuse_port(host)
        self.config = config or SupervisorConfig()
        self.metrics = metrics
        self.auto_restart = auto_restart
        self.quiet = quiet
        self._worker_args = dict(
            max_inflight=max_inflight, batch=batch,
            resilience=resilience, faults=faults,
            default_policy=default_policy)
        self._lock = threading.RLock()
        self._origin = time.monotonic()
        self._slots = [_Slot(rank=rank) for rank in range(workers)]
        self.events: list[dict] = []
        self._healthy_gauge = metrics.gauge(
            "repro_serve_pool_healthy_workers")
        self._pool_gauge = metrics.gauge("repro_serve_pool_size")
        # Elastic-capacity state: the base size is the floor the pool
        # shrinks back to; ranks grow monotonically so a scaled-up slot
        # never reuses a retired slot's identity in the event log.
        self._base_workers = workers
        self._next_rank = workers
        self.peak_pool_size = workers
        self._pressure_streak = 0
        self._quiet_streak = 0
        self._last_scale = 0.0
        # Pool-wide origin for serve-domain fault windows: every worker
        # (including restarts) measures plan windows from the
        # supervisor's start, not its own birth.
        self._chaos_epoch = time.monotonic()
        import multiprocessing
        self._context = multiprocessing.get_context("spawn")

    # -- event log ---------------------------------------------------------------

    def _now(self) -> float:
        return time.monotonic() - self._origin

    def _event(self, event: str, slot: Optional[int] = None,
               **extra: Any) -> None:
        record = {"t": round(self._now(), 4), "event": event}
        if slot is not None:
            record["slot"] = slot
        record.update(extra)
        with self._lock:
            self.events.append(record)
        if not self.quiet:
            print(f"supervisor: {record}", flush=True)

    # -- spawning ----------------------------------------------------------------

    def _spawn_process(self, rank: int) -> tuple[Any, Any]:
        """(process, parent pipe end) of a fresh worker, started."""
        parent, child = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main,
            args=(self.host, self.port,
                  self._worker_args["max_inflight"],
                  self._worker_args["batch"],
                  self._worker_args["resilience"],
                  self._worker_args["faults"], True,
                  self._worker_args["default_policy"], rank, child,
                  self._chaos_epoch),
            name=f"odr-worker-{rank}", daemon=False)
        process.start()
        child.close()
        return process, parent

    def _start_slot(self, slot: _Slot, reason: str) -> None:
        slot.process, slot.pipe = self._spawn_process(slot.rank)
        slot.pid = slot.process.pid
        slot.admin_port = None
        slot.state = "starting"
        slot.started_at = time.monotonic()
        slot.probe_misses = 0
        self._event("spawn", slot.rank, pid=slot.pid, reason=reason)

    def start(self) -> "WorkerSupervisor":
        """Spawn every slot (non-blocking; see :meth:`wait_ready`)."""
        with self._lock:
            for slot in self._slots:
                self._start_slot(slot, reason="start")
        return self

    def wait_ready(self, timeout: float = 30.0) -> bool:
        """Poll until every non-failed slot is ready (True), or the
        timeout lapses (False)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            self.poll()
            with self._lock:
                pending = [slot for slot in self._slots
                           if slot.state not in ("ready", "failed",
                                                 "retiring", "stopped")]
            if not pending:
                return self.healthy_workers > 0
            time.sleep(0.05)
        return False

    # -- restart policy ----------------------------------------------------------

    def _jitter(self, slot: _Slot) -> float:
        """Deterministic [0, 1) jitter so restart storms de-correlate
        without breaking replayability."""
        key = f"{self.config.seed}:{slot.rank}:{slot.restart_attempt}"
        return (zlib.crc32(key.encode()) % 1000) / 1000.0

    def _schedule_restart(self, slot: _Slot, reason: str) -> None:
        """Back the slot off, or trip the breaker when it is storming."""
        now = time.monotonic()
        window = self.config.restart_window
        slot.restart_times.append(now)
        while slot.restart_times and \
                now - slot.restart_times[0] > window:
            slot.restart_times.popleft()
        if len(slot.restart_times) > self.config.restart_budget:
            slot.state = "failed"
            self._event("gave_up", slot.rank, reason=reason,
                        restarts_in_window=len(slot.restart_times))
            self.metrics.counter(
                "repro_serve_worker_giveups_total").inc()
            return
        slot.restart_attempt += 1
        delay = min(self.config.backoff_cap,
                    self.config.backoff_base
                    * (2 ** (slot.restart_attempt - 1)))
        delay *= 1.0 + 0.25 * self._jitter(slot)
        slot.state = "backoff"
        slot.restart_at = now + delay
        self._event("backoff", slot.rank, reason=reason,
                    delay=round(delay, 3))
        self.metrics.counter("repro_serve_worker_restarts_total",
                             reason=reason).inc()

    def _kill_slot_process(self, slot: _Slot) -> None:
        if slot.process is not None and slot.process.is_alive():
            slot.process.kill()
            slot.process.join(5.0)

    # -- the poll pass -----------------------------------------------------------

    def _probe_all(self, probes: list[tuple[int, int]]
                   ) -> dict[int, tuple[Optional[int], Optional[dict]]]:
        """Probe every ``(rank, admin_port)`` concurrently under one
        total-time budget; ``{rank: (healthz status, /statz stats)}``.

        Each probe runs on its own short-lived thread: GET /healthz,
        and on a 200 a /statz read over the same connection for the
        admission counters the elastic controller wants.  The waiter
        joins with an overall ``probe_timeout`` deadline and then
        force-closes straggler connections -- a blackholed or
        slow-lorised admin port therefore yields ``(None, None)`` (a
        probe miss) after one budget instead of hanging the pass, which
        is exactly how a wedged-but-listening worker accrues its three
        misses without stalling its siblings' probes.
        """
        results: dict[int, tuple[Optional[int], Optional[dict]]] = {}
        conns: dict[int, http.client.HTTPConnection] = {}

        def probe_one(rank: int, admin_port: int) -> None:
            conn = http.client.HTTPConnection(
                self.host, admin_port,
                timeout=self.config.probe_timeout)
            conns[rank] = conn
            status: Optional[int] = None
            stats: Optional[dict] = None
            try:
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                response.read()
                status = response.status
                if status == 200:
                    conn.request("GET", "/statz")
                    stats_response = conn.getresponse()
                    body = stats_response.read()
                    if stats_response.status == 200:
                        stats = json.loads(body)
            except (OSError, http.client.HTTPException, ValueError):
                pass
            finally:
                try:
                    conn.close()
                except OSError:   # pragma: no cover - close race
                    pass
            results[rank] = (status, stats)

        threads = [threading.Thread(target=probe_one, args=probe,
                                    name=f"odr-probe-{probe[0]}",
                                    daemon=True)
                   for probe in probes]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + self.config.probe_timeout
        for thread in threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        out: dict[int, tuple[Optional[int], Optional[dict]]] = {}
        for rank, _port in probes:
            if rank not in results:
                # Straggler: unblock its thread by closing the socket
                # under it, and count the miss now.
                conn = conns.get(rank)
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:   # pragma: no cover - close race
                        pass
            out[rank] = results.get(rank, (None, None))
        return out

    def _probe(self, admin_port: int) -> Optional[int]:
        """One worker's /healthz status via its admin door (None when
        the probe missed); same bounded machinery as the poll pass."""
        return self._probe_all([(-1, admin_port)])[-1][0]

    def poll(self) -> None:
        """One supervision pass: reap exits, collect admin-port
        reports, expire backoffs, probe readiness, adjust capacity."""
        now = time.monotonic()
        with self._lock:
            removed = []
            for slot in self._slots:
                if slot.state in ("failed", "stopped"):
                    continue
                process = slot.process
                if process is not None and not process.is_alive():
                    code = process.exitcode
                    slot.exit_codes.append(code)
                    if slot.state == "retiring":
                        # Elastic scale-down completes: the drained
                        # extra slot leaves the pool instead of
                        # restarting.
                        self._event("scale_down", slot.rank,
                                    exitcode=code)
                        self.metrics.counter(
                            "repro_serve_pool_scale_events_total",
                            direction="down").inc()
                        removed.append(slot)
                        continue
                    self._event("worker_exit", slot.rank,
                                exitcode=code)
                    slot.process = None
                    slot.pipe = None
                    slot.admin_port = None
                    if self.auto_restart:
                        self._schedule_restart(
                            slot, reason="exit" if code else "drain")
                    else:
                        slot.state = "failed"
                    continue
                if slot.state == "retiring":
                    if process is not None and \
                            now - slot.retire_at > \
                            self.config.drain_grace:
                        self._kill_slot_process(slot)
                    continue
                if slot.state == "backoff" and now >= slot.restart_at:
                    self._start_slot(slot, reason="restart")
                    continue
                if slot.state == "starting":
                    self._collect_report(slot, now)
            for slot in removed:
                self._slots.remove(slot)
            probes = [(slot.rank, slot.admin_port)
                      for slot in self._slots
                      if slot.state in ("ready", "unready")
                      and slot.admin_port is not None]
        # Probes leave the lock and run concurrently: the whole pass
        # costs at most one probe_timeout, wedged workers included.
        results = self._probe_all(probes)
        with self._lock:
            stats_by_rank: dict[int, dict] = {}
            for slot in self._slots:
                if slot.rank in results and \
                        slot.state in ("ready", "unready"):
                    status, stats = results[slot.rank]
                    self._apply_probe(slot, status)
                    if stats is not None:
                        stats_by_rank[slot.rank] = stats
            self._elastic_step(time.monotonic(), stats_by_rank)
            self._healthy_gauge.set(float(self._healthy_locked()))
            self._pool_gauge.set(float(self._pool_size_locked()))

    def _collect_report(self, slot: _Slot, now: float) -> None:
        """Starting slot: take the admin-port report off the pipe, or
        give the spawn up after start_timeout."""
        if slot.pipe is not None and slot.pipe.poll():
            try:
                report = slot.pipe.recv()
            except (EOFError, OSError):
                report = None
            slot.pipe = None
            if report and report.get("admin_port"):
                slot.admin_port = int(report["admin_port"])
                slot.state = "ready"
                slot.restart_attempt = 0
                self._event("ready", slot.rank,
                            admin_port=slot.admin_port)
                return
        if now - slot.started_at > self.config.start_timeout:
            self._event("start_timeout", slot.rank)
            self._kill_slot_process(slot)
            # The exit is reaped (and the restart scheduled) on the
            # next pass through the liveness check above.

    def _apply_probe(self, slot: _Slot, status: Optional[int]) -> None:
        if status == 200:
            if slot.state != "ready":
                self._event("ready", slot.rank,
                            admin_port=slot.admin_port)
            slot.state = "ready"
            slot.probe_misses = 0
        elif status is not None:
            # Self-reported unready (draining / fault window): alive,
            # so no restart -- just steer capacity accounting.
            if slot.state != "unready":
                self._event("unready", slot.rank, status=status)
            slot.state = "unready"
            slot.probe_misses = 0
        else:
            slot.probe_misses += 1
            if slot.probe_misses >= self.config.probe_failures \
                    and self.auto_restart:
                self._event("probe_dead", slot.rank,
                            misses=slot.probe_misses)
                self._kill_slot_process(slot)
                # Reaped as an exit on the next poll pass.  Killing a
                # wedged-but-listening worker matters even before the
                # replacement is up: SO_REUSEPORT keeps steering new
                # connections at a live listener, dead ones rebalance.

    # -- elastic capacity --------------------------------------------------------

    def _elastic_step(self, now: float,
                      stats_by_rank: dict[int, dict]) -> None:
        """One tick of the scale-up / scale-down state machine.

        Pressure is the pool-wide delta of cumulative admission sheds
        (saturation 503s + deadline 504s) since the previous pass; a
        counter that went *backwards* means the worker restarted, so
        its baseline resets rather than counting phantom sheds.
        Without a ``max_workers`` ceiling the deltas are still tracked
        (cheap) but no scaling happens.
        """
        shed_delta = 0
        for slot in self._slots:
            stats = stats_by_rank.get(slot.rank)
            if stats is None:
                continue
            total = int(stats.get("sheds", 0))
            if slot.shed_seen is None or total < slot.shed_seen:
                slot.shed_seen = total
            shed_delta += total - slot.shed_seen
            slot.shed_seen = total
        limit = self.config.max_workers
        if limit is None or limit <= self._base_workers:
            return
        if shed_delta >= self.config.shed_threshold:
            self._pressure_streak += 1
            self._quiet_streak = 0
        else:
            self._quiet_streak += 1
            self._pressure_streak = 0
        if now - self._last_scale < self.config.scale_cooldown:
            return
        size = self._pool_size_locked()
        if self._pressure_streak >= self.config.pressure_polls \
                and size < limit:
            slot = _Slot(rank=self._next_rank)
            self._next_rank += 1
            self._slots.append(slot)
            self._start_slot(slot, reason="scale_up")
            self._event("scale_up", slot.rank,
                        shed_delta=shed_delta, pool=size + 1)
            self.metrics.counter(
                "repro_serve_pool_scale_events_total",
                direction="up").inc()
            self.peak_pool_size = max(self.peak_pool_size, size + 1)
            self._pressure_streak = 0
            self._last_scale = now
        elif self._quiet_streak >= self.config.quiet_polls \
                and size > self._base_workers:
            candidates = [s for s in self._slots
                          if s.state in ("ready", "unready")
                          and s.process is not None]
            if candidates:
                self._retire_slot(
                    max(candidates, key=lambda s: s.rank), now)
                self._quiet_streak = 0
                self._last_scale = now

    def _retire_slot(self, slot: _Slot, now: float) -> None:
        """Begin a scale-down drain: SIGTERM the slot; the exit reap
        removes it from the pool (drain_grace bounds the wait)."""
        slot.state = "retiring"
        slot.retire_at = now
        self._event("retiring", slot.rank, pid=slot.pid)
        if slot.process is not None and slot.process.is_alive() \
                and slot.pid is not None:
            try:
                os.kill(slot.pid, signal.SIGTERM)
            except ProcessLookupError:   # pragma: no cover - race
                pass

    # -- rolling restart ---------------------------------------------------------

    def rolling_restart(self, timeout_per_worker: float = 30.0
                        ) -> bool:
        """Replace every worker one at a time without a capacity dip:
        spawn the replacement on the shared port, wait for it to probe
        healthy, then SIGTERM-and-drain the old worker.  True when
        every slot rolled."""
        self._event("rolling_restart_begin")
        ok = True
        with self._lock:
            roll_slots = list(self._slots)
        for slot in roll_slots:
            with self._lock:
                if slot.state in ("failed", "retiring", "stopped") \
                        or slot not in self._slots:
                    continue
                old_process = slot.process
                replacement, pipe = self._spawn_process(slot.rank)
            admin_port = None
            deadline = time.monotonic() + timeout_per_worker
            while time.monotonic() < deadline:
                if pipe.poll(0.05):
                    try:
                        report = pipe.recv()
                    except (EOFError, OSError):
                        break
                    admin_port = report.get("admin_port")
                    break
            healthy = False
            while admin_port and time.monotonic() < deadline:
                if self._probe(admin_port) == 200:
                    healthy = True
                    break
                time.sleep(0.05)
            if not healthy:
                # Replacement never came up: keep the old worker.
                self._event("rolling_restart_abort", slot.rank)
                if replacement.is_alive():
                    replacement.kill()
                    replacement.join(5.0)
                ok = False
                continue
            if old_process is not None and old_process.is_alive() \
                    and old_process.pid is not None:
                try:
                    os.kill(old_process.pid, signal.SIGTERM)
                except ProcessLookupError:   # pragma: no cover - race
                    pass
                old_process.join(self.config.drain_grace)
                if old_process.is_alive():
                    old_process.kill()
                    old_process.join(5.0)
                slot.exit_codes.append(old_process.exitcode)
            with self._lock:
                slot.process = replacement
                slot.pipe = None
                slot.pid = replacement.pid
                slot.admin_port = int(admin_port)
                slot.state = "ready"
                slot.probe_misses = 0
            self._event("rolled", slot.rank, pid=replacement.pid,
                        admin_port=int(admin_port))
            self.metrics.counter("repro_serve_worker_restarts_total",
                                 reason="rolling").inc()
        self._event("rolling_restart_end", ok=ok)
        return ok

    # -- run / shutdown ----------------------------------------------------------

    def run(self, stop: threading.Event) -> dict[str, int]:
        """Supervise until ``stop`` is set; then shut the pool down."""
        while not stop.is_set():
            self.poll()
            stop.wait(self.config.probe_interval)
        return self.shutdown()

    def shutdown(self, grace: Optional[float] = None) -> dict[str, int]:
        """SIGTERM the pool, escalate to SIGKILL, return exit codes."""
        from repro.serve.workers import terminate_pool
        grace = self.config.drain_grace if grace is None else grace
        with self._lock:
            processes = [slot.process for slot in self._slots
                         if slot.process is not None]
            for slot in self._slots:
                slot.state = "stopped"
        codes = terminate_pool(processes, join_timeout=grace,
                               quiet=True) if processes else {}
        self._event("shutdown", exit_codes=codes)
        self._healthy_gauge.set(0.0)
        return codes

    # -- views -------------------------------------------------------------------

    def _healthy_locked(self) -> int:
        return sum(1 for slot in self._slots
                   if slot.state == "ready")

    def _pool_size_locked(self) -> int:
        return sum(1 for slot in self._slots
                   if slot.state not in ("failed", "retiring",
                                         "stopped"))

    @property
    def healthy_workers(self) -> int:
        with self._lock:
            return self._healthy_locked()

    @property
    def pool_size(self) -> int:
        """Slots the supervisor is currently trying to keep serving
        (excludes breaker-failed, retiring, and stopped slots)."""
        with self._lock:
            return self._pool_size_locked()

    @property
    def degraded(self) -> bool:
        """Did the breaker give any slot up for good?"""
        with self._lock:
            return any(slot.state == "failed" for slot in self._slots)

    @property
    def restarts_total(self) -> int:
        """Spawns beyond the initial start (restarts + rolls)."""
        with self._lock:
            return sum(1 for record in self.events
                       if (record["event"] == "spawn"
                           and record.get("reason") != "start")
                       or record["event"] == "rolled")

    def pid_of(self, rank: int) -> Optional[int]:
        """The current PID of one slot (the chaos killer's target).

        Keyed by rank, not list position: with elastic scaling the
        slots list can grow and shrink, so indices are not stable.
        """
        with self._lock:
            for slot in self._slots:
                if slot.rank == rank:
                    return slot.process.pid \
                        if slot.process is not None else None
            return None

    def snapshot(self) -> list[dict]:
        """Structured state of every slot, for status CLIs and tests."""
        with self._lock:
            return [{"rank": slot.rank, "state": slot.state,
                     "pid": slot.pid, "admin_port": slot.admin_port,
                     "exit_codes": list(slot.exit_codes)}
                    for slot in self._slots]


class SupervisorThread:
    """A :class:`WorkerSupervisor` driven on a background thread.

    What tests and the availability gate use: ``start()`` returns once
    the pool probes ready, ``stop()`` shuts it down and joins.
    """

    def __init__(self, supervisor: WorkerSupervisor):
        self.supervisor = supervisor
        self._stop = threading.Event()
        self.exit_codes: dict[str, int] = {}
        self._thread = threading.Thread(target=self._run,
                                        name="odr-supervisor",
                                        daemon=True)

    def _run(self) -> None:
        self.exit_codes = self.supervisor.run(self._stop)

    def start(self, timeout: float = 30.0) -> "SupervisorThread":
        self.supervisor.start()
        if not self.supervisor.wait_ready(timeout):
            self.supervisor.shutdown()
            raise RuntimeError("supervised pool failed to become "
                               f"ready within {timeout:g}s")
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        return f"http://{self.supervisor.host}:{self.supervisor.port}"

    def stop(self, timeout: float = 30.0) -> dict[str, int]:
        self._stop.set()
        self._thread.join(timeout)
        return self.exit_codes

    def __enter__(self) -> "SupervisorThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_supervised_pool(workers: int, host: str, port: int, *,
                        max_inflight: int, batch: bool = True,
                        resilience: bool = True,
                        faults: Optional[str] = None,
                        default_policy: str = "odr",
                        quiet: bool = False,
                        config: Optional[SupervisorConfig] = None,
                        max_workers: Optional[int] = None) -> int:
    """CLI runner: a supervised pool until SIGINT/SIGTERM.

    ``max_workers`` (when above ``workers``) switches elastic capacity
    on.  Returns 0 when the pool shut down at full capacity, 1 when
    the breaker had given up on any slot (degraded capacity at exit).
    """
    from repro.obs import MetricsRegistry
    metrics = MetricsRegistry()
    config = config or SupervisorConfig()
    if max_workers is not None:
        config.max_workers = max_workers
    supervisor = WorkerSupervisor(
        workers, host, port, config=config, metrics=metrics,
        max_inflight=max_inflight, batch=batch,
        resilience=resilience, faults=faults,
        default_policy=default_policy, quiet=quiet)
    stop = threading.Event()

    def _stop_handler(signum, _frame):   # noqa: ARG001 - signal API
        stop.set()

    previous = {signum: signal.signal(signum, _stop_handler)
                for signum in (signal.SIGINT, signal.SIGTERM)}
    try:
        supervisor.start()
        if not quiet:
            print(f"ODR (supervised x{workers} via SO_REUSEPORT) "
                  f"listening on http://{host}:{supervisor.port}/ "
                  f"(Ctrl-C or SIGTERM to stop)", flush=True)
        supervisor.run(stop)
    except KeyboardInterrupt:   # pragma: no cover - interactive
        supervisor.shutdown()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    if not quiet:
        from repro.serve.workers import summarize_exits
        codes = {f"odr-worker-{entry['rank']}":
                 (entry["exit_codes"][-1] if entry["exit_codes"]
                  else 0)
                 for entry in supervisor.snapshot()}
        print("supervised pool shut down:\n"
              + summarize_exits(codes), flush=True)
    return 1 if supervisor.degraded else 0
