"""Worker supervision for the SO_REUSEPORT serving pool.

:func:`~repro.serve.workers.run_worker_pool` runs N workers but treats
them as a flat set: a worker that dies takes its share of the listen
queue with it and nothing brings it back.  The
:class:`WorkerSupervisor` is the parent that owns the pool and keeps it
at target capacity:

* **Liveness** -- the supervisor reaps worker exits (exit codes kept);
  a dead worker is restarted automatically.
* **Readiness** -- every supervised worker binds a private *admin*
  listener next to the shared port (the kernel load-balances the shared
  address, so probing one specific worker needs its own door) and
  reports it back through a pipe; the supervisor probes ``/healthz``
  there on a period.  A worker answering 503 (draining, fault window)
  is *unready* but alive -- not a restart trigger; a worker that stops
  answering entirely is restarted after ``probe_failures`` consecutive
  misses.
* **Backoff + breaker** -- restarts back off exponentially (with a
  deterministic seeded jitter), and a restart storm trips a circuit
  breaker: more than ``restart_budget`` restarts of one slot within
  ``restart_window`` seconds and the supervisor gives that slot up,
  reporting degraded capacity instead of flapping forever.
* **Rolling restart** -- start a replacement on the shared port,
  confirm it healthy, then SIGTERM-and-drain the old worker; capacity
  never dips below N-as-configured during the roll.

Every transition lands in a structured event log and in obs
instruments: ``repro_serve_worker_restarts_total{reason}`` and the
``repro_serve_pool_healthy_workers`` gauge.
"""

from __future__ import annotations

import http.client
import os
import signal
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.registry import NOOP, AnyRegistry
from repro.serve.workers import _worker_main, probe_reuse_port

#: Slot states.  starting -> ready <-> unready; any -> backoff ->
#: starting; backoff -> failed (breaker tripped); stopped on shutdown.
STATES = ("starting", "ready", "unready", "backoff", "failed",
          "stopped")


def slot_of_target(target: str) -> Optional[int]:
    """``"serve:worker-1"`` -> ``1``; None for other targets.

    The entity grammar fault plans use to aim ``worker_kill`` specs at
    one pool slot (see :mod:`repro.faults.plan` domains).
    """
    prefix = "serve:worker-"
    if not target.startswith(prefix):
        return None
    try:
        return int(target[len(prefix):])
    except ValueError:
        return None


@dataclass
class SupervisorConfig:
    """Tunables; the defaults suit tests and smoke runs."""

    probe_interval: float = 0.5     #: seconds between /healthz passes
    probe_timeout: float = 1.0      #: one probe's socket timeout
    probe_failures: int = 3         #: consecutive misses before restart
    start_timeout: float = 10.0     #: spawn -> admin-port report budget
    backoff_base: float = 0.25      #: first restart delay, seconds
    backoff_cap: float = 5.0        #: delay ceiling
    restart_budget: int = 5         #: restarts tolerated per window...
    restart_window: float = 30.0    #: ...of this many seconds
    drain_grace: float = 5.0        #: SIGTERM -> SIGKILL escalation
    seed: int = 0                   #: jitter determinism


@dataclass
class _Slot:
    """One worker position in the pool."""

    rank: int
    process: Any = None
    pipe: Any = None                 #: parent end, until report arrives
    pid: Optional[int] = None
    admin_port: Optional[int] = None
    state: str = "starting"
    started_at: float = 0.0
    probe_misses: int = 0
    restart_attempt: int = 0         #: consecutive failed starts
    restart_at: float = 0.0          #: backoff expiry (monotonic)
    restart_times: deque = field(default_factory=deque)
    exit_codes: list = field(default_factory=list)


class WorkerSupervisor:
    """Parent process (or thread) owning a supervised worker pool."""

    def __init__(self, workers: int, host: str = "127.0.0.1",
                 port: int = 0, *,
                 config: Optional[SupervisorConfig] = None,
                 metrics: AnyRegistry = NOOP,
                 max_inflight: int = 128, batch: bool = True,
                 resilience: bool = True,
                 faults: Optional[str] = None,
                 default_policy: str = "odr",
                 auto_restart: bool = True,
                 quiet: bool = True):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.host = host
        self.port = port if port != 0 else probe_reuse_port(host)
        self.config = config or SupervisorConfig()
        self.metrics = metrics
        self.auto_restart = auto_restart
        self.quiet = quiet
        self._worker_args = dict(
            max_inflight=max_inflight, batch=batch,
            resilience=resilience, faults=faults,
            default_policy=default_policy)
        self._lock = threading.RLock()
        self._origin = time.monotonic()
        self._slots = [_Slot(rank=rank) for rank in range(workers)]
        self.events: list[dict] = []
        self._healthy_gauge = metrics.gauge(
            "repro_serve_pool_healthy_workers")
        import multiprocessing
        self._context = multiprocessing.get_context("spawn")

    # -- event log ---------------------------------------------------------------

    def _now(self) -> float:
        return time.monotonic() - self._origin

    def _event(self, event: str, slot: Optional[int] = None,
               **extra: Any) -> None:
        record = {"t": round(self._now(), 4), "event": event}
        if slot is not None:
            record["slot"] = slot
        record.update(extra)
        with self._lock:
            self.events.append(record)
        if not self.quiet:
            print(f"supervisor: {record}", flush=True)

    # -- spawning ----------------------------------------------------------------

    def _spawn_process(self, rank: int) -> tuple[Any, Any]:
        """(process, parent pipe end) of a fresh worker, started."""
        parent, child = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main,
            args=(self.host, self.port,
                  self._worker_args["max_inflight"],
                  self._worker_args["batch"],
                  self._worker_args["resilience"],
                  self._worker_args["faults"], True,
                  self._worker_args["default_policy"], rank, child),
            name=f"odr-worker-{rank}", daemon=False)
        process.start()
        child.close()
        return process, parent

    def _start_slot(self, slot: _Slot, reason: str) -> None:
        slot.process, slot.pipe = self._spawn_process(slot.rank)
        slot.pid = slot.process.pid
        slot.admin_port = None
        slot.state = "starting"
        slot.started_at = time.monotonic()
        slot.probe_misses = 0
        self._event("spawn", slot.rank, pid=slot.pid, reason=reason)

    def start(self) -> "WorkerSupervisor":
        """Spawn every slot (non-blocking; see :meth:`wait_ready`)."""
        with self._lock:
            for slot in self._slots:
                self._start_slot(slot, reason="start")
        return self

    def wait_ready(self, timeout: float = 30.0) -> bool:
        """Poll until every non-failed slot is ready (True), or the
        timeout lapses (False)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            self.poll()
            with self._lock:
                pending = [slot for slot in self._slots
                           if slot.state not in ("ready", "failed",
                                                 "stopped")]
            if not pending:
                return self.healthy_workers > 0
            time.sleep(0.05)
        return False

    # -- restart policy ----------------------------------------------------------

    def _jitter(self, slot: _Slot) -> float:
        """Deterministic [0, 1) jitter so restart storms de-correlate
        without breaking replayability."""
        key = f"{self.config.seed}:{slot.rank}:{slot.restart_attempt}"
        return (zlib.crc32(key.encode()) % 1000) / 1000.0

    def _schedule_restart(self, slot: _Slot, reason: str) -> None:
        """Back the slot off, or trip the breaker when it is storming."""
        now = time.monotonic()
        window = self.config.restart_window
        slot.restart_times.append(now)
        while slot.restart_times and \
                now - slot.restart_times[0] > window:
            slot.restart_times.popleft()
        if len(slot.restart_times) > self.config.restart_budget:
            slot.state = "failed"
            self._event("gave_up", slot.rank, reason=reason,
                        restarts_in_window=len(slot.restart_times))
            self.metrics.counter(
                "repro_serve_worker_giveups_total").inc()
            return
        slot.restart_attempt += 1
        delay = min(self.config.backoff_cap,
                    self.config.backoff_base
                    * (2 ** (slot.restart_attempt - 1)))
        delay *= 1.0 + 0.25 * self._jitter(slot)
        slot.state = "backoff"
        slot.restart_at = now + delay
        self._event("backoff", slot.rank, reason=reason,
                    delay=round(delay, 3))
        self.metrics.counter("repro_serve_worker_restarts_total",
                             reason=reason).inc()

    def _kill_slot_process(self, slot: _Slot) -> None:
        if slot.process is not None and slot.process.is_alive():
            slot.process.kill()
            slot.process.join(5.0)

    # -- the poll pass -----------------------------------------------------------

    def _probe(self, admin_port: int) -> Optional[int]:
        """The worker's /healthz status via its admin door, or None
        when the probe could not connect at all."""
        try:
            conn = http.client.HTTPConnection(
                self.host, admin_port,
                timeout=self.config.probe_timeout)
            try:
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                response.read()
                return response.status
            finally:
                conn.close()
        except OSError:
            return None

    def poll(self) -> None:
        """One supervision pass: reap exits, collect admin-port
        reports, expire backoffs, probe readiness."""
        now = time.monotonic()
        with self._lock:
            for slot in self._slots:
                if slot.state in ("failed", "stopped"):
                    continue
                process = slot.process
                if process is not None and not process.is_alive():
                    code = process.exitcode
                    slot.exit_codes.append(code)
                    self._event("worker_exit", slot.rank,
                                exitcode=code)
                    slot.process = None
                    slot.pipe = None
                    slot.admin_port = None
                    if self.auto_restart:
                        self._schedule_restart(
                            slot, reason="exit" if code else "drain")
                    else:
                        slot.state = "failed"
                    continue
                if slot.state == "backoff" and now >= slot.restart_at:
                    self._start_slot(slot, reason="restart")
                    continue
                if slot.state == "starting":
                    self._collect_report(slot, now)
            probes = [(slot.rank, slot.admin_port)
                      for slot in self._slots
                      if slot.state in ("ready", "unready")
                      and slot.admin_port is not None]
        # Probes leave the lock: each one can block probe_timeout long.
        results = {rank: self._probe(port) for rank, port in probes}
        with self._lock:
            for slot in self._slots:
                if slot.rank in results and \
                        slot.state in ("ready", "unready"):
                    self._apply_probe(slot, results[slot.rank])
            self._healthy_gauge.set(float(self._healthy_locked()))

    def _collect_report(self, slot: _Slot, now: float) -> None:
        """Starting slot: take the admin-port report off the pipe, or
        give the spawn up after start_timeout."""
        if slot.pipe is not None and slot.pipe.poll():
            try:
                report = slot.pipe.recv()
            except (EOFError, OSError):
                report = None
            slot.pipe = None
            if report and report.get("admin_port"):
                slot.admin_port = int(report["admin_port"])
                slot.state = "ready"
                slot.restart_attempt = 0
                self._event("ready", slot.rank,
                            admin_port=slot.admin_port)
                return
        if now - slot.started_at > self.config.start_timeout:
            self._event("start_timeout", slot.rank)
            self._kill_slot_process(slot)
            # The exit is reaped (and the restart scheduled) on the
            # next pass through the liveness check above.

    def _apply_probe(self, slot: _Slot, status: Optional[int]) -> None:
        if status == 200:
            if slot.state != "ready":
                self._event("ready", slot.rank,
                            admin_port=slot.admin_port)
            slot.state = "ready"
            slot.probe_misses = 0
        elif status is not None:
            # Self-reported unready (draining / fault window): alive,
            # so no restart -- just steer capacity accounting.
            if slot.state != "unready":
                self._event("unready", slot.rank, status=status)
            slot.state = "unready"
            slot.probe_misses = 0
        else:
            slot.probe_misses += 1
            if slot.probe_misses >= self.config.probe_failures:
                self._event("probe_dead", slot.rank,
                            misses=slot.probe_misses)
                self._kill_slot_process(slot)
                # Reaped as an exit on the next poll pass.

    # -- rolling restart ---------------------------------------------------------

    def rolling_restart(self, timeout_per_worker: float = 30.0
                        ) -> bool:
        """Replace every worker one at a time without a capacity dip:
        spawn the replacement on the shared port, wait for it to probe
        healthy, then SIGTERM-and-drain the old worker.  True when
        every slot rolled."""
        self._event("rolling_restart_begin")
        ok = True
        for slot in self._slots:
            with self._lock:
                if slot.state in ("failed", "stopped"):
                    continue
                old_process = slot.process
                replacement, pipe = self._spawn_process(slot.rank)
            admin_port = None
            deadline = time.monotonic() + timeout_per_worker
            while time.monotonic() < deadline:
                if pipe.poll(0.05):
                    try:
                        report = pipe.recv()
                    except (EOFError, OSError):
                        break
                    admin_port = report.get("admin_port")
                    break
            healthy = False
            while admin_port and time.monotonic() < deadline:
                if self._probe(admin_port) == 200:
                    healthy = True
                    break
                time.sleep(0.05)
            if not healthy:
                # Replacement never came up: keep the old worker.
                self._event("rolling_restart_abort", slot.rank)
                if replacement.is_alive():
                    replacement.kill()
                    replacement.join(5.0)
                ok = False
                continue
            if old_process is not None and old_process.is_alive() \
                    and old_process.pid is not None:
                try:
                    os.kill(old_process.pid, signal.SIGTERM)
                except ProcessLookupError:   # pragma: no cover - race
                    pass
                old_process.join(self.config.drain_grace)
                if old_process.is_alive():
                    old_process.kill()
                    old_process.join(5.0)
                slot.exit_codes.append(old_process.exitcode)
            with self._lock:
                slot.process = replacement
                slot.pipe = None
                slot.pid = replacement.pid
                slot.admin_port = int(admin_port)
                slot.state = "ready"
                slot.probe_misses = 0
            self._event("rolled", slot.rank, pid=replacement.pid,
                        admin_port=int(admin_port))
            self.metrics.counter("repro_serve_worker_restarts_total",
                                 reason="rolling").inc()
        self._event("rolling_restart_end", ok=ok)
        return ok

    # -- run / shutdown ----------------------------------------------------------

    def run(self, stop: threading.Event) -> dict[str, int]:
        """Supervise until ``stop`` is set; then shut the pool down."""
        while not stop.is_set():
            self.poll()
            stop.wait(self.config.probe_interval)
        return self.shutdown()

    def shutdown(self, grace: Optional[float] = None) -> dict[str, int]:
        """SIGTERM the pool, escalate to SIGKILL, return exit codes."""
        from repro.serve.workers import terminate_pool
        grace = self.config.drain_grace if grace is None else grace
        with self._lock:
            processes = [slot.process for slot in self._slots
                         if slot.process is not None]
            for slot in self._slots:
                slot.state = "stopped"
        codes = terminate_pool(processes, join_timeout=grace,
                               quiet=True) if processes else {}
        self._event("shutdown", exit_codes=codes)
        self._healthy_gauge.set(0.0)
        return codes

    # -- views -------------------------------------------------------------------

    def _healthy_locked(self) -> int:
        return sum(1 for slot in self._slots
                   if slot.state == "ready")

    @property
    def healthy_workers(self) -> int:
        with self._lock:
            return self._healthy_locked()

    @property
    def degraded(self) -> bool:
        """Did the breaker give any slot up for good?"""
        with self._lock:
            return any(slot.state == "failed" for slot in self._slots)

    @property
    def restarts_total(self) -> int:
        """Spawns beyond the initial start (restarts + rolls)."""
        with self._lock:
            return sum(1 for record in self.events
                       if (record["event"] == "spawn"
                           and record.get("reason") != "start")
                       or record["event"] == "rolled")

    def pid_of(self, rank: int) -> Optional[int]:
        """The current PID of one slot (the chaos killer's target)."""
        with self._lock:
            slot = self._slots[rank]
            return slot.process.pid \
                if slot.process is not None else None

    def snapshot(self) -> list[dict]:
        """Structured state of every slot, for status CLIs and tests."""
        with self._lock:
            return [{"rank": slot.rank, "state": slot.state,
                     "pid": slot.pid, "admin_port": slot.admin_port,
                     "exit_codes": list(slot.exit_codes)}
                    for slot in self._slots]


class SupervisorThread:
    """A :class:`WorkerSupervisor` driven on a background thread.

    What tests and the availability gate use: ``start()`` returns once
    the pool probes ready, ``stop()`` shuts it down and joins.
    """

    def __init__(self, supervisor: WorkerSupervisor):
        self.supervisor = supervisor
        self._stop = threading.Event()
        self.exit_codes: dict[str, int] = {}
        self._thread = threading.Thread(target=self._run,
                                        name="odr-supervisor",
                                        daemon=True)

    def _run(self) -> None:
        self.exit_codes = self.supervisor.run(self._stop)

    def start(self, timeout: float = 30.0) -> "SupervisorThread":
        self.supervisor.start()
        if not self.supervisor.wait_ready(timeout):
            self.supervisor.shutdown()
            raise RuntimeError("supervised pool failed to become "
                               f"ready within {timeout:g}s")
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        return f"http://{self.supervisor.host}:{self.supervisor.port}"

    def stop(self, timeout: float = 30.0) -> dict[str, int]:
        self._stop.set()
        self._thread.join(timeout)
        return self.exit_codes

    def __enter__(self) -> "SupervisorThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_supervised_pool(workers: int, host: str, port: int, *,
                        max_inflight: int, batch: bool = True,
                        resilience: bool = True,
                        faults: Optional[str] = None,
                        default_policy: str = "odr",
                        quiet: bool = False,
                        config: Optional[SupervisorConfig] = None
                        ) -> int:
    """CLI runner: a supervised pool until SIGINT/SIGTERM.

    Returns 0 when the pool shut down at full capacity, 1 when the
    breaker had given up on any slot (degraded capacity at exit).
    """
    from repro.obs import MetricsRegistry
    metrics = MetricsRegistry()
    supervisor = WorkerSupervisor(
        workers, host, port, config=config, metrics=metrics,
        max_inflight=max_inflight, batch=batch,
        resilience=resilience, faults=faults,
        default_policy=default_policy, quiet=quiet)
    stop = threading.Event()

    def _stop_handler(signum, _frame):   # noqa: ARG001 - signal API
        stop.set()

    previous = {signum: signal.signal(signum, _stop_handler)
                for signum in (signal.SIGINT, signal.SIGTERM)}
    try:
        supervisor.start()
        if not quiet:
            print(f"ODR (supervised x{workers} via SO_REUSEPORT) "
                  f"listening on http://{host}:{supervisor.port}/ "
                  f"(Ctrl-C or SIGTERM to stop)", flush=True)
        supervisor.run(stop)
    except KeyboardInterrupt:   # pragma: no cover - interactive
        supervisor.shutdown()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    if not quiet:
        from repro.serve.workers import summarize_exits
        codes = {f"odr-worker-{entry['rank']}":
                 (entry["exit_codes"][-1] if entry["exit_codes"]
                  else 0)
                 for entry in supervisor.snapshot()}
        print("supervised pool shut down:\n"
              + summarize_exits(codes), flush=True)
    return 1 if supervisor.degraded else 0
