"""Lightweight tracing: named spans over sim time and wall time.

A span brackets one logical unit of work (an experiment driver, a cloud
run, a replay campaign) and records how long it took on both clocks::

    with span(metrics, "cloud_run", scale=0.01) as handle:
        result = cloud.run(workload)
        handle.set_attr("tasks", len(result.tasks))

Finished spans land in the registry (exported as ``span`` rows and a
``repro_trace_<name>_wall_seconds`` histogram).  Against the ``NOOP``
registry the context manager short-circuits to a shared inert handle,
so leaving tracing in place costs nothing when disabled.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.registry import AnyRegistry


class SpanHandle:
    """Mutable attribute bag for a live span."""

    __slots__ = ("name", "attrs")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value


class _NoopSpanHandle:
    __slots__ = ()
    name = "noop"
    attrs: dict[str, Any] = {}

    def set_attr(self, key: str, value: Any) -> None:
        pass


_NOOP_HANDLE = _NoopSpanHandle()


@contextmanager
def span(metrics: AnyRegistry, name: str,
         **attrs: Any) -> Iterator[Any]:
    """Record one span into ``metrics``; inert against ``NOOP``.

    The span is recorded even when the body raises (with an ``error``
    attribute naming the exception type), so traces of failed runs still
    show where the time went.
    """
    if not metrics.enabled:
        yield _NOOP_HANDLE
        return
    handle = SpanHandle(name, dict(attrs))
    sim_start = metrics.now()
    wall_start = time.perf_counter()
    try:
        yield handle
    except BaseException as exc:
        handle.attrs["error"] = type(exc).__name__
        raise
    finally:
        metrics.record_span(
            name, sim_start=sim_start, sim_end=metrics.now(),
            wall_seconds=time.perf_counter() - wall_start,
            attrs=handle.attrs)
