"""Exporters: JSONL event log, Prometheus text dump, summary table.

All three render the same row set (:meth:`MetricsRegistry.to_rows`), so
an exported JSONL file and a live registry produce identical summaries:
``load_jsonl`` is the loader behind the table exporter, which is what
makes the log round-trippable (write -> load -> table) for offline
analysis of a finished run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from repro.analysis.tables import TextTable
from repro.obs.instruments import KIND_GAUGE, KIND_HISTOGRAM, render_name
from repro.obs.registry import AnyRegistry
from repro.recovery.atomic import atomic_write_text

#: Formats understood by :func:`export`, mirrored by the CLI's
#: ``--metrics-format`` choices.
FORMATS = ("jsonl", "prom", "table")


# -- JSONL ---------------------------------------------------------------------

def write_jsonl(metrics: AnyRegistry, path: Union[str, Path]) -> int:
    """Dump the registry as one JSON object per line; returns row count.

    Written atomically (tmp + fsync + rename) so a crash mid-export can
    never leave a truncated log over a previous good one.
    """
    rows = metrics.to_rows()
    atomic_write_text(Path(path), "".join(
        json.dumps(row, sort_keys=True) + "\n" for row in rows))
    return len(rows)


def load_jsonl(path: Union[str, Path]) -> list[dict[str, Any]]:
    """Parse a metrics JSONL file back into export rows."""
    rows = []
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON") from exc
    return rows


# -- Prometheus text format ----------------------------------------------------

def render_prometheus(metrics: AnyRegistry) -> str:
    """Cumulative instrument state in the Prometheus exposition format."""
    return render_prometheus_rows(metrics.to_rows())


def render_prometheus_rows(rows: list[dict[str, Any]]) -> str:
    lines: list[str] = []
    typed: set[str] = set()
    for row in rows:
        if row.get("type") != "summary":
            continue
        name = row["metric"]
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {row['kind']}")
        labels = tuple(sorted(row.get("labels", {}).items()))
        if row["kind"] == KIND_HISTOGRAM:
            count = row.get("count", 0)
            lines.append(
                f"{render_name(name + '_count', labels)} {count}")
            lines.append(
                f"{render_name(name + '_sum', labels)} "
                f"{row.get('sum', 0.0):.10g}")
            for key in sorted(row):
                if key.startswith("p") and key[1:].isdigit():
                    quantile = int(key[1:]) / 100.0
                    q_labels = labels + (("quantile", f"{quantile:g}"),)
                    lines.append(f"{render_name(name, q_labels)} "
                                 f"{row[key]:.10g}")
        else:
            lines.append(
                f"{render_name(name, labels)} {row['value']:.10g}")
            if row["kind"] == KIND_GAUGE and "peak" in row:
                lines.append(
                    f"{render_name(name + '_peak', labels)} "
                    f"{row['peak']:.10g}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- summary table -------------------------------------------------------------

def render_summary_table(rows: list[dict[str, Any]]) -> str:
    """Human-readable per-metric summary of exported (or live) rows.

    This consumes the *row* representation -- the output of
    :func:`load_jsonl` or :meth:`MetricsRegistry.to_rows` -- so dumped
    logs and live registries render identically.
    """
    series_bins: dict[tuple[str, str], int] = {}
    for row in rows:
        if row.get("type") == "series":
            key = (row["metric"], json.dumps(row.get("labels", {}),
                                             sort_keys=True))
            series_bins[key] = series_bins.get(key, 0) + 1

    table = TextTable(
        ["metric", "kind", "value", "p50", "p99", "peak", "bins"],
        formats=["", "", ".6g", ".6g", ".6g", ".6g", "d"])
    summaries = sorted(
        (row for row in rows if row.get("type") == "summary"),
        key=lambda row: (row["metric"],
                         sorted(row.get("labels", {}).items())))
    for row in summaries:
        labels = tuple(sorted(row.get("labels", {}).items()))
        key = (row["metric"], json.dumps(row.get("labels", {}),
                                         sort_keys=True))
        table.add_row(
            render_name(row["metric"], labels),
            row["kind"],
            row.get("value", 0.0),
            row.get("p50", "-"),
            row.get("p99", "-"),
            row.get("peak", "-"),
            series_bins.get(key, 0))
    spans = [row for row in rows if row.get("type") == "span"]
    rendered = table.render()
    if spans:
        span_table = TextTable(
            ["span", "wall (s)", "sim (s)"],
            formats=["", ".4g", ".6g"])
        for row in spans:
            span_table.add_row(
                row.get("name", "?"), row.get("wall_seconds", 0.0),
                row.get("sim_end", 0.0) - row.get("sim_start", 0.0))
        rendered += "\n\n" + span_table.render()
    return rendered


def summary_table(metrics: AnyRegistry) -> str:
    return render_summary_table(metrics.to_rows())


# -- perf records (BENCH_*.json) -----------------------------------------------

#: Keys every perf record must carry so CI artifacts stay comparable
#: across PRs (see benchmarks/ and ``repro.scale.bench``).
BENCH_REQUIRED_KEYS = ("benchmark", "cpu_count", "runs")


def write_bench_json(record: dict[str, Any],
                     path: Union[str, Path]) -> Path:
    """Write a benchmark perf record (e.g. ``BENCH_scale.json``).

    The record is a plain JSON object; :data:`BENCH_REQUIRED_KEYS` are
    validated so every emitted perf artifact carries the fields the
    speedup dashboards key on.
    """
    missing = [key for key in BENCH_REQUIRED_KEYS if key not in record]
    if missing:
        raise ValueError(f"perf record missing keys {missing}")
    return atomic_write_text(
        Path(path), json.dumps(record, indent=2, sort_keys=True) + "\n")


def load_bench_json(path: Union[str, Path]) -> dict[str, Any]:
    """Read a perf record back; validates the same required keys."""
    record = json.loads(Path(path).read_text())
    if not isinstance(record, dict):
        raise ValueError(f"{path}: perf record must be a JSON object")
    missing = [key for key in BENCH_REQUIRED_KEYS if key not in record]
    if missing:
        raise ValueError(f"{path}: perf record missing keys {missing}")
    return record


# -- one-stop export -----------------------------------------------------------

def export(metrics: AnyRegistry, fmt: str,
           path: Union[str, Path, None] = None) -> str:
    """Export ``metrics`` as ``fmt``; write to ``path`` when given.

    Returns the rendered text for ``prom``/``table`` (also written to
    ``path`` if provided); for ``jsonl`` a ``path`` is required and a
    short confirmation string is returned.
    """
    if fmt not in FORMATS:
        raise ValueError(f"unknown metrics format {fmt!r}; "
                         f"expected one of {FORMATS}")
    if fmt == "jsonl":
        if path is None:
            raise ValueError("jsonl export needs an output path")
        count = write_jsonl(metrics, path)
        return f"wrote {count} metric rows to {path}"
    text = render_prometheus(metrics) if fmt == "prom" \
        else summary_table(metrics)
    if path is not None:
        atomic_write_text(Path(path), text if text.endswith("\n")
                          else text + "\n")
    return text
