"""Metric instruments: Counter, Gauge, Histogram, and their no-op twins.

Every instrument belongs to a :class:`~repro.obs.registry.MetricsRegistry`
and reports observations back to it so the registry can maintain
sim-time-binned series.  The no-op variants short-circuit everything:
call sites hold an instrument reference obtained once at construction
time, so the disabled path costs a single attribute-bound method call.

Naming convention (enforced loosely, documented in DESIGN.md):
``repro_<subsystem>_<name>``, with Prometheus-style suffixes (``_total``
for counters, unit suffixes like ``_bytes`` / ``_seconds`` / ``_gbps``
where applicable).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Optional

from repro.obs.histogram import QuantileSketch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import MetricsRegistry

#: Quantiles exported for every histogram.
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)

#: Aggregation kinds used by the registry's series binning.
KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"


def render_name(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """Prometheus-style rendered metric identity, e.g. ``x{isp="cernet"}``."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{inner}}}"


class Instrument:
    """Common identity plumbing for all instrument kinds."""

    __slots__ = ("name", "labels", "_registry")

    kind = "instrument"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._registry = registry

    @property
    def full_name(self) -> str:
        return render_name(self.name, self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.full_name}>"


class Counter(Instrument):
    """Monotonically increasing count (events, bytes, rejections)."""

    __slots__ = ("value",)

    kind = KIND_COUNTER

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: tuple[tuple[str, str], ...] = ()):
        super().__init__(registry, name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount
        self._registry._record(self, amount)


class Gauge(Instrument):
    """Point-in-time level (queue depth, committed bandwidth).

    Tracks the peak level seen, which is what capacity planning reads
    (e.g. peak event-heap depth of a simulation run).
    """

    __slots__ = ("value", "peak")

    kind = KIND_GAUGE

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: tuple[tuple[str, str], ...] = ()):
        super().__init__(registry, name, labels)
        self.value = 0.0
        self.peak = -math.inf

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value
        self._registry._record(self, value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


class Histogram(Instrument):
    """Value distribution backed by the streaming quantile sketch."""

    __slots__ = ("sketch",)

    kind = KIND_HISTOGRAM

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: tuple[tuple[str, str], ...] = ()):
        super().__init__(registry, name, labels)
        self.sketch = QuantileSketch()

    @property
    def value(self) -> float:
        """Summary scalar: the running mean (for snapshot views)."""
        return self.sketch.mean

    @property
    def count(self) -> int:
        return self.sketch.count

    def observe(self, value: float) -> None:
        self.sketch.add(value)
        self._registry._record(self, value)

    def quantile(self, q: float) -> float:
        return self.sketch.quantile(q)


# -- null objects -------------------------------------------------------------
#
# One shared instance per kind: obtaining an instrument from the NOOP
# registry allocates nothing, and every mutating method is a bare
# ``pass``.  The bench guard (benchmarks/test_bench_obs_overhead.py)
# pins the resulting disabled-path overhead below 5 %.

class NoopCounter:
    __slots__ = ()
    kind = KIND_COUNTER
    name = "noop"
    labels: tuple[tuple[str, str], ...] = ()
    full_name = "noop"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class NoopGauge:
    __slots__ = ()
    kind = KIND_GAUGE
    name = "noop"
    labels: tuple[tuple[str, str], ...] = ()
    full_name = "noop"
    value = 0.0
    peak = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class NoopHistogram:
    __slots__ = ()
    kind = KIND_HISTOGRAM
    name = "noop"
    labels: tuple[tuple[str, str], ...] = ()
    full_name = "noop"
    value = 0.0
    count = 0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


NOOP_COUNTER = NoopCounter()
NOOP_GAUGE = NoopGauge()
NOOP_HISTOGRAM = NoopHistogram()
