"""repro.obs -- sim-time-aware observability for the reproduction.

The subsystem every other layer reports into:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  streaming :class:`Histogram` instruments, whose observations are
  stamped with **simulation** time (bound from the
  :class:`~repro.sim.engine.Simulator` clock) as well as wall time and
  aggregated into fixed-width sim-time bins;
* :func:`span` -- lightweight tracing of logical work units;
* exporters -- JSONL event log (round-trippable via :func:`load_jsonl`),
  Prometheus text dump, and a rendered summary table;
* :data:`NOOP` -- the null-object registry, the default ``metrics=``
  everywhere, making instrumentation free when disabled.

Metric naming convention: ``repro_<subsystem>_<name>`` with
Prometheus-style unit suffixes (``_total``, ``_bytes``, ``_seconds``,
``_gbps``).  See DESIGN.md's Observability section for the inventory.
"""

from repro.obs.histogram import QuantileSketch
from repro.obs.instruments import (
    Counter,
    Gauge,
    Histogram,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    SUMMARY_QUANTILES,
    render_name,
)
from repro.obs.registry import (
    AnyRegistry,
    DEFAULT_BIN_WIDTH,
    MetricsRegistry,
    NOOP,
    NoopRegistry,
    merge_registries,
)
from repro.obs.tracing import SpanHandle, span
from repro.obs.exporters import (
    BENCH_REQUIRED_KEYS,
    FORMATS,
    export,
    load_bench_json,
    load_jsonl,
    render_prometheus,
    render_summary_table,
    summary_table,
    write_bench_json,
    write_jsonl,
)

__all__ = [
    "MetricsRegistry",
    "NoopRegistry",
    "NOOP",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
    "AnyRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "QuantileSketch",
    "SpanHandle",
    "span",
    "SUMMARY_QUANTILES",
    "DEFAULT_BIN_WIDTH",
    "FORMATS",
    "BENCH_REQUIRED_KEYS",
    "merge_registries",
    "render_name",
    "export",
    "write_jsonl",
    "load_jsonl",
    "write_bench_json",
    "load_bench_json",
    "render_prometheus",
    "render_summary_table",
    "summary_table",
]
