"""The metrics registry: instruments, sim-time-binned series, spans.

One :class:`MetricsRegistry` is threaded through a run (cloud week, AP
replay campaign, ODR evaluation); every subsystem obtains instruments
from it by name.  The registry stamps each observation with *simulation*
time (from whatever clock the :class:`~repro.sim.engine.Simulator` bound)
plus wall time, and aggregates observations into fixed-width sim-time
bins so a week-long run exports a bounded series per metric instead of
one row per event.

``NOOP`` is the null-object registry: it hands out shared do-nothing
instruments, so uninstrumented runs (the default everywhere) pay only a
no-op method call per observation point -- and the simulation engine
skips even that by branching on ``registry.enabled``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Iterator, Optional, Union

from repro.obs.instruments import (
    KIND_COUNTER,
    KIND_GAUGE,
    KIND_HISTOGRAM,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    SUMMARY_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    Instrument,
)

#: Default sim-time bin width for exported series: 5 minutes, matching
#: the paper's Figure 11 bandwidth-burden binning.
DEFAULT_BIN_WIDTH = 300.0

_InstrumentKey = tuple[str, tuple[tuple[str, str], ...]]


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class MetricsRegistry:
    """Owns instruments, their sim-time series, and recorded spans."""

    enabled = True

    def __init__(self, bin_width: float = DEFAULT_BIN_WIDTH,
                 clock: Optional[Callable[[], float]] = None):
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self._bin_width = bin_width
        self._clock = clock
        self._instruments: dict[_InstrumentKey, Instrument] = {}
        # instrument key -> {bin index -> [value, wall time of last update]}
        self._series: dict[_InstrumentKey, dict[int, list[float]]] = {}
        self._spans: list[dict[str, Any]] = []

    # -- clock -----------------------------------------------------------------

    def set_clock(self, clock: Optional[Callable[[], float]]) -> None:
        """Bind the simulation-time source (e.g. ``lambda: sim.now``)."""
        self._clock = clock

    def now(self) -> float:
        """Current simulation time, 0.0 when no clock is bound."""
        clock = self._clock
        return clock() if clock is not None else 0.0

    @property
    def bin_width(self) -> float:
        return self._bin_width

    # -- instrument factories --------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    def _get_or_create(self, factory: type, name: str,
                       labels: dict[str, Any]):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(self, name, key[1])
            self._instruments[key] = instrument
        elif not isinstance(instrument, factory):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, cannot re-register as "
                f"{factory.kind}")  # type: ignore[attr-defined]
        return instrument

    # -- observation intake ----------------------------------------------------

    def _record(self, instrument: Instrument, value: float) -> None:
        sim_time = self.now()
        bin_index = int(sim_time // self._bin_width)
        key = (instrument.name, instrument.labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = {}
        entry = series.get(bin_index)
        wall = time.time()
        if entry is None:
            initial = value if instrument.kind is not KIND_HISTOGRAM \
                else 1.0
            series[bin_index] = [initial, wall]
        elif instrument.kind is KIND_GAUGE:
            entry[0] = value
            entry[1] = wall
        elif instrument.kind is KIND_HISTOGRAM:
            entry[0] += 1.0
            entry[1] = wall
        else:
            entry[0] += value
            entry[1] = wall

    def record_span(self, name: str, sim_start: float, sim_end: float,
                    wall_seconds: float,
                    attrs: Optional[dict[str, Any]] = None) -> None:
        """Fold one finished span into the registry (see ``obs.tracing``)."""
        self._spans.append({
            "name": name, "sim_start": sim_start, "sim_end": sim_end,
            "wall_seconds": wall_seconds, "attrs": dict(attrs or {})})
        self.histogram(f"repro_trace_{name}_wall_seconds").sketch.add(
            wall_seconds)

    # -- merging (scale-out reduction) -----------------------------------------

    def merge(self, other: "MetricsRegistry | NoopRegistry") -> None:
        """Fold another registry's state into this one.

        The reducer behind ``repro.scale``: per-shard worker registries
        stream back to the parent process and collapse into one.  Merge
        semantics per kind: counters and histogram sketches add (the
        sketch merge is exact for bucket state), gauges add their values
        and take the max of their peaks (a level split across shards sums;
        a high-water mark is the worst shard's).  Sim-time series bins
        combine the same way, spans concatenate.  Merging never touches
        the clock, so observations keep their original sim-time bins.
        """
        if not other.enabled:
            return
        assert isinstance(other, MetricsRegistry)
        if other.bin_width != self._bin_width:
            raise ValueError(
                f"cannot merge registries with bin widths "
                f"{other.bin_width} and {self._bin_width}")
        for key, theirs in other._instruments.items():
            name, label_items = key
            mine = self._get_or_create(type(theirs), name,
                                       dict(label_items))
            if isinstance(theirs, Counter):
                mine.value += theirs.value
            elif isinstance(theirs, Gauge):
                mine.value += theirs.value
                mine.peak = max(mine.peak, theirs.peak)
            else:
                mine.sketch.merge(theirs.sketch)
            series = self._series.setdefault(key, {})
            for bin_index, entry in other._series.get(key, {}).items():
                existing = series.get(bin_index)
                if existing is None:
                    series[bin_index] = list(entry)
                else:
                    if isinstance(theirs, Gauge):
                        existing[0] = max(existing[0], entry[0])
                    else:
                        existing[0] += entry[0]
                    existing[1] = max(existing[1], entry[1])
        self._spans.extend(other._spans)

    # -- pickling (spawn-safe worker payloads) ---------------------------------

    def __getstate__(self) -> dict[str, Any]:
        """Drop the clock: it is a closure over live simulation state.

        A registry crossing a process boundary (shard worker -> parent)
        carries its accumulated observations but not its time source; the
        receiving side re-binds a clock if it keeps recording.
        """
        state = dict(self.__dict__)
        state["_clock"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)

    # -- views -----------------------------------------------------------------

    def instruments(self) -> Iterator[Instrument]:
        yield from self._instruments.values()

    def metric_names(self) -> set[str]:
        return {name for name, _labels in self._instruments}

    @property
    def spans(self) -> list[dict[str, Any]]:
        return self._spans

    def snapshot(self) -> dict[str, float]:
        """Rendered-name -> current scalar value for every instrument."""
        return {instrument.full_name: instrument.value
                for instrument in self._instruments.values()}

    def series(self, name: str, **labels: Any
               ) -> list[tuple[float, float]]:
        """(bin start sim-time, value) pairs for one instrument."""
        key = (name, _label_key(labels))
        bins = self._series.get(key, {})
        return [(index * self._bin_width, entry[0])
                for index, entry in sorted(bins.items())]

    def to_rows(self) -> list[dict[str, Any]]:
        """Flatten registry state into export rows (see ``obs.exporters``).

        Three row types: ``summary`` (one per instrument, cumulative
        state), ``series`` (one per instrument per sim-time bin), and
        ``span`` (one per recorded span).
        """
        rows: list[dict[str, Any]] = []
        for key, instrument in self._instruments.items():
            labels = dict(instrument.labels)
            summary: dict[str, Any] = {
                "type": "summary", "metric": instrument.name,
                "labels": labels, "kind": instrument.kind,
                "value": instrument.value,
            }
            if isinstance(instrument, Gauge):
                summary["peak"] = instrument.peak
            elif isinstance(instrument, Histogram):
                sketch = instrument.sketch
                summary["count"] = sketch.count
                summary["sum"] = sketch.total
                if sketch.count:
                    summary["min"] = sketch.min_value
                    summary["max"] = sketch.max_value
                for q in SUMMARY_QUANTILES:
                    summary[f"p{int(q * 100)}"] = sketch.quantile(q)
            rows.append(summary)
            for bin_index, entry in sorted(
                    self._series.get(key, {}).items()):
                rows.append({
                    "type": "series", "metric": instrument.name,
                    "labels": labels, "kind": instrument.kind,
                    "sim_time": bin_index * self._bin_width,
                    "wall_time": entry[1], "value": entry[0]})
        for span in self._spans:
            rows.append({"type": "span", **span})
        return rows


class NoopRegistry:
    """Null-object registry: same surface, zero cost, no state."""

    enabled = False

    def set_clock(self, clock: Optional[Callable[[], float]]) -> None:
        pass

    def now(self) -> float:
        return 0.0

    @property
    def bin_width(self) -> float:
        return DEFAULT_BIN_WIDTH

    def counter(self, name: str, **labels: Any):
        return NOOP_COUNTER

    def gauge(self, name: str, **labels: Any):
        return NOOP_GAUGE

    def histogram(self, name: str, **labels: Any):
        return NOOP_HISTOGRAM

    def record_span(self, name: str, sim_start: float, sim_end: float,
                    wall_seconds: float,
                    attrs: Optional[dict[str, Any]] = None) -> None:
        pass

    def merge(self, other: "MetricsRegistry | NoopRegistry") -> None:
        pass

    def instruments(self) -> Iterator[Instrument]:
        return iter(())

    def metric_names(self) -> set[str]:
        return set()

    @property
    def spans(self) -> list[dict[str, Any]]:
        return []

    def snapshot(self) -> dict[str, float]:
        return {}

    def series(self, name: str, **labels: Any
               ) -> list[tuple[float, float]]:
        return []

    def to_rows(self) -> list[dict[str, Any]]:
        return []


def merge_registries(registries: Iterable["MetricsRegistry | NoopRegistry"],
                     bin_width: float = DEFAULT_BIN_WIDTH
                     ) -> MetricsRegistry:
    """Reduce many registries (e.g. one per shard) into a fresh one.

    Registries are folded in iteration order; because every merge
    operation is commutative up to float round-off (and exact for
    counts, bucket state, and peaks), the reduced registry is
    independent of shard scheduling.
    """
    merged = MetricsRegistry(bin_width=bin_width)
    for registry in registries:
        merged.merge(registry)
    return merged


#: The shared do-nothing registry; the default ``metrics=`` everywhere.
NOOP = NoopRegistry()

#: What instrumented code accepts: a real registry or the null object.
AnyRegistry = Union[MetricsRegistry, NoopRegistry]
