"""Streaming quantile sketch for histogram instruments.

A fixed geometric-bucket sketch: observations land in log-spaced buckets
(growth factor 1.05, ~2.5 % relative resolution), so quantile estimates
cost O(1) per observation, use no numpy in the hot path, and stay
bounded in memory no matter how many samples stream through.  Buckets
are kept sparse (a dict), so an instrument that only ever sees a narrow
value band stores a handful of integers.

This is the same trade HDR-histogram-style monitoring systems make:
exact counts, bounded relative error on values, mergeable state.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

#: Geometric growth factor between bucket boundaries; relative error of
#: a quantile estimate is at most ``(GROWTH - 1) / 2`` ~ 2.5 %.
GROWTH = 1.05
_LOG_GROWTH = math.log(GROWTH)


def _bucket_index(value: float) -> int:
    """Index of the geometric bucket holding ``value`` (> 0)."""
    return int(math.floor(math.log(value) / _LOG_GROWTH))


def _bucket_midpoint(index: int) -> float:
    """Representative value of a bucket: geometric mean of its bounds."""
    return math.exp((index + 0.5) * _LOG_GROWTH)


class QuantileSketch:
    """Sparse geometric-bucket streaming histogram.

    Tracks count, sum, min and max exactly; quantiles are estimated to
    within the bucket resolution.  Values ``<= 0`` are folded into a
    dedicated underflow bucket counted at value zero (durations and
    byte counts are never meaningfully negative).
    """

    __slots__ = ("_buckets", "_zero_count", "count", "total",
                 "min_value", "max_value")

    def __init__(self) -> None:
        self._buckets: dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        if value <= 0.0:
            self._zero_count += 1
            return
        index = _bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1) of the stream."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min_value
        if q >= 1.0:
            return self.max_value
        # Rank of the wanted observation (1-based, nearest-rank rule).
        rank = max(1, math.ceil(q * self.count))
        if rank <= self._zero_count:
            return min(self.min_value, 0.0)
        seen = self._zero_count
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                # Clamp to the exactly-tracked extremes so tail
                # quantiles never leave the observed range.
                estimate = _bucket_midpoint(index)
                return min(max(estimate, self.min_value), self.max_value)
        return self.max_value

    def quantiles(self, qs: Iterable[float]) -> list[float]:
        return [self.quantile(q) for q in qs]

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch into this one (exact for bucket state)."""
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._zero_count += other._zero_count
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    def __eq__(self, other: object) -> bool:
        """Distribution equality: exact bucket state, tolerant total.

        Bucket counts, the observation count, and the extremes merge
        exactly in any order; the float ``total`` is the one field whose
        value depends on summation order, so it is compared to within
        float round-off rather than bit-for-bit.  This is what lets the
        scale-out tests assert that a sketch merged from N shards *is*
        the single-process sketch.
        """
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (self._buckets == other._buckets
                and self._zero_count == other._zero_count
                and self.count == other.count
                and self.min_value == other.min_value
                and self.max_value == other.max_value
                and math.isclose(self.total, other.total,
                                 rel_tol=1e-9, abs_tol=1e-9))

    __hash__ = None  # type: ignore[assignment]  # mutable container

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[tuple[float, int]]:
        """Yield (representative value, count) pairs, ascending."""
        if self._zero_count:
            yield 0.0, self._zero_count
        for index in sorted(self._buckets):
            yield _bucket_midpoint(index), self._buckets[index]
